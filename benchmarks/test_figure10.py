"""E4 — Figure 10: speedup box-plots for all 11 benchmarks.

Checks the published aggregate shape: the input-sensitive group's median
and max speedups are higher under Evolve than Rep; Evolve improves over
the default VM overall; and the discriminative guard shows up as Evolve's
worst case beating Rep's worst case in most programs.
"""

from repro.experiments.figure10 import render, run_figure10

from conftest import one_shot


def test_figure10(benchmark, runs_override):
    summary = one_shot(
        benchmark, run_figure10, seed=0, runs_override=runs_override
    )
    print()
    print(render(summary))

    assert len(summary.rows) == 11
    sensitive = summary.sensitive_rows()
    assert len(sensitive) == 5

    evolve_median = summary.mean_median_speedup("evolve", sensitive)
    rep_median = summary.mean_median_speedup("rep", sensitive)
    assert evolve_median > 1.0, "Evolve must improve the sensitive group"
    assert evolve_median >= rep_median - 0.01, "Evolve should match/beat Rep"

    evolve_max = summary.mean_max_speedup("evolve", sensitive)
    rep_max = summary.mean_max_speedup("rep", sensitive)
    print(
        f"\nsensitive group: median evolve={evolve_median:.3f} rep={rep_median:.3f}; "
        f"max evolve={evolve_max:.3f} rep={rep_max:.3f}; "
        f"better worst-case in {summary.better_min_count()}/11 programs"
    )

    # Discriminative prediction: better minimum speedups in most programs
    # (the paper reports 9 of 11).
    assert summary.better_min_count() >= 6
