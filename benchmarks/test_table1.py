"""E1 — Table I: benchmark population, running times, features, conf/acc.

Regenerates every row of Table I and checks the headline claim: Evolve's
average prediction accuracy lands in the high-80s (paper: 87 %).
"""

from repro.experiments import table1

from conftest import one_shot


def test_table1(benchmark, runs_override):
    rows = one_shot(
        benchmark, table1.run_table1, seed=0, runs_override=runs_override
    )
    print()
    print(table1.render(rows))

    assert len(rows) == 11
    mean_acc = sum(row.mean_accuracy for row in rows) / len(rows)
    print(f"\nmean prediction accuracy across benchmarks: {mean_acc:.3f} "
          f"(paper: 0.87)")
    assert mean_acc > 0.70, "accuracy collapsed far below the paper's 87%"
    # Tree-based feature selection must be visible: at least some programs
    # use fewer features than their raw vectors carry.
    assert any(row.features_used < row.features_total for row in rows)
    # Running-time ranges are input-driven: max exceeds min everywhere.
    assert all(row.time_max > row.time_min for row in rows)
