"""Wall-clock benchmarks for the learning layer's fast training engine.

pytest-benchmark twin of the ``learning`` section of ``repro bench``:
times offline model construction (reference vs. fast, trees checked
identical), the shared-presort ``refit_all`` pass, and flattened
``predict_all`` latency. Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_learning.py -q
"""

import pytest

from repro.bench.learnbench import (
    LEARN_PARAMS,
    _build_trained,
    bench_learning,
    synthetic_history,
)
from repro.core import ModelBuilder
from repro.learning import ClassificationTree, TrainingMatrix

pytestmark = pytest.mark.bench

#: Workload scale for the per-engine pytest-benchmark timings.
METHODS, RUNS = 40, 100


@pytest.fixture(scope="module")
def trained_builder():
    builder = _build_trained(METHODS, RUNS)
    builder.refit_all()
    return builder


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_training_throughput(benchmark, trained_builder, engine):
    dataset = trained_builder.model_for("method_000").dataset

    def fit():
        matrix = (
            TrainingMatrix.from_dataset(dataset) if engine == "fast" else None
        )
        tree = ClassificationTree(LEARN_PARAMS, engine=engine).fit(
            dataset, matrix=matrix
        )
        return tree.render()

    rendered = benchmark(fit)
    assert rendered  # a real tree came out


def test_refit_all_shared_presort(benchmark):
    history = synthetic_history(METHODS, RUNS, seed=0)

    def construct():
        builder = ModelBuilder(LEARN_PARAMS, engine="fast")
        for vector, ideal in history:
            builder.observe_run(vector, ideal)
        builder.refit_all()
        return builder.presort_stats()

    stats = benchmark(construct)
    # One presort served every per-method fit.
    assert stats["hits"] >= METHODS - 1


def test_predict_all_latency(benchmark, trained_builder):
    history = synthetic_history(1, 50, seed=9)
    vectors = [vector for vector, _ in history]
    forest = trained_builder.forest

    def predict():
        out = None
        for vector in vectors:
            out = forest.predict_all(vector)
        return out

    out = benchmark(predict)
    assert len(out) == METHODS


def test_training_speedup_target():
    """The tentpole acceptance bar: >=5x geomean at Table-I scale."""
    report = bench_learning(quick=False)
    assert report["speedup"]["identical_trees"] is True
    geomean = report["speedup"]["geomean"]
    assert geomean >= 5.0, f"learning speedup geomean {geomean:.2f}x < 5x"
    assert report["predict"]["per_call_us"] < 1000.0
