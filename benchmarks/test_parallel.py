"""Parallel experiment engine: wall-clock scaling and cached re-runs.

Two harness targets exercise the engine at experiment scale:

- a full multi-benchmark sweep through the process pool (the path
  ``python -m repro sweep --jobs N`` takes), asserting the results agree
  with the serial runner on a spot-checked benchmark;
- a cached re-run of the same sweep, asserting every cell is served from
  the on-disk result cache (the re-run should be orders of magnitude
  faster — visible in the pytest-benchmark timings).
"""

import os

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_experiment, run_sweep
from repro.experiments.telemetry import ResultCache

from conftest import one_shot

pytestmark = pytest.mark.bench

#: A representative slice of the suite: one short and one long program,
#: one of them input-sensitive.
SWEEP_PROGRAMS = ("Search", "Mtrt", "Euler")

JOBS = min(4, os.cpu_count() or 1)


def _sweep(runs, cache=None, jobs=JOBS):
    return run_sweep(
        [get_benchmark(name) for name in SWEEP_PROGRAMS],
        jobs=jobs,
        seed=0,
        runs=runs,
        cache=cache,
    )


def test_parallel_sweep(benchmark, runs_override):
    report = one_shot(benchmark, _sweep, runs_override)
    print()
    print(report.describe())

    assert len(report.results) == len(SWEEP_PROGRAMS)
    assert report.cells_executed == report.cells_total

    # Spot-check the engine's determinism contract against the serial
    # runner at experiment scale.
    serial = run_experiment(get_benchmark("Search"), seed=0, runs=runs_override)
    parallel = report.results[SWEEP_PROGRAMS.index("Search")]
    assert [out.total_cycles for out in serial.evolve] == [
        out.total_cycles for out in parallel.evolve
    ]
    assert [out.accuracy for out in serial.evolve] == [
        out.accuracy for out in parallel.evolve
    ]


def test_cached_sweep_rerun(benchmark, runs_override, tmp_path):
    cache_dir = tmp_path / "cache"
    warm = _sweep(runs_override, cache=ResultCache(cache_dir), jobs=JOBS)
    assert warm.cells_executed == warm.cells_total

    cache = ResultCache(cache_dir)
    report = one_shot(benchmark, _sweep, runs_override, cache, 1)
    print()
    print(f"re-run: {report.describe()}; cache {cache.stats.describe()}")

    assert report.cells_executed == 0
    assert report.cells_cached == report.cells_total
    assert [out.total_cycles for out in warm.results[0].evolve] == [
        out.total_cycles for out in report.results[0].evolve
    ]
