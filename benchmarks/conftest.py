"""Shared configuration for the benchmark harness.

Experiment-scale benches regenerate whole paper artifacts; they run one
round each (``benchmark.pedantic``). Run counts default to a scaled-down
protocol so the whole harness finishes in minutes; set ``REPRO_FULL=1``
to use the paper's full run counts (30/70 runs per program, 92 for the
Figure 9 Mtrt study).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: Run count used per benchmark program when not in full mode.
QUICK_RUNS = 16


@pytest.fixture(scope="session")
def runs_override() -> int | None:
    """None in full mode (per-benchmark paper counts); reduced otherwise."""
    return None if FULL else QUICK_RUNS


def one_shot(benchmark, fn, *args, **kwargs):
    """Run an experiment-scale callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
