"""E7 (extension) — input-specific GC selection (§VI).

Not a paper artifact: the paper's discussion projects this application of
the machinery; the bench validates the projection. Expected shape: the
oracle beats both fixed collectors; the learned selector captures most of
the oracle's improvement once warmed up.
"""

from repro.experiments.gc_study import render, run_gc_study

from conftest import FULL, one_shot


def test_gc_selection_study(benchmark):
    runs = 60 if FULL else 30
    result = one_shot(benchmark, run_gc_study, seed=0, runs=runs)
    print()
    print(render(result))

    fixed_best = min(
        result.total_pause["semispace"], result.total_pause["marksweep"]
    )
    assert result.total_pause["oracle"] <= fixed_best + 1e-6
    assert result.selection_accuracy > 0.6
    assert result.steady_state_capture > 0.5
