"""E6 — §V-B.3: sensitivity to the confidence threshold and input order.

Checks the two published findings: a higher TH_c narrows the speedup range
(more conservative, better worst case, fewer applied predictions), and
input-order shuffles move Rep's outcomes more than Evolve's.
"""

from repro.experiments.sensitivity import (
    render_order,
    render_thresholds,
    run_order_study,
    run_threshold_sweep,
)

from conftest import one_shot


def test_threshold_sweep(benchmark, runs_override):
    runs = runs_override if runs_override is not None else 40
    points = one_shot(
        benchmark,
        run_threshold_sweep,
        "Mtrt",
        thresholds=(0.5, 0.7, 0.9),
        seed=0,
        runs=runs,
    )
    print()
    print(render_thresholds("Mtrt", points))

    # Stricter gates can only reduce how often prediction is applied.
    applied = [p.applied_runs for p in points]
    assert applied == sorted(applied, reverse=True)
    # And the loosest gate must actually apply predictions.
    assert applied[0] > 0
    # Conservatism: the strict gate's worst case is no worse than the
    # loose gate's worst case.
    assert points[-1].min_speedup >= points[0].min_speedup - 0.02


def test_input_order(benchmark, runs_override):
    runs = runs_override if runs_override is not None else 30
    study = one_shot(
        benchmark, run_order_study, "RayTracer", orders=3, seed=0, runs=runs
    )
    print()
    print(render_order(study))

    # Rep's worst case must move at least as much as Evolve's across
    # input orders (the discriminative guard suppresses immature
    # predictions; Rep predicts unconditionally from tiny histories).
    assert study.rep_min_change >= study.evolve_min_change - 0.02
