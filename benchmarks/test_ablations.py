"""Ablation benches for the design choices DESIGN.md calls out.

A1 — discriminative guard on/off: removing the confidence gate
     (TH_c = 0) recovers Rep-style unconditional prediction risk: the
     worst-case speedup degrades relative to the guarded configuration.
A2 — decay factor γ: smaller γ smooths confidence (slower to both open
     and close the gate); the default 0.7 sits between the extremes.
A3 — classification tree vs. majority vote: replacing the tree with a
     per-method majority label (a depth-0 tree) hurts prediction accuracy
     on an input-sensitive program — the tree earns its keep.
A4 — sampler granularity: a coarser timer slows the reactive optimizer's
     reaction, widening Evolve's advantage over the default VM.
"""

from repro.bench import get_benchmark
from repro.experiments import run_experiment
from repro.learning.tree import TreeParams
from repro.vm.config import DEFAULT_CONFIG, VMConfig

from conftest import one_shot

RUNS = 30
SEED = 0


def _experiment(**kwargs):
    return run_experiment(get_benchmark("Mtrt"), seed=SEED, runs=RUNS, **kwargs)


def test_a1_discriminative_guard(benchmark):
    def run():
        guarded = _experiment(scenarios=("default", "evolve"))
        unguarded = _experiment(scenarios=("default", "evolve"), threshold=0.0)
        return guarded, unguarded

    guarded, unguarded = one_shot(benchmark, run)
    g_speedups = sorted(guarded.speedups("evolve"))
    u_speedups = sorted(unguarded.speedups("evolve"))
    print(f"\nguarded:   min={g_speedups[0]:.3f} median={g_speedups[RUNS//2]:.3f}")
    print(f"unguarded: min={u_speedups[0]:.3f} median={u_speedups[RUNS//2]:.3f}")
    applied_unguarded = sum(1 for o in unguarded.evolve if o.applied_prediction)
    applied_guarded = sum(1 for o in guarded.evolve if o.applied_prediction)
    assert applied_unguarded >= applied_guarded
    # The guard protects the worst case.
    assert g_speedups[0] >= u_speedups[0] - 0.02


def test_a2_decay_factor(benchmark):
    def run():
        return {
            gamma: _experiment(scenarios=("default", "evolve"), gamma=gamma)
            for gamma in (0.2, 0.7, 0.95)
        }

    results = one_shot(benchmark, run)
    print()
    for gamma, result in results.items():
        confs = result.confidences()
        jumps = [abs(b - a) for a, b in zip(confs, confs[1:])]
        mean_jump = sum(jumps) / len(jumps)
        applied = sum(1 for o in result.evolve if o.applied_prediction)
        print(f"gamma={gamma}: mean confidence jump={mean_jump:.3f} applied={applied}")
    jump = lambda r: sum(
        abs(b - a) for a, b in zip(r.confidences(), r.confidences()[1:])
    )
    # Larger gamma → jumpier confidence.
    assert jump(results[0.2]) < jump(results[0.95])


def test_a3_tree_vs_majority(benchmark):
    def run():
        tree = _experiment(scenarios=("default", "evolve"))
        majority = _experiment(
            scenarios=("default", "evolve"),
            tree_params=TreeParams(max_depth=0),
        )
        return tree, majority

    tree, majority = one_shot(benchmark, run)
    tree_acc = sum(tree.accuracies()) / len(tree.accuracies())
    maj_acc = sum(majority.accuracies()) / len(majority.accuracies())
    print(f"\ntree accuracy={tree_acc:.3f} majority accuracy={maj_acc:.3f}")
    assert tree_acc > maj_acc + 0.02, "the tree must beat majority voting"


def test_a4_sampler_granularity(benchmark):
    coarse_config = VMConfig(
        sample_interval=DEFAULT_CONFIG.sample_interval * 4
    )

    def run():
        fine = _experiment(scenarios=("default", "evolve"))
        coarse = _experiment(
            scenarios=("default", "evolve"), config=coarse_config
        )
        return fine, coarse

    fine, coarse = one_shot(benchmark, run)
    fine_median = sorted(fine.speedups("evolve"))[RUNS // 2]
    coarse_median = sorted(coarse.speedups("evolve"))[RUNS // 2]
    print(f"\nfine sampler median speedup={fine_median:.3f}")
    print(f"coarse sampler median speedup={coarse_median:.3f}")
    # With a sluggish reactive baseline, proactive prediction is worth at
    # least as much (usually more).
    assert coarse_median >= fine_median - 0.05


def test_a5_phase_comparator(benchmark):
    """Phase-based adaptation (Gu & Verbrugge) vs Evolve: the paper calls
    them complementary — phase adaptation cannot exploit cross-run input
    knowledge, so Evolve's median speedup should be at least as high."""

    def run():
        return _experiment(scenarios=("default", "phase", "evolve"))

    result = one_shot(benchmark, run)
    phase_median = sorted(result.speedups("phase"))[RUNS // 2]
    evolve_median = sorted(result.speedups("evolve"))[RUNS // 2]
    print(f"\nphase median={phase_median:.3f} evolve median={evolve_median:.3f}")
    assert evolve_median >= phase_median - 0.02
    # The phase scheme stays in the default's ballpark on these workloads.
    assert 0.8 < phase_median < 1.3
