"""Wall-clock benchmarks for the fast-path execution engine.

pytest-benchmark twin of ``repro bench``: times the reference loop and
the fast engine on the suite's workloads and checks the fast path's
speedup target. Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_vm.py -q
"""

import pytest

from repro.bench.vmbench import (
    WORKLOADS,
    bench_report,
    bench_workloads,
    compare_to_baseline,
    validate_bench_report,
)
from repro.lang import compile_source
from repro.vm import Interpreter

pytestmark = pytest.mark.bench

#: Loop trip count for the per-engine pytest-benchmark timings.
N = 30_000


@pytest.mark.parametrize("engine", ["reference", "fast"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_engine_throughput(benchmark, workload, engine):
    program = compile_source(WORKLOADS[workload])

    def run():
        interp = Interpreter(program, engine=engine)
        interp.run((N,))
        return interp.profile.instructions_executed

    instructions = benchmark(run)
    assert instructions > N


def test_fast_engine_speedup_target():
    """The tentpole acceptance bar: >=3x over the reference interpreter."""
    rows = bench_workloads(quick=True, repeats=3)
    speedups = [row["speedup"] for row in rows]
    best = max(speedups)
    assert best >= 3.0, f"fast engine best speedup {best:.2f}x < 3x target"


def test_bench_report_schema_and_baseline(tmp_path):
    report = bench_report(quick=True)
    validate_bench_report(report)
    # A report is always within tolerance of itself.
    assert compare_to_baseline(report, report) == []
