"""E5 — §V-B.2: overhead of the evolvable machinery.

Checks the published bound: feature extraction plus prediction stay a tiny
share of run time — under 0.4 % for most runs, never above ~1.4 %
(the paper's worst case, Bloat on a small input).
"""

from repro.experiments.overhead import render, run_overhead

from conftest import one_shot


def test_overhead(benchmark, runs_override):
    rows = one_shot(
        benchmark, run_overhead, seed=0, runs_override=runs_override
    )
    print()
    print(render(rows))

    assert len(rows) == 11
    typical = sorted(row.mean_fraction for row in rows)
    assert typical[len(typical) // 2] < 0.004, "typical overhead must stay <0.4%"
    worst = max(row.max_fraction for row in rows)
    assert worst < 0.02, f"worst-case overhead {worst:.3%} far above the paper's 1.38%"
