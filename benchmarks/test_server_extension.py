"""E8 (extension) — request-specific server optimization (§V discussion).

The paper projects Evolve onto long-running servers ("request-specific
optimizations"). Expected shape: mean and tail (p99) latency improve under
the learned per-request strategies; the smallest requests pay a small
prediction cost (the §V-B.2 small-input overhead effect).
"""

from repro.experiments.server_study import render, run_server_study

from conftest import FULL, one_shot


def test_server_study(benchmark):
    requests = 200 if FULL else 100
    result = one_shot(benchmark, run_server_study, seed=0, requests=requests)
    print()
    print(render(result))

    mean_speedup = (
        result.default_latency["mean"] / result.evolve_latency["mean"]
    )
    p99_speedup = result.default_latency["p99"] / result.evolve_latency["p99"]
    assert mean_speedup > 1.1, "mean request latency must improve"
    assert p99_speedup > 1.2, "the heavy tail must improve strongly"
    assert result.applied_fraction > 0.5
