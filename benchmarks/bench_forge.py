"""Wall-clock benchmarks for the forge dataset factory.

pytest twin of the ``datagen`` section of ``repro bench``: times the
forked-run labeler against the independent-runs baseline and the
end-to-end forge pipeline. Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_forge.py -q
"""

import pytest

from repro.bench.forgebench import bench_fork, bench_pipeline

pytestmark = pytest.mark.bench


def test_fork_labeling_speedup_target():
    """The forge acceptance bar: forked labeling >=3x over naive at
    bit-identical labels."""
    fork = bench_fork(quick=True)
    assert fork["identical_labels"] is True
    assert fork["speedup"] >= 3.0, (
        f"forked labeling speedup {fork['speedup']:.2f}x < 3x target"
    )


def test_pipeline_throughput_positive():
    pipe = bench_pipeline(quick=True)
    assert pipe["rows"] > 0
    assert pipe["trained"] is True
    assert pipe["rows_per_s_generated"] > 0
    assert pipe["rows_per_s_trained"] > 0
    # The streaming writer's memory bound: resident rows never exceed
    # one shard regardless of run size.
    assert pipe["max_resident_rows"] <= 50_000
