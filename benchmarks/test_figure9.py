"""E3 — Figure 9: speedup vs. default running time (Mtrt, Compress).

Checks the published correlation: Evolve's benefit grows with running time
through the mid-range, Evolve beats Rep most in that region, and for very
long runs the advantage diminishes (both converge toward 1× as compile
costs amortize away) — Compress's tail is the paper's example.
"""

import pytest

from repro.experiments.figure9 import FIGURE9_PROGRAMS, render, run_figure9

from conftest import FULL, one_shot


@pytest.mark.parametrize("program", list(FIGURE9_PROGRAMS))
def test_figure9(benchmark, program):
    runs = FIGURE9_PROGRAMS[program] if FULL else 30
    curve = one_shot(benchmark, run_figure9, program, seed=0, runs=runs)
    print()
    print(render(curve))

    assert len(curve.points) > 5, "too few predicting runs to chart"
    times = [p.default_seconds for p in curve.points]
    assert times == sorted(times)

    buckets = curve.correlation_buckets(4)
    assert len(buckets) >= 2
    # Evolve helps overall…
    mean_evolve = sum(p.evolve_speedup for p in curve.points) / len(curve.points)
    assert mean_evolve > 1.0
    # …and the mid-range buckets do at least as well as the extremes
    # (rising-then-diminishing correlation).
    evolve_by_bucket = [b[1] for b in buckets]
    assert max(evolve_by_bucket[1:-1] or evolve_by_bucket) >= evolve_by_bucket[-1] - 0.05
