"""E2 — Figure 8: temporal learning curves for Mtrt and RayTracer.

Checks the published shapes: confidence and accuracy ascend across runs;
once the gate opens, Evolve's speedups materialize; Evolve's mean speedup
beats Rep's on both programs (clearly on Mtrt, at least slightly on
RayTracer).
"""

import pytest

from repro.experiments.figure8 import render, run_figure8

from conftest import one_shot


@pytest.mark.parametrize("program", ["Mtrt", "RayTracer"])
def test_figure8(benchmark, runs_override, program):
    runs = runs_override if runs_override is not None else 40
    curves = one_shot(benchmark, run_figure8, program, seed=0, runs=runs)
    print()
    print(render(curves))

    n = len(curves.confidence)
    # Ascending trend: late confidence beats early confidence.
    early_conf = sum(curves.confidence[: n // 3]) / (n // 3)
    late_conf = sum(curves.confidence[-(n // 3):]) / (n // 3)
    assert late_conf > early_conf

    late_acc = sum(curves.accuracy[-(n // 3):]) / (n // 3)
    assert late_acc > 0.6

    mean_evolve = sum(curves.evolve_speedup) / n
    mean_rep = sum(curves.rep_speedup) / n
    print(f"\nmean speedup: evolve={mean_evolve:.3f} rep={mean_rep:.3f}")
    assert mean_evolve > 1.0
    assert mean_evolve > mean_rep - 0.02
