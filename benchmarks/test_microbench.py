"""Substrate microbenchmarks (classic pytest-benchmark timing).

These track the performance of the pieces everything else stands on: the
interpreter dispatch loop, the JIT pass pipeline, classification-tree
fitting, and XICL translation.
"""

from random import Random

from repro.bench import get_benchmark
from repro.lang import compile_source
from repro.learning import ClassificationTree, Dataset
from repro.vm import DEFAULT_CONFIG, Interpreter, JITCompiler
from repro.vm.opt.pipeline import run_pipeline
from repro.xicl import FeatureVector


def test_interpreter_throughput(benchmark):
    program = compile_source(
        """
        fn work(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) { s = s + i * 3 - (i % 7); }
          return s;
        }
        fn main() { return work(3000); }
        """
    )

    def run():
        interp = Interpreter(program)
        interp.run(())
        return interp.profile.instructions_executed

    instructions = benchmark(run)
    assert instructions > 10_000


def test_jit_pipeline_level2(benchmark):
    bench = get_benchmark("Bloat")
    program = bench.program
    methods = list(program)

    def compile_all():
        return [
            run_pipeline(program, method, 2)[0] for method in methods
        ]

    codes = benchmark(compile_all)
    assert len(codes) == len(methods)


def test_tree_fit_200_rows(benchmark):
    rng = Random(3)
    ds = Dataset()
    for _ in range(200):
        v = FeatureVector()
        x = rng.uniform(0, 100)
        v.append_value("x", x)
        v.append_value("mode", rng.choice(["a", "b"]))
        v.append_value("noise", rng.uniform(0, 1))
        ds.add(v, -1 if x < 30 else (1 if x < 70 else 2))

    tree = benchmark(lambda: ClassificationTree().fit(ds))
    assert tree.used_features()


def test_xicl_translation(benchmark):
    bench = get_benchmark("Mtrt")
    app, inputs = bench.build(seed=1)
    translator = app.make_translator()
    cmdlines = [bi.cmdline for bi in inputs]

    def translate_all():
        return [translator.build_fvector(cmd) for cmd in cmdlines]

    vectors = benchmark(translate_all)
    assert len(vectors) == len(cmdlines)


def test_rep_strategy_search(benchmark):
    from repro.aos import AdaptiveController, ProfileRepository

    bench = get_benchmark("RayTracer")
    app, inputs = bench.build(seed=1)
    jit = JITCompiler(app.program, DEFAULT_CONFIG)
    repo = ProfileRepository(jit, DEFAULT_CONFIG.sample_interval)
    for i, bi in enumerate(inputs):
        interp = Interpreter(app.program, jit=jit, rng_seed=i)
        AdaptiveController(interp)
        tokens = app.split_cmdline(bi.cmdline)
        fv = app.make_translator().build_fvector(tokens)
        repo.record_run(interp.run(app.entry_args(tokens, fv)))

    def derive():
        repo._cached_strategy = None
        return repo.strategy()

    strategy = benchmark(derive)
    assert len(strategy) >= 1
