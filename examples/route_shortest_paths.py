"""The paper's running example: the `route` shortest-path finder.

Run:  python examples/route_shortest_paths.py

Reproduces Section III end to end: the XICL specification of Figure 2, the
programmer-defined ``mNodes``/``mEdges`` feature extractors, translation of
``route -n 3 graph1`` into the feature vector ``(3, 0, 100, 1000)``, and the
evolvable VM learning that the right optimization level of the Dijkstra
kernel follows the graph size.
"""

from random import Random

from repro.core import Application, EvolvableVM, run_default
from repro.lang import compile_source
from repro.xicl import (
    InMemoryFileSystem,
    MetadataFeature,
    XFMethodRegistry,
    parse_spec,
)

# The route program: repeated Dijkstra-style searches over a graph model.
PROGRAM = compile_source(
    """
    fn parse_graph(nodes, edges) {
      burn(nodes * 4 + edges * 2);
      return nodes;
    }
    fn relax_edges(edges) {
      burn(edges * 3);
      return edges;
    }
    fn extract_min(nodes) {
      var logn = 1;
      var span = nodes;
      while (span > 1) { span = span / 2; logn = logn + 1; }
      burn(14 * logn);
      return logn;
    }
    fn dijkstra(nodes, edges) {
      var visited = 0;
      while (visited < nodes) {
        extract_min(nodes);
        visited = visited + 8;
      }
      relax_edges(edges);
      return visited;
    }
    fn report_path(echo) {
      if (echo == 1) { burn(600); print(1); }
      return 0;
    }
    fn main(paths, echo, nodes, edges) {
      parse_graph(nodes, edges);
      var p = 0;
      while (p < paths) {
        dijkstra(nodes, edges);
        p = p + 1;
      }
      report_path(echo);
      return paths;
    }
    """,
    name="route",
)

# Figure 2 (b), verbatim structure.
SPEC = parse_spec(
    """
    option  {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}
    option  {name=-e:--echo; type=BIN; attr=VAL; default=0; has_arg=n}
    operand {position=1:$; type=FILE; attr=mNodes:mEdges}
    """,
    application="route",
)


def build_app(graphs: dict[str, tuple[int, int]]) -> Application:
    registry = XFMethodRegistry()
    registry.register(MetadataFeature("mNodes", "nodes"))
    registry.register(MetadataFeature("mEdges", "edges"))
    fs = InMemoryFileSystem()
    for path, (nodes, edges) in graphs.items():
        fs.add_stub(path, size_bytes=edges * 16, nodes=nodes, edges=edges)

    def launcher(tokens, fv, _fs):
        return (
            int(fv["-n.VAL"]),
            int(fv["-e.VAL"]),
            int(fv["operands1_end.mNodes"]),
            int(fv["operands1_end.mEdges"]),
        )

    return Application(
        name="route",
        program=PROGRAM,
        spec=SPEC,
        registry=registry,
        filesystem=fs,
        launcher=launcher,
    )


def main() -> None:
    graphs = {
        "graph1": (100, 1_000),
        "graph2": (2_000, 40_000),
        "graph3": (20_000, 500_000),
    }
    app = build_app(graphs)

    # The paper's worked example: route -n 3 graph1 → (3, 0, 100, 1000).
    translator = app.make_translator()
    fv = translator.build_fvector("-n 3 graph1")
    print("feature vector for 'route -n 3 graph1':")
    for feature in fv:
        print(f"  {feature.name} = {feature.value}")

    vm = EvolvableVM(app)
    rng = Random(7)
    print(f"\n{'run':>4} {'cmdline':<22} {'applied':<8} {'conf':>5} {'speedup':>8}")
    for run_index in range(16):
        graph = rng.choice(list(graphs))
        cmdline = f"-n {rng.choice([1, 3, 10])} {graph}"
        outcome = vm.run(cmdline, rng_seed=run_index)
        baseline = run_default(app, cmdline, rng_seed=run_index)
        print(
            f"{run_index:>4} {cmdline:<22} {str(outcome.applied_prediction):<8} "
            f"{outcome.confidence_after:>5.2f} "
            f"{outcome.speedup_vs(baseline):>8.3f}"
        )

    print("\ndijkstra model:")
    print(vm.models.model_for("dijkstra").render())


if __name__ == "__main__":
    main()
