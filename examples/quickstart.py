"""Quickstart: build an application, let the VM evolve across runs.

Run:  python examples/quickstart.py

This walks the full pipeline on a small program whose optimal JIT levels
depend on its input: write a program in MiniLang, describe its command
line in XICL, wrap both in an Application, and watch the evolvable VM
learn input-specific optimization strategies across production runs.
"""

from random import Random

from repro.core import Application, EvolvableVM, run_default
from repro.lang import compile_source
from repro.xicl import parse_spec

# 1. A program with two kernels; which one is hot depends on the input.
PROGRAM = compile_source(
    """
    fn transform(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { burn(420); s = s + i; }
      return s;
    }
    fn analyze(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { burn(900); s = s + i * i; }
      return s;
    }
    fn main(mode, n) {
      if (mode == 0) { return transform(n); }
      return analyze(n);
    }
    """,
    name="quickstart",
)

# 2. An XICL specification for its command line: mode and size options.
SPEC = parse_spec(
    """
    option {name=-mode; type=NUM; attr=VAL; default=0; has_arg=y}
    option {name=-n; type=NUM; attr=VAL; default=200; has_arg=y}
    """
)

# 3. The launcher maps extracted features to the entry method's arguments.
APP = Application(
    name="quickstart",
    program=PROGRAM,
    spec=SPEC,
    launcher=lambda tokens, fv, fs: (int(fv["-mode.VAL"]), int(fv["-n.VAL"])),
)


def main() -> None:
    vm = EvolvableVM(APP)
    rng = Random(42)
    print(f"{'run':>4} {'input':<18} {'applied':<8} {'acc':>5} {'conf':>5} {'speedup':>8}")
    for run_index in range(18):
        cmdline = f"-mode {rng.choice([0, 1])} -n {rng.choice([60, 500, 2000])}"
        outcome = vm.run(cmdline, rng_seed=run_index)
        baseline = run_default(APP, cmdline, rng_seed=run_index)
        print(
            f"{run_index:>4} {cmdline:<18} "
            f"{str(outcome.applied_prediction):<8} "
            f"{outcome.accuracy:>5.2f} {outcome.confidence_after:>5.2f} "
            f"{outcome.speedup_vs(baseline):>8.3f}"
        )
    print("\nLearned per-method models (used features):")
    for method in vm.models.method_names:
        model = vm.models.model_for(method)
        print(f"  {method}: features={model.used_features()}")
        for line in model.render().splitlines()[:6]:
            print(f"    {line}")


if __name__ == "__main__":
    main()
