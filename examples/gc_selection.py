"""Input-specific garbage-collector selection (the paper's §VI extension).

Run:  python examples/gc_selection.py

A request-processing service's inputs differ in how much allocated data
survives: low-survival workloads favor the copying (semispace) collector,
high-survival ones favor mark-sweep. The evolvable VM learns the mapping
from command-line features to the winning collector and applies it
proactively — the "input-specific selection of garbage collectors" the
paper projects from the same machinery.
"""

from random import Random

from repro.core import EvolvableVM
from repro.experiments.gc_study import build_service_app, generate_inputs


def main() -> None:
    app = build_service_app()
    vm = EvolvableVM(app, select_gc=True)
    rng = Random(9)
    population = generate_inputs(Random(2))

    print(f"{'run':>4} {'input':<24} {'applied':<10} {'ideal':<10} {'ok':<4} {'gc pauses (k)':>13}")
    for run_index in range(24):
        cmdline = population[rng.randrange(len(population))]
        outcome = vm.run(cmdline, rng_seed=run_index)
        decision = outcome.gc_decision
        print(
            f"{run_index:>4} {cmdline:<24} {decision.applied:<10} "
            f"{decision.ideal:<10} {str(decision.correct):<4} "
            f"{outcome.profile.gc_pause_cycles / 1e3:>13.1f}"
        )

    selector = vm.gc_selector
    print(f"\nselection accuracy: {selector.selection_accuracy():.2f}")
    print(f"confidence: {selector.confidence.value:.2f}")
    print("\nlearned collector model:")
    print(selector.model.render())


if __name__ == "__main__":
    main()
