"""Interactive applications: runtime feature passing with updateV/done.

Run:  python examples/interactive_session.py

Section III-B.4 of the paper: interactive programs expose new input at
interactive points. The application hands values it computes at runtime
(here: the size of the document a user opens) to the translator through
the ``update_v``/``done`` channel, and the predictor makes an input-
specific decision the command line alone could never support.
"""

from repro.core import Application, EvolvableVM
from repro.lang import compile_source
from repro.xicl import parse_spec

PROGRAM = compile_source(
    """
    fn reflow(lines) {
      var l = 0;
      while (l < lines) { burn(300); l = l + 10; }
      return lines;
    }
    fn highlight(lines) {
      var l = 0;
      while (l < lines) { burn(700); l = l + 10; }
      return lines;
    }
    fn main(lines, rich) {
      reflow(lines);
      if (rich == 1) { highlight(lines); }
      return lines;
    }
    """,
    name="editor",
)

SPEC = parse_spec(
    """
    option {name=-rich; type=BIN; attr=VAL; default=0; has_arg=n}
    """
)


def launcher(tokens, fv, fs):
    # The document size is a *runtime* feature: it reaches the vector via
    # the updateV channel, not the command line.
    lines = int(fv.get("mDocLines", 500))
    return (lines, int(fv["-rich.VAL"]))


APP = Application(name="editor", program=PROGRAM, spec=SPEC, launcher=launcher)


def main() -> None:
    vm = EvolvableVM(APP)
    # Observe each done() signal — the interactive re-prediction trigger.
    done_signals = []
    vm.translator.channel.on_done(lambda fv: done_signals.append(fv.get("mDocLines")))

    sessions = [
        ("", 200), ("-rich", 12_000), ("", 12_000), ("-rich", 200),
        ("", 200), ("-rich", 12_000), ("", 12_000), ("-rich", 200),
        ("", 12_000), ("-rich", 200), ("", 12_000), ("-rich", 12_000),
    ]
    print(f"{'session':>7} {'doc lines':>9} {'rich':>5} {'applied':<8} {'acc':>5} {'conf':>5}")
    for index, (flags, doc_lines) in enumerate(sessions):
        outcome = vm.run(
            flags, rng_seed=index, runtime_features={"mDocLines": doc_lines}
        )
        print(
            f"{index:>7} {doc_lines:>9} {flags or '-':>5} "
            f"{str(outcome.applied_prediction):<8} "
            f"{outcome.accuracy:>5.2f} {outcome.confidence_after:>5.2f}"
        )

    print(f"\ndone() signals observed: {len(done_signals)}")
    print("reflow model features:", vm.models.model_for("reflow").used_features())
    print("highlight model features:", vm.models.model_for("highlight").used_features())
    print("\nhighlight model:")
    print(vm.models.model_for("highlight").render())


if __name__ == "__main__":
    main()
