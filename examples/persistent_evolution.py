"""Evolution across process lifetimes: saving and restoring learned state.

Run:  python examples/persistent_evolution.py

The paper's VM evolves across *production runs* — separate processes. This
example runs a first "deployment" of an application, persists the learned
models and confidence to disk, then simulates a process restart by
rebuilding the VM from the saved state: the restored VM predicts from its
very first run.
"""

import os
import tempfile
from random import Random

from repro.bench import get_benchmark
from repro.core import EvolvableVM, load_state_file, save_state


def main() -> None:
    bench = get_benchmark("RayTracer")
    app, inputs = bench.build(seed=3)
    rng = Random(5)
    sequence = [rng.randrange(len(inputs)) for _ in range(24)]

    # --- first deployment: learn from 16 runs, then the process exits.
    vm = EvolvableVM(app)
    for i, idx in enumerate(sequence[:16]):
        vm.run(inputs[idx].cmdline, rng_seed=i)
    print(f"first deployment: {vm.run_count} runs, "
          f"confidence={vm.confidence.value:.2f}, "
          f"{len(vm.models)} method models")

    state_path = os.path.join(tempfile.gettempdir(), "raytracer_state.json")
    save_state(vm, state_path)
    print(f"state saved to {state_path} "
          f"({os.path.getsize(state_path)} bytes)")

    # --- process restart: a fresh VM restored from disk.
    restored = EvolvableVM(app)
    load_state_file(restored, state_path)
    print(f"\nrestored VM: confidence={restored.confidence.value:.2f}, "
          f"{len(restored.models)} method models")

    print(f"\n{'run':>4} {'input':<14} {'applied':<8} {'acc':>5}")
    for i, idx in enumerate(sequence[16:], start=16):
        outcome = restored.run(inputs[idx].cmdline, rng_seed=i)
        print(f"{i:>4} {inputs[idx].cmdline:<14} "
              f"{str(outcome.applied_prediction):<8} {outcome.accuracy:>5.2f}")

    first = restored.outcomes[0]
    assert first.applied_prediction, "restored VM should predict immediately"
    print("\nrestored VM applied its prediction on the very first run.")


if __name__ == "__main__":
    main()
