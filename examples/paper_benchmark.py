"""Run a paper benchmark under all three optimization regimes.

Run:  python examples/paper_benchmark.py [BenchmarkName] [runs]

Executes one of the 11 Table I workloads (default: RayTracer) under
Default, Rep, and Evolve side by side and prints the per-run comparison —
a miniature of the Figure 8 experiment.
"""

import sys

from repro.bench import all_benchmarks, get_benchmark
from repro.experiments import run_experiment
from repro.experiments.report import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "RayTracer"
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    bench = get_benchmark(name)
    print(f"{bench.name} ({bench.suite}) — {len(bench.program)} methods, "
          f"{bench.n_inputs} inputs, {runs} runs\n")

    result = run_experiment(bench, seed=11, runs=runs)
    rows = []
    for i, (default, rep, evolve) in enumerate(
        zip(result.default, result.rep, result.evolve)
    ):
        rows.append(
            [
                i + 1,
                result.inputs[result.sequence[i]].cmdline[:40],
                f"{default.profile.total_cycles / 1e6:.2f}",
                f"{default.total_cycles / rep.total_cycles:.3f}",
                f"{default.total_cycles / evolve.total_cycles:.3f}",
                "yes" if evolve.applied_prediction else "no",
                f"{evolve.confidence_after:.2f}",
            ]
        )
    print(
        format_table(
            ["run", "input", "default (s)", "rep", "evolve", "applied", "conf"],
            rows,
        )
    )

    evolve_speedups = result.speedups("evolve")
    rep_speedups = result.speedups("rep")
    print(f"\nmedian speedup: evolve={sorted(evolve_speedups)[runs // 2]:.3f} "
          f"rep={sorted(rep_speedups)[runs // 2]:.3f}")
    print("\navailable benchmarks:", ", ".join(b.name for b in all_benchmarks()))


if __name__ == "__main__":
    main()
