"""Tests for the request-specific server study."""

import pytest

from repro.experiments.server_study import (
    build_server_app,
    generate_request_stream,
    render,
    run_server_study,
    _percentile,
)
from random import Random


class TestPercentile:
    def test_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0

    def test_interpolation(self):
        assert _percentile([0.0, 10.0], 0.5) == 5.0


class TestServerApp:
    def test_endpoints_route_correctly(self):
        from repro.core import run_default

        app = build_server_app()
        search = run_default(app, "-e search -b 2048", rng_seed=0)
        render_ = run_default(app, "-e render -b 2048", rng_seed=0)
        stats = run_default(app, "-e stats -b 2048", rng_seed=0)
        assert search.profile.invocations.get("endpoint_search")
        assert render_.profile.invocations.get("endpoint_render")
        assert stats.profile.invocations.get("endpoint_stats")
        assert not search.profile.invocations.get("endpoint_render")

    def test_stream_is_mixed(self):
        stream = generate_request_stream(Random(3), 60)
        assert len(stream) == 60
        assert len({req.split()[1] for req in stream}) == 3


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_server_study(seed=1, requests=70)

    def test_mean_latency_improves(self, result):
        assert (
            result.default_latency["mean"] > result.evolve_latency["mean"]
        ), "request-specific prediction must cut mean latency"

    def test_tail_improves(self, result):
        assert (
            result.default_latency["p99"] / result.evolve_latency["p99"] > 1.1
        )

    def test_predictions_eventually_apply(self, result):
        assert result.applied_fraction > 0.5

    def test_render_reports_metrics(self, result):
        text = render(result)
        assert "p99" in text and "speedup" in text


class TestTranslationCache:
    def test_cache_skips_extraction_overhead(self):
        from repro.core import EvolvableVM

        app = build_server_app()
        vm = EvolvableVM(app, cache_translations=True)
        first = vm.run("-e search -b 2048", rng_seed=0)
        second = vm.run("-e search -b 2048", rng_seed=1)
        assert second.overhead_cycles < first.overhead_cycles

    def test_runtime_features_bypass_cache(self):
        from repro.core import EvolvableVM

        app = build_server_app()
        vm = EvolvableVM(app, cache_translations=True)
        vm.run("-e search -b 2048", rng_seed=0)
        out = vm.run(
            "-e search -b 2048", rng_seed=1, runtime_features={"mExtra": 5}
        )
        assert out.fvector.get("mExtra") == 5
