"""Tests for the forge dataset factory: labeler equivalence, shards,
the cross-program prior, the pipeline, and prior-backed cold start.

The labeler's contract is the strictest in the repository: the forked
labeling of any program×input pair must be *bit-identical* (labels,
cycles, compile cycles, faults, heap effects) to labeling by full
independent re-runs — in both child modes — and the whole pipeline must
produce byte-identical shards at any parallelism.
"""

import hashlib
import pickle

import pytest

from repro.core.evolvable import EvolvableVM
from repro.experiments.server_study import build_server_app
from repro.lang import compile_source
from repro.learning.forge import (
    CrossProgramPrior,
    ShardStore,
    ShardWriter,
    forge_columns,
    label_forked,
    label_naive,
    labels_equal,
    merge_matrices,
    method_feature_vector,
    program_features,
    run_forge,
)
from repro.learning.forge.features import forge_kinds, row_values
from repro.learning.forge.labeler import FORGE_CONFIG
from repro.learning.forge.pipeline import (
    WORKLOAD_REPS,
    input_args,
    wrap_workload,
)
from repro.learning.matrix import TrainingMatrix
from repro.testing import compile_module, generate
from repro.vm.config import VMConfig
from repro.vm.opt.jit import JITCompiler

#: Seeded equivalence corpus: enough programs to cover helpers,
#: recursion (tail and non-tail), loops, arrays, and heap intrinsics.
CORPUS_SEED = 5
CORPUS_SIZE = 12
INPUTS_PER_PROGRAM = 2

FAULTING_SOURCE = """
fn main(n) {
  return 1 / (n - n);
}
"""

LOOPING_SOURCE = """
fn main(n) {
  var i = 0;
  var total = 0;
  while (i < 100000) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
"""


def corpus():
    for index in range(CORPUS_SIZE):
        gp = generate(CORPUS_SEED, index)
        program = compile_module(gp.module)
        for k in range(INPUTS_PER_PROGRAM):
            yield program, input_args(CORPUS_SEED, index, k, gp.args)


class TestLabelerEquivalence:
    def test_forked_equals_naive_early_stop(self):
        for program, args in corpus():
            naive = label_naive(program, args)
            forked = label_forked(program, args, early_stop=True)
            assert labels_equal(naive, forked), (program.name, args)

    def test_forked_equals_naive_full_suffix(self):
        for program, args in corpus():
            naive = label_naive(program, args)
            forked = label_forked(program, args, early_stop=False)
            assert labels_equal(naive, forked), (program.name, args)

    def test_shared_jit_and_plan_cache_do_not_change_labels(self):
        gp = generate(CORPUS_SEED, 1)
        program = compile_module(gp.module)
        jit = JITCompiler(program, FORGE_CONFIG)
        plan_cache: dict = {}
        for k in range(4):
            args = input_args(CORPUS_SEED, 1, k, gp.args)
            fresh = label_forked(program, args)
            shared = label_forked(
                program, args, jit=jit, plan_cache=plan_cache
            )
            assert labels_equal(fresh, shared), args
        assert plan_cache  # the partition was actually cached

    def test_fault_edge_divide_by_zero(self):
        program = compile_source(FAULTING_SOURCE)
        naive = label_naive(program, (3,))
        forked = label_forked(program, (3,))
        assert naive.fault is not None
        assert labels_equal(naive, forked)
        assert forked.labels == {}

    def test_fuel_exhaustion_edge(self):
        # A run that dies on the instruction budget must label (or
        # fault) identically under both labelers — children inherit the
        # parent's remaining fuel accounting.
        program = compile_source(LOOPING_SOURCE)
        config = VMConfig(max_instructions=5_000)
        naive = label_naive(program, (1,), config=config)
        forked = label_forked(program, (1,), config=config)
        assert naive.fault is not None
        assert labels_equal(naive, forked)

    def test_labels_are_complete(self):
        program = compile_module(generate(CORPUS_SEED, 2).module)
        labels = label_forked(program, generate(CORPUS_SEED, 2).args)
        assert labels.fault is None
        assert labels.labels
        for method, label in labels.labels.items():
            assert label.ideal is not None, method


class TestFeatures:
    def test_columns_sorted_and_stable(self):
        columns = forge_columns()
        assert list(columns) == sorted(columns)
        assert columns == forge_columns()
        assert len(columns) == len(forge_kinds())

    def test_row_values_width(self):
        gp = generate(CORPUS_SEED, 0)
        program = compile_module(gp.module)
        pfeats = program_features(program)
        values = row_values(pfeats, program.method("main"), gp.args)
        assert len(values) == len(forge_columns())

    def test_method_feature_vector_skips_missing(self):
        gp = generate(CORPUS_SEED, 0)
        program = compile_module(gp.module)
        fvector = method_feature_vector(program, "main", gp.args)
        assert len(fvector) > 0
        assert len(fvector) <= len(forge_columns())


class TestShards:
    def _write_rows(self, tmp_path, rows, shard_rows=4):
        writer = ShardWriter(
            tmp_path, forge_columns(), forge_kinds(), shard_rows=shard_rows
        )
        for values, label, group in rows:
            writer.add(values, label, group)
        writer.close()
        return writer

    def _sample_rows(self, n=10):
        gp = generate(CORPUS_SEED, 0)
        program = compile_module(gp.module)
        pfeats = program_features(program)
        method = program.method("main")
        return [
            (row_values(pfeats, method, (i,)), i % 3, "main")
            for i in range(n)
        ]

    def test_roundtrip(self, tmp_path):
        rows = self._sample_rows(10)
        writer = self._write_rows(tmp_path, rows, shard_rows=4)
        assert writer.shards_written == 3
        assert writer.max_resident_rows == 4
        store = ShardStore(tmp_path)
        assert store.total_rows() == 10
        back = [
            (values, label, group)
            for shard in store.iter_shards()
            for values, label, group in zip(
                shard.values, shard.labels, shard.groups
            )
        ]
        assert back == [
            (tuple(v), label, group) for v, label, group in rows
        ]

    def test_schema_width_enforced(self, tmp_path):
        writer = ShardWriter(tmp_path, forge_columns(), forge_kinds())
        with pytest.raises(ValueError):
            writer.add((1, 2, 3), 0, "main")

    def test_closed_writer_rejects_rows(self, tmp_path):
        rows = self._sample_rows(2)
        writer = self._write_rows(tmp_path, rows)
        with pytest.raises(RuntimeError):
            writer.add(rows[0][0], 0, "main")

    def test_merge_identical_to_fresh_presort(self, tmp_path):
        # The k-way merge of per-shard presorted orders must equal a
        # from-scratch presort of the concatenation, bit for bit.
        rows = self._sample_rows(11)
        self._write_rows(tmp_path, rows, shard_rows=3)
        store = ShardStore(tmp_path)
        matrices = [shard.matrix() for shard in store.iter_shards()]
        merged = merge_matrices(matrices)
        fresh = TrainingMatrix(
            merged.columns, merged.kinds, merged.values
        )
        assert merged.numeric_order == fresh.numeric_order
        assert merged.category_order == fresh.category_order

    def test_merge_rejects_schema_mismatch(self):
        a = TrainingMatrix(("x",), forge_kinds()[:1], ((1,),))
        b = TrainingMatrix(("y",), forge_kinds()[:1], ((1,),))
        with pytest.raises(ValueError):
            merge_matrices([a, b])


def _shard_digest(directory):
    store = ShardStore(directory)
    digest = hashlib.sha256()
    for path in store.paths():
        digest.update(path.read_bytes())
    return digest.hexdigest()


class TestPipeline:
    def test_end_to_end(self, tmp_path):
        stats, prior = run_forge(
            tmp_path, programs=12, inputs_per_program=2, seed=3, jobs=1
        )
        assert stats.rows > 0
        assert stats.shards >= 1
        assert stats.trained is True
        assert "*" in stats.clusters
        assert ShardStore(tmp_path).total_rows() == stats.rows
        assert (tmp_path / "prior.bin").exists()
        assert prior.rows_trained == stats.rows

    def test_jobs_invariance_byte_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_forge(
            serial_dir, programs=8, inputs_per_program=2, seed=9,
            jobs=1, train=False,
        )
        run_forge(
            parallel_dir, programs=8, inputs_per_program=2, seed=9,
            jobs=2, train=False,
        )
        assert _shard_digest(serial_dir) == _shard_digest(parallel_dir)

    def test_shard_rows_bounds_memory(self, tmp_path):
        stats, _ = run_forge(
            tmp_path, programs=6, inputs_per_program=2, seed=3,
            jobs=1, shard_rows=8, train=False,
        )
        assert stats.max_resident_rows <= 8
        assert stats.shards >= 2

    def test_input_args_deterministic_and_in_domain(self):
        a = input_args(1, 2, 3, (0, 0))
        # Pure in (seed, index, k, arity): base values do not matter.
        assert a == input_args(1, 2, 3, (9, 9))
        assert len(a) == 2
        assert all(0 <= v <= 9 for v in a)
        base = (4, 7)
        assert input_args(1, 2, 0, base) == base  # input 0 = fuzz parity

    def test_input_args_workload_profile(self):
        drawn = [
            input_args(1, 2, k, (0, 0), profile="workload")
            for k in range(40)
        ]
        assert drawn == [
            input_args(1, 2, k, (3, 3), profile="workload")
            for k in range(40)
        ]
        reps = [args[0] for args in drawn]
        assert set(reps) <= set(WORKLOAD_REPS)
        # The reps ladder actually spans the crossover: both the
        # baseline-staying bottom and the promoting top occur.
        assert min(reps) == min(WORKLOAD_REPS)
        assert max(reps) == max(WORKLOAD_REPS)
        assert all(
            0 <= v <= 9 for args in drawn for v in args[1:]
        )
        with pytest.raises(ValueError):
            input_args(1, 2, 3, (0,), profile="typo")

    def test_wrap_workload_scales_work_with_reps(self):
        gp = generate(CORPUS_SEED, 1)
        program = compile_module(wrap_workload(gp.module))
        assert "app" in program.method_names
        light = label_naive(
            program, (1,) + gp.args, config=FORGE_CONFIG
        )
        heavy = label_naive(
            program, (200,) + gp.args, config=FORGE_CONFIG
        )
        assert light.fault is None and heavy.fault is None
        work = lambda lab: sum(
            ml.outcomes[-1].cycles for ml in lab.labels.values()
        )
        assert work(heavy) > 50 * work(light)


class TestPrior:
    @pytest.fixture(scope="class")
    def trained(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("forge")
        stats, prior = run_forge(
            tmp, programs=30, inputs_per_program=4, seed=3, jobs=1
        )
        return tmp, stats, prior

    def test_predicts_unseen_program(self, trained):
        _tmp, _stats, prior = trained
        gp = generate(99, 0)  # a stream the prior never saw
        program = compile_module(gp.module)
        levels = prior.predict_program(program)
        assert levels
        assert set(levels) <= set(program.method_names)

    def test_save_load_roundtrip(self, trained):
        tmp, _stats, prior = trained
        loaded = CrossProgramPrior.load(tmp / "prior.bin")
        gp = generate(99, 1)
        program = compile_module(gp.module)
        assert loaded.predict_program(program) == prior.predict_program(
            program
        )
        assert loaded.clusters == prior.clusters

    def test_saved_prior_drops_derived_state(self, trained):
        tmp, _stats, prior = trained
        loaded = CrossProgramPrior.load(tmp / "prior.bin")
        assert loaded._builder._forest is None
        assert len(loaded._builder._matrix_cache) == 0
        # ...and the live prior keeps its cache (save must not mutate).
        assert prior._builder._forest is not None

    def test_prior_is_picklable_after_load(self, trained):
        tmp, _stats, _prior = trained
        loaded = CrossProgramPrior.load(tmp / "prior.bin")
        again = pickle.loads(pickle.dumps(loaded))
        gp = generate(99, 2)
        program = compile_module(gp.module)
        assert again.predict_program(program) == loaded.predict_program(
            program
        )


class TestColdStart:
    @pytest.fixture(scope="class")
    def prior(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("forge-cold")
        _stats, prior = run_forge(
            tmp, programs=30, inputs_per_program=4, seed=3, jobs=1
        )
        return prior

    def test_first_run_applies_prior_advice(self, prior):
        app = build_server_app()
        vm = EvolvableVM(app, prior=prior)
        # The prior is consulted with this run's entry arguments
        # (the i_* feature columns), not just the program statics.
        tokens = app.split_cmdline("-e search -b 8192")
        args = app.entry_args(tokens, vm.translator.build_fvector(tokens))
        advice = prior.predict_program(app.program, args)
        assert advice
        outcome = vm.run("-e search -b 8192", rng_seed=0)
        assert outcome.applied_prediction is True
        assert dict(outcome.predicted.levels) == advice

    def test_without_prior_first_run_is_unguided(self):
        app = build_server_app()
        vm = EvolvableVM(app)
        outcome = vm.run("-e search -b 8192", rng_seed=0)
        assert outcome.applied_prediction is False

    def test_own_models_take_over_from_prior(self, prior):
        # predict() consults the prior only for methods without a
        # fitted in-app tree.
        app = build_server_app()
        vm = EvolvableVM(app, prior=prior, min_rows=2)
        for i in range(6):
            vm.run(f"-e search -b {512 * (i + 1)}", rng_seed=i)
        fvector = vm.translator.build_fvector(
            app.split_cmdline("-e search -b 4096")
        )
        fitted = set(vm.models.predict_all(fvector))
        merged = vm.models.predict(fvector)
        assert fitted  # in-app models actually fitted
        for method in fitted:
            assert method in merged.levels

    def test_build_fleet_passes_prior(self, prior, tmp_path):
        from repro.serving.registry import ModelRegistry
        from repro.serving.tenant import build_fleet

        registry = ModelRegistry(str(tmp_path / "registry"))
        tenants = build_fleet(
            [build_server_app()], registry=registry, prior=prior
        )
        assert tenants[0].vm.prior is prior
        payload = tenants[0].run("-e search -b 8192")
        assert payload["applied_prediction"] is True
