"""Equivalence suite: fast-path engine vs. the reference interpreter.

The fast engine (:mod:`repro.vm.fastpath`) promises *bit-identical*
virtual-cycle semantics: same results, output, heap effects, final
clocks, per-method cycle/work accounts, sample counts, and compile-event
sequences as the reference loop, at every optimization level. These tests
hold it to that over the regression corpus, a seeded fuzz stream,
adaptive (listener-attached) runs, and the resource-limit edges where
batching could plausibly leak.
"""

from pathlib import Path

import pytest

from repro.aos.controller import AdaptiveController
from repro.lang import compile_source
from repro.testing import (
    ENGINE_LEVELS,
    compare_engines,
    generate,
    load_corpus,
)
from repro.vm import Interpreter, Op, VMConfig
from repro.vm.fastpath import (
    F_CMP_JZ,
    F_DUP_ADD,
    F_LC,
    F_LC_ARITH_S,
    F_LL,
    F_LL_CMP_JZ,
    FUSED_BASE,
    decode,
    ensure_decoded,
)
from repro.vm.instructions import Instr

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Seeded fuzz programs checked per CI run. Iteration *i* of seed 1234 is
#: deterministic, so a failure here replays with
#: ``generate(1234, i)`` directly.
FUZZ_SEED = 1234
FUZZ_ITERATIONS = 50

HOT_SRC = """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    total = total + helper(i) * 2 - (i % 5);
    i = i + 1;
  }
  print(total);
  return total;
}
fn helper(x) {
  var acc = 0;
  var j = 0;
  while (j < 12) {
    acc = acc + x * j;
    j = j + 1;
  }
  return acc;
}
"""


def assert_engines_agree(program, args, config=None, rng_seed=0, levels=ENGINE_LEVELS):
    kwargs = {"levels": levels, "rng_seed": rng_seed}
    if config is not None:
        kwargs["config"] = config
    report = compare_engines(program, args, **kwargs)
    assert report.ok, "\n".join(d.describe() for d in report.divergences)
    return report


# ---------------------------------------------------------------------------
# Corpus + fuzz stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "entry", load_corpus(CORPUS_DIR), ids=lambda e: e.name
)
def test_corpus_programs_identical_across_engines(entry):
    program = compile_source(entry.source, name=entry.name)
    assert_engines_agree(program, entry.args)


@pytest.mark.parametrize("index", range(FUZZ_ITERATIONS))
def test_fuzz_programs_identical_across_engines(index):
    case = generate(FUZZ_SEED, index)
    program = compile_source(case.source, name=f"eq_{index}")
    assert_engines_agree(program, case.args)


# ---------------------------------------------------------------------------
# Adaptive runs: listeners disable fusion but must stay identical
# ---------------------------------------------------------------------------

def _adaptive_run(program, args, engine, interval=4_000):
    interp = Interpreter(
        program,
        config=VMConfig(sample_interval=interval),
        rng_seed=3,
        engine=engine,
    )
    AdaptiveController(interp)
    profile = interp.run(args)
    return (
        interp.result,
        tuple(interp.output),
        profile.total_cycles,
        profile.compile_cycles,
        profile.instructions_executed,
        tuple(sorted(profile.samples.items())),
        tuple(sorted(profile.method_cycles.items())),
        tuple(sorted(profile.final_levels.items())),
        tuple(
            (e.method, e.level, e.cycles, e.at_clock)
            for e in profile.compile_events
        ),
    )


def test_adaptive_controller_runs_identical():
    program = compile_source(HOT_SRC)
    ref = _adaptive_run(program, (600,), "reference")
    fast = _adaptive_run(program, (600,), "fast")
    assert ref == fast
    # The run must actually have exercised recompilation for this to mean
    # anything.
    assert any(level > -1 for _, level in ref[7])


def test_fused_mode_disabled_with_listeners():
    program = compile_source(HOT_SRC)
    interp = Interpreter(program, engine="fast")
    assert not interp.sampler.has_listeners
    AdaptiveController(interp)
    assert interp.sampler.has_listeners


# ---------------------------------------------------------------------------
# Resource-limit edges
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fuel", [7, 50, 123, 1000, 4321])
def test_fuel_exhaustion_timing_identical(fuel):
    # The fast engine falls back to the unfused stream near the budget;
    # the fault must surface after exactly the same instruction, with the
    # same partial output and heap effects.
    program = compile_source(HOT_SRC)
    config = VMConfig(max_instructions=fuel)
    assert_engines_agree(program, (600,), config=config)


def test_stack_overflow_identical():
    program = compile_source(
        """
        fn main(n) { return down(n); }
        fn down(k) { return down(k + 1); }
        """
    )
    config = VMConfig(max_call_depth=40)
    # Level 2 eliminates the tail call (no overflow) — levels differ from
    # each other, but the two engines must agree at every level.
    assert_engines_agree(program, (0,), config=config)


def test_runtime_fault_identical():
    program = compile_source(
        """
        fn main(n) {
          var i = 0;
          var s = 0;
          while (i < 50) { s = s + i; i = i + 1; }
          return s / (n - n);
        }
        """
    )
    assert_engines_agree(program, (3,))


# ---------------------------------------------------------------------------
# Decoded-stream unit tests
# ---------------------------------------------------------------------------

def test_decode_is_pc_aligned_and_keeps_standalone_slots():
    code = (
        Instr(Op.LOAD, 1),
        Instr(Op.LOAD, 0),
        Instr(Op.LT),
        Instr(Op.JZ, 9),
        Instr(Op.LOAD, 1),
        Instr(Op.CONST, 1),
        Instr(Op.ADD),
        Instr(Op.STORE, 1),
        Instr(Op.JMP, 0),
        Instr(Op.CONST, 0),
        Instr(Op.RET),
    )
    fops, fargs, pops, pargs = decode(code)
    assert len(fops) == len(fargs) == len(pops) == len(pargs) == len(code)
    # Loop guard fuses into a quad at pc 0; increment fuses at pc 4.
    assert fops[0] == F_LL_CMP_JZ
    assert fargs[0] == (1, 0, int(Op.LT), 9)
    assert fops[4] == F_LC_ARITH_S
    assert fargs[4] == (1, 1, int(Op.ADD), 1)
    # The plain stream always keeps the standalone decoding, so a jump
    # into the middle of a fused window (e.g. pc 2, the LT) still works.
    assert pops == [int(ins.op) for ins in code]
    assert pops[2] == int(Op.LT)
    # Interior slots of a fused window also decode independently: pc 2
    # starts a cmp;JZ pair of its own.
    assert fops[2] == F_CMP_JZ
    assert fargs[2] == (int(Op.LT), 9)


def test_decode_pairs_and_peephole_patterns():
    code = (
        Instr(Op.LOAD, 0),
        Instr(Op.LOAD, 1),
        Instr(Op.DUP),
        Instr(Op.ADD),
        Instr(Op.RET),
    )
    fops, fargs, _, _ = decode(code)
    assert fops[0] == F_LL
    assert fops[2] == F_DUP_ADD
    assert fops[4] == int(Op.RET) < FUSED_BASE


def test_decode_never_fuses_faultable_arithmetic():
    # DIV/MOD can raise; they must stay standalone so fault pcs and the
    # partial accounting around them match the reference exactly.
    code = (
        Instr(Op.LOAD, 0),
        Instr(Op.CONST, 2),
        Instr(Op.DIV),
        Instr(Op.RET),
    )
    fops, _, _, _ = decode(code)
    assert fops[0] == F_LC  # LOAD;CONST still pairs...
    assert fops[2] == int(Op.DIV)  # ...but the DIV stays standalone


def test_ensure_decoded_memoizes_and_pickles_clean():
    import pickle

    from repro.vm import DEFAULT_CONFIG, JITCompiler

    program = compile_source(HOT_SRC)
    jit = JITCompiler(program, DEFAULT_CONFIG)
    compiled = jit.compile("main", 2)
    first = ensure_decoded(compiled)
    assert ensure_decoded(compiled) is first
    clone = pickle.loads(pickle.dumps(compiled))
    assert "_decoded" not in clone.__dict__
    assert clone.code == compiled.code


# ---------------------------------------------------------------------------
# Recompile-queue dedupe (satellite regression test)
# ---------------------------------------------------------------------------

def test_recompile_queue_collapses_to_max_level():
    program = compile_source(HOT_SRC)
    interp = Interpreter(program)
    interp._ensure_state("main")
    # Multiple queued requests for one method — including duplicates and
    # an intermediate tier — must produce exactly one compile, at the max.
    interp.request_recompile("main", 1)
    interp.request_recompile("main", 2)
    interp.request_recompile("main", 1)
    interp._apply_recompiles()
    events = [
        (e.method, e.level)
        for e in interp.profile.compile_events
        if e.level > -1
    ]
    assert events == [("main", 2)]
    assert interp.current_level("main") == 2
    assert interp._recompile_queue == []
