"""Equivalence suite: fast-path and compiled engines vs. the reference.

The fast engine (:mod:`repro.vm.fastpath`) and the closure-compiled tier
(:mod:`repro.vm.closures`) both promise *bit-identical* virtual-cycle
semantics: same results, output, heap effects, final clocks, per-method
cycle/work accounts, sample counts, and compile-event sequences as the
reference loop, at every optimization level. These tests hold them to
that over the regression corpus, seeded fuzz streams, adaptive
(listener-attached) runs, and the resource-limit edges where batching —
per-superinstruction in the fast engine, per-basic-block in the compiled
tier — could plausibly leak.
"""

from pathlib import Path

import pytest

from repro.aos.controller import AdaptiveController
from repro.lang import compile_source
from repro.testing import (
    ENGINE_LEVELS,
    compare_engines,
    generate,
    load_corpus,
)
from repro.vm import Interpreter, Op, VMConfig
from repro.vm.fastpath import (
    F_CMP_JZ,
    F_DUP_ADD,
    F_LC,
    F_LC_ARITH_S,
    F_LL,
    F_LL_CMP_JZ,
    FUSED_BASE,
    decode,
    ensure_decoded,
)
from repro.vm.instructions import Instr

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Seeded fuzz programs checked per CI run. Iteration *i* of seed 1234 is
#: deterministic, so a failure here replays with
#: ``generate(1234, i)`` directly.
FUZZ_SEED = 1234
FUZZ_ITERATIONS = 50

HOT_SRC = """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    total = total + helper(i) * 2 - (i % 5);
    i = i + 1;
  }
  print(total);
  return total;
}
fn helper(x) {
  var acc = 0;
  var j = 0;
  while (j < 12) {
    acc = acc + x * j;
    j = j + 1;
  }
  return acc;
}
"""


def assert_engines_agree(program, args, config=None, rng_seed=0, levels=ENGINE_LEVELS):
    kwargs = {"levels": levels, "rng_seed": rng_seed}
    if config is not None:
        kwargs["config"] = config
    report = compare_engines(program, args, **kwargs)
    assert report.ok, "\n".join(d.describe() for d in report.divergences)
    return report


# ---------------------------------------------------------------------------
# Corpus + fuzz stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "entry", load_corpus(CORPUS_DIR), ids=lambda e: e.name
)
def test_corpus_programs_identical_across_engines(entry):
    program = compile_source(entry.source, name=entry.name)
    assert_engines_agree(program, entry.args)


@pytest.mark.parametrize("index", range(FUZZ_ITERATIONS))
def test_fuzz_programs_identical_across_engines(index):
    case = generate(FUZZ_SEED, index)
    program = compile_source(case.source, name=f"eq_{index}")
    assert_engines_agree(program, case.args)


# ---------------------------------------------------------------------------
# Adaptive runs: listeners disable fusion but must stay identical
# ---------------------------------------------------------------------------

def _adaptive_run(program, args, engine, interval=4_000):
    interp = Interpreter(
        program,
        config=VMConfig(sample_interval=interval),
        rng_seed=3,
        engine=engine,
    )
    AdaptiveController(interp)
    profile = interp.run(args)
    return (
        interp.result,
        tuple(interp.output),
        profile.total_cycles,
        profile.compile_cycles,
        profile.instructions_executed,
        tuple(sorted(profile.samples.items())),
        tuple(sorted(profile.method_cycles.items())),
        tuple(sorted(profile.final_levels.items())),
        tuple(
            (e.method, e.level, e.cycles, e.at_clock)
            for e in profile.compile_events
        ),
    )


def test_adaptive_controller_runs_identical():
    program = compile_source(HOT_SRC)
    ref = _adaptive_run(program, (600,), "reference")
    fast = _adaptive_run(program, (600,), "fast")
    assert ref == fast
    # The run must actually have exercised recompilation for this to mean
    # anything.
    assert any(level > -1 for _, level in ref[7])


def test_fused_mode_disabled_with_listeners():
    program = compile_source(HOT_SRC)
    interp = Interpreter(program, engine="fast")
    assert not interp.sampler.has_listeners
    AdaptiveController(interp)
    assert interp.sampler.has_listeners


# ---------------------------------------------------------------------------
# Resource-limit edges
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fuel", [7, 50, 123, 1000, 4321])
def test_fuel_exhaustion_timing_identical(fuel):
    # The fast engine falls back to the unfused stream near the budget;
    # the fault must surface after exactly the same instruction, with the
    # same partial output and heap effects.
    program = compile_source(HOT_SRC)
    config = VMConfig(max_instructions=fuel)
    assert_engines_agree(program, (600,), config=config)


def test_stack_overflow_identical():
    program = compile_source(
        """
        fn main(n) { return down(n); }
        fn down(k) { return down(k + 1); }
        """
    )
    config = VMConfig(max_call_depth=40)
    # Level 2 eliminates the tail call (no overflow) — levels differ from
    # each other, but the two engines must agree at every level.
    assert_engines_agree(program, (0,), config=config)


def test_runtime_fault_identical():
    program = compile_source(
        """
        fn main(n) {
          var i = 0;
          var s = 0;
          while (i < 50) { s = s + i; i = i + 1; }
          return s / (n - n);
        }
        """
    )
    assert_engines_agree(program, (3,))


# ---------------------------------------------------------------------------
# Compiled-tier corpus: shapes that stress the structurizer and the
# bail-and-replay machinery specifically
# ---------------------------------------------------------------------------

DEEP_NEST_SRC = """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    var j = 0;
    while (j < 4) {
      var k = 0;
      while (k < 3) {
        if (k == 1) {
          total = total + inner(i + j, k);
        } else {
          total = total - 1;
        }
        k = k + 1;
      }
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
fn inner(a, b) {
  var s = 0;
  var m = 0;
  while (m < b + 2) {
    s = s + a % 7;
    m = m + 1;
  }
  return s;
}
"""

COMPILED_FUZZ_SEED = 20_260_808


def test_compiled_deep_nesting_identical():
    program = compile_source(DEEP_NEST_SRC)
    assert_engines_agree(program, (9,))


@pytest.mark.parametrize("fuel", [5, 37, 200, 777, 3000])
def test_compiled_fuel_exhaustion_mid_loop(fuel):
    # Budget-critical runs must bail out of the compiled tier and replay
    # on the fast engine; the fault surfaces after exactly the same
    # instruction with the same partial output either way.
    program = compile_source(DEEP_NEST_SRC)
    config = VMConfig(max_instructions=fuel)
    assert_engines_agree(program, (9,), config=config)


def test_compiled_sampler_attached_falls_back_identically():
    # Adaptive runs attach sample listeners; the compiled tier must
    # refuse them (a listener can observably act between any two
    # instructions) and the run must land on the fast path, bit-identical
    # to the reference.
    program = compile_source(HOT_SRC)
    ref = _adaptive_run(program, (600,), "reference")
    compiled = _adaptive_run(program, (600,), "compiled")
    assert ref == compiled


def test_resolve_compiled_refuses_listeners_and_extreme_depth():
    from repro.vm.closures import MAX_COMPILED_DEPTH, resolve_compiled

    program = compile_source(HOT_SRC)
    interp = Interpreter(program, engine="compiled")
    assert resolve_compiled(interp, "main") is not None
    AdaptiveController(interp)
    assert resolve_compiled(interp, "main") is None

    deep = Interpreter(
        program,
        config=VMConfig(max_call_depth=MAX_COMPILED_DEPTH + 1),
        engine="compiled",
    )
    assert resolve_compiled(deep, "main") is None
    # The run itself still executes (on the fast engine) and agrees.
    assert_engines_agree(
        program, (50,),
        config=VMConfig(max_call_depth=MAX_COMPILED_DEPTH + 1),
        levels=(None,),
    )


@pytest.mark.parametrize("depth", [5, 64, 1499])
def test_compiled_stack_overflow_edges(depth):
    # Recursion that dies mid-flight at various depths, including just
    # under the compiled tier's own ceiling.
    program = compile_source(
        """
        fn main(n) { return down(n); }
        fn down(k) { return down(k + 1) + 1; }
        """
    )
    config = VMConfig(max_call_depth=depth)
    assert_engines_agree(program, (0,), config=config, levels=(None, 2))


def test_compiled_runtime_fault_edges():
    # Overflow/fault edges inside loops: division, modulo, out-of-bounds
    # indexing, negative allocation — each must fault identically.
    for src, args in [
        (
            """
            fn main(n) {
              var i = 0;
              var s = 1;
              while (i < 40) { s = s * 2; i = i + 1; }
              return s % (n - 7);
            }
            """,
            (7,),
        ),
        (
            """
            fn main(n) {
              var a = array(4);
              var i = 0;
              while (i < 10) { a[i] = i; i = i + 1; }
              return a[0];
            }
            """,
            (0,),
        ),
        (
            """
            fn main(n) {
              var a = array(n);
              return a[0];
            }
            """,
            (-3,),
        ),
    ]:
        program = compile_source(src)
        assert_engines_agree(program, args)


@pytest.mark.parametrize("index", range(FUZZ_ITERATIONS))
def test_fresh_fuzz_programs_identical_across_engines(index):
    # A second, compiled-era fuzz stream (fresh seed) over all three
    # engines: results, output, heap, and cycles must match bit-for-bit.
    case = generate(COMPILED_FUZZ_SEED, index)
    program = compile_source(case.source, name=f"ceq_{index}")
    assert_engines_agree(program, case.args, levels=(None, 2))


def test_ensure_closure_memoizes_and_pickles_clean():
    import pickle

    from repro.vm import DEFAULT_CONFIG, JITCompiler
    from repro.vm.closures import ensure_closure

    program = compile_source(HOT_SRC)
    jit = JITCompiler(program, DEFAULT_CONFIG)
    compiled = jit.compile("main", 2)
    first = ensure_closure(compiled, program)
    assert ensure_closure(compiled, program) is first
    assert isinstance(compiled.__dict__["_closure_src"], str)
    # The hot-swap staleness guarantee: artifacts round-tripping through
    # the shared JIT artifact cache must never resurrect a generated
    # function object — only source (separately cached) survives.
    clone = pickle.loads(pickle.dumps(compiled))
    assert "_closure" not in clone.__dict__
    assert "_closure_src" not in clone.__dict__
    assert "_closure_unsupported" not in clone.__dict__
    assert clone.code == compiled.code


def test_closure_source_cached_in_artifact_cache(tmp_path):
    from repro.vm import DEFAULT_CONFIG, JITCompiler
    from repro.vm.closures import closure_source_key, ensure_closure
    from repro.vm.opt.artifact_cache import JITArtifactCache

    program = compile_source(HOT_SRC)
    cache = JITArtifactCache(str(tmp_path))
    jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    compiled = jit.compile("main", 0)
    ensure_closure(compiled, program, cache)
    src = compiled.__dict__["_closure_src"]
    key = closure_source_key(
        compiled, program.method("main").num_params
    )
    assert cache.get(key) == src
    # A fresh artifact (fresh memo) reuses the cached source verbatim.
    jit2 = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    compiled2 = jit2.compile("main", 0)
    assert "_closure" not in compiled2.__dict__ or compiled2 is compiled
    ensure_closure(compiled2, program, cache)
    assert compiled2.__dict__["_closure_src"] == src


# ---------------------------------------------------------------------------
# Decoded-stream unit tests
# ---------------------------------------------------------------------------

def test_decode_is_pc_aligned_and_keeps_standalone_slots():
    code = (
        Instr(Op.LOAD, 1),
        Instr(Op.LOAD, 0),
        Instr(Op.LT),
        Instr(Op.JZ, 9),
        Instr(Op.LOAD, 1),
        Instr(Op.CONST, 1),
        Instr(Op.ADD),
        Instr(Op.STORE, 1),
        Instr(Op.JMP, 0),
        Instr(Op.CONST, 0),
        Instr(Op.RET),
    )
    fops, fargs, pops, pargs = decode(code)
    assert len(fops) == len(fargs) == len(pops) == len(pargs) == len(code)
    # Loop guard fuses into a quad at pc 0; increment fuses at pc 4.
    assert fops[0] == F_LL_CMP_JZ
    assert fargs[0] == (1, 0, int(Op.LT), 9)
    assert fops[4] == F_LC_ARITH_S
    assert fargs[4] == (1, 1, int(Op.ADD), 1)
    # The plain stream always keeps the standalone decoding, so a jump
    # into the middle of a fused window (e.g. pc 2, the LT) still works.
    assert pops == [int(ins.op) for ins in code]
    assert pops[2] == int(Op.LT)
    # Interior slots of a fused window also decode independently: pc 2
    # starts a cmp;JZ pair of its own.
    assert fops[2] == F_CMP_JZ
    assert fargs[2] == (int(Op.LT), 9)


def test_decode_pairs_and_peephole_patterns():
    code = (
        Instr(Op.LOAD, 0),
        Instr(Op.LOAD, 1),
        Instr(Op.DUP),
        Instr(Op.ADD),
        Instr(Op.RET),
    )
    fops, fargs, _, _ = decode(code)
    assert fops[0] == F_LL
    assert fops[2] == F_DUP_ADD
    assert fops[4] == int(Op.RET) < FUSED_BASE


def test_decode_never_fuses_faultable_arithmetic():
    # DIV/MOD can raise; they must stay standalone so fault pcs and the
    # partial accounting around them match the reference exactly.
    code = (
        Instr(Op.LOAD, 0),
        Instr(Op.CONST, 2),
        Instr(Op.DIV),
        Instr(Op.RET),
    )
    fops, _, _, _ = decode(code)
    assert fops[0] == F_LC  # LOAD;CONST still pairs...
    assert fops[2] == int(Op.DIV)  # ...but the DIV stays standalone


def test_ensure_decoded_memoizes_and_pickles_clean():
    import pickle

    from repro.vm import DEFAULT_CONFIG, JITCompiler

    program = compile_source(HOT_SRC)
    jit = JITCompiler(program, DEFAULT_CONFIG)
    compiled = jit.compile("main", 2)
    first = ensure_decoded(compiled)
    assert ensure_decoded(compiled) is first
    clone = pickle.loads(pickle.dumps(compiled))
    assert "_decoded" not in clone.__dict__
    assert clone.code == compiled.code


# ---------------------------------------------------------------------------
# Recompile-queue dedupe (satellite regression test)
# ---------------------------------------------------------------------------

def test_recompile_queue_collapses_to_max_level():
    program = compile_source(HOT_SRC)
    interp = Interpreter(program)
    interp._ensure_state("main")
    # Multiple queued requests for one method — including duplicates and
    # an intermediate tier — must produce exactly one compile, at the max.
    interp.request_recompile("main", 1)
    interp.request_recompile("main", 2)
    interp.request_recompile("main", 1)
    interp._apply_recompiles()
    events = [
        (e.method, e.level)
        for e in interp.profile.compile_events
        if e.level > -1
    ]
    assert events == [("main", 2)]
    assert interp.current_level("main") == 2
    assert interp._recompile_queue == []
