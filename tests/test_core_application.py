"""Unit tests for the Application abstraction."""

import pytest

from repro.core import Application
from repro.lang import compile_source
from repro.xicl import parse_spec


@pytest.fixture
def program():
    return compile_source("fn main(a, b) { return a * 10 + b; }", name="app")


class TestApplication:
    def test_default_launcher_passes_no_args(self):
        program = compile_source("fn main() { return 7; }")
        app = Application(name="x", program=program)
        assert app.launcher([], None, None) == ()

    def test_split_cmdline_string_and_list(self, program):
        app = Application(name="x", program=program)
        assert app.split_cmdline("-n 3 'a b'") == ["-n", "3", "a b"]
        assert app.split_cmdline(["-n", "3"]) == ["-n", "3"]

    def test_translator_none_without_spec(self, program):
        app = Application(name="x", program=program)
        assert app.make_translator() is None

    def test_translator_built_with_spec(self, program):
        spec = parse_spec("option {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}")
        app = Application(name="x", program=program, spec=spec)
        translator = app.make_translator()
        assert translator is not None
        fv = translator.build_fvector("-n 9")
        assert fv["-n.VAL"] == 9

    def test_entry_args_delegates_to_launcher(self, program):
        spec = parse_spec("option {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}")
        app = Application(
            name="x",
            program=program,
            spec=spec,
            launcher=lambda tokens, fv, fs: (int(fv["-n.VAL"]), len(tokens)),
        )
        translator = app.make_translator()
        tokens = app.split_cmdline("-n 4")
        fv = translator.build_fvector(tokens)
        assert app.entry_args(tokens, fv) == (4, 2)
