"""Tests for reduced-error pruning."""

from random import Random

import pytest

from repro.learning import ClassificationTree, Dataset, TreeParams
from repro.xicl import FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def noisy_dataset(seed=0, n=120):
    """True signal: x <= 50; the noise feature sometimes memorizable."""
    rng = Random(seed)
    ds = Dataset()
    for __ in range(n):
        x = rng.uniform(0, 100)
        noise = rng.uniform(0, 100)
        label = "low" if x <= 50 else "high"
        if rng.random() < 0.12:  # label noise the tree will overfit
            label = "high" if label == "low" else "low"
        ds.add(vec(x=x, noise=noise), label)
    return ds


class TestPruning:
    def test_pruning_shrinks_overfitted_tree(self):
        train = noisy_dataset(seed=1)
        validation = noisy_dataset(seed=2)
        tree = ClassificationTree(
            TreeParams(max_depth=40, min_samples_split=2, min_samples_leaf=1)
        ).fit(train)
        before = tree.node_count()
        removed = tree.prune_with(list(validation.rows))
        assert removed > 0
        assert tree.node_count() == before - removed

    def test_pruning_does_not_hurt_validation_accuracy(self):
        train = noisy_dataset(seed=3)
        validation = noisy_dataset(seed=4)
        tree = ClassificationTree(
            TreeParams(max_depth=40, min_samples_split=2, min_samples_leaf=1)
        ).fit(train)

        def accuracy(rows):
            return sum(
                1 for row in rows if tree.predict_values(row.values) == row.label
            ) / len(rows)

        before = accuracy(validation.rows)
        tree.prune_with(list(validation.rows))
        after = accuracy(validation.rows)
        assert after >= before - 1e-9

    def test_empty_validation_collapses_to_leaf(self):
        tree = ClassificationTree().fit(noisy_dataset(seed=5))
        tree.prune_with([])
        assert tree.root.is_leaf

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError):
            ClassificationTree().prune_with([])

    def test_pruned_tree_still_predicts_known_labels(self):
        train = noisy_dataset(seed=6)
        validation = noisy_dataset(seed=7)
        tree = ClassificationTree().fit(train)
        tree.prune_with(list(validation.rows))
        assert tree.predict(vec(x=10, noise=5)) in ("low", "high")

    def test_perfect_tree_untouched_by_clean_validation(self):
        """With a pure signal and clean validation, the signal split must
        survive pruning."""
        ds = Dataset()
        for x in range(40):
            ds.add(vec(x=x, noise=0), "low" if x < 20 else "high")
        tree = ClassificationTree().fit(ds)
        tree.prune_with(list(ds.rows))
        assert not tree.root.is_leaf
        assert tree.used_features() == ("x",)
