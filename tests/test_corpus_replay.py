"""Corpus round-trip tests and the tier-1 regression replay.

``tests/corpus/`` holds minimized reproducers (plus seed entries that
pin down historically delicate optimizer behaviour: tail recursion,
heap-op ordering, loop control flow). Every entry must pass the full
differential matrix — a divergence here means a previously-fixed bug is
back.
"""

from pathlib import Path

import pytest

from repro.testing import load_corpus, replay_corpus, save_reproducer

CORPUS_DIR = Path(__file__).parent / "corpus"


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        source = "fn main(n) {\n  return (n + 1);\n}\n"
        path = save_reproducer(
            tmp_path,
            source,
            seed=5,
            index=12,
            args=(3,),
            divergent=("L2", "pass:dce"),
        )
        assert path.name == "fuzz_s5_i12.ml"
        entries = load_corpus(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.source == source
        assert entry.args == (3,)
        assert entry.meta["divergent"] == ["L2", "pass:dce"]

    def test_bare_ml_without_sidecar_is_loadable(self, tmp_path):
        (tmp_path / "manual.ml").write_text("fn main() { return 7; }\n")
        entries = load_corpus(tmp_path)
        assert entries[0].name == "manual"
        assert entries[0].args == ()

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []


class TestRegressionReplay:
    def test_seed_corpus_exists(self):
        assert load_corpus(CORPUS_DIR), "seed corpus entries missing"

    def test_corpus_replays_without_divergence(self):
        results = replay_corpus(CORPUS_DIR)
        assert results
        for entry, report in results:
            assert not report.skipped, entry.name
            assert not report.divergences, (
                entry.name,
                [d.describe() for d in report.divergences],
            )

    def test_replayed_entries_actually_execute(self):
        for entry, report in replay_corpus(CORPUS_DIR):
            assert report.reference.kind == "ok", entry.name


class TestReplayDetectsRegressions:
    def test_replay_flags_a_broken_pass(self, tmp_path):
        # Replay is only a safety net if it actually fails when the
        # compiler regresses: re-break a fold and replay the seed corpus.
        from repro.vm.opt.passes.constant_folding import _FOLDERS
        from repro.vm.program import Op

        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(_FOLDERS, Op.ADD, lambda a, b: a + b + 1)
            diverged = sum(
                len(report.divergences)
                for _, report in replay_corpus(CORPUS_DIR)
            )
        assert diverged > 0
