"""Tests for the crash-safe envelope and the fault-injection filesystem.

The envelope's promise (docs/robustness.md): any truncation and any
single bit flip — header or payload — is detected at decode time with a
machine-readable reason; atomic writes leave either the complete new
artifact or nothing, never a partial file and never a stray temp file.
"""

import os

import pytest

from repro.resilience.envelope import (
    ENVELOPE_VERSION,
    MAGIC,
    REAL_FS,
    EnvelopeError,
    decode_envelope,
    encode_envelope,
    read_envelope,
    read_json_envelope,
    read_pickle_envelope,
    write_envelope,
    write_json_envelope,
    write_pickle_envelope,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultyFS,
    StaleLockError,
    WorkerFaultPlan,
)

PAYLOAD = b'{"answer": 42, "text": "hello"}'


class TestEncodeDecode:
    def test_round_trip(self):
        blob = encode_envelope(PAYLOAD, "demo")
        assert decode_envelope(blob, "demo") == PAYLOAD
        # Kind check is optional on decode.
        assert decode_envelope(blob) == PAYLOAD

    def test_header_shape(self):
        blob = encode_envelope(PAYLOAD, "demo")
        header = blob.split(b"\n", 1)[0].decode("ascii")
        magic, version, kind, length, digest = header.split(" ")
        assert magic == MAGIC
        assert version == str(ENVELOPE_VERSION)
        assert kind == "demo"
        assert int(length) == len(PAYLOAD)
        assert len(digest) == 64

    def test_empty_payload_round_trips(self):
        assert decode_envelope(encode_envelope(b"", "empty"), "empty") == b""

    def test_kind_with_whitespace_rejected(self):
        with pytest.raises(ValueError):
            encode_envelope(PAYLOAD, "two words")
        with pytest.raises(ValueError):
            encode_envelope(PAYLOAD, "")

    def test_kind_mismatch(self):
        blob = encode_envelope(PAYLOAD, "demo")
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(blob, "other")
        assert err.value.reason == "kind-mismatch"

    def test_bad_magic(self):
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(b"NOTMAGIC 1 demo 0 abc\n")
        assert err.value.reason == "bad-magic"

    def test_legacy_plain_json_is_bad_magic(self):
        # What load_state_file's legacy fallback keys on.
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(b'{"format": 1}\n')
        assert err.value.reason == "bad-magic"

    def test_bad_version(self):
        blob = encode_envelope(PAYLOAD, "demo").replace(
            b"REPROENV 1 ", b"REPROENV 99 ", 1
        )
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(blob)
        assert err.value.reason == "bad-version"

    def test_missing_newline_is_truncated_header(self):
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(b"REPROENV 1 demo")
        assert err.value.reason == "truncated-header"

    def test_extra_payload_is_length_mismatch(self):
        blob = encode_envelope(PAYLOAD, "demo") + b"trailing garbage"
        with pytest.raises(EnvelopeError) as err:
            decode_envelope(blob)
        assert err.value.reason == "length-mismatch"

    def test_every_truncation_detected(self):
        blob = encode_envelope(PAYLOAD, "demo")
        for cut in range(len(blob)):
            with pytest.raises(EnvelopeError):
                decode_envelope(blob[:cut], "demo")

    def test_every_single_bit_flip_detected(self):
        blob = encode_envelope(PAYLOAD, "demo")
        for index in range(len(blob)):
            for bit in range(8):
                mutated = bytearray(blob)
                mutated[index] ^= 1 << bit
                with pytest.raises(EnvelopeError):
                    decode_envelope(bytes(mutated), "demo")


class TestFileHelpers:
    def test_write_read(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_envelope(path, PAYLOAD, kind="demo")
        assert read_envelope(path, expected_kind="demo") == PAYLOAD

    def test_json_and_pickle_round_trip(self, tmp_path):
        obj = {"rows": [1, 2.5, None], "name": "x"}
        write_json_envelope(tmp_path / "a.json", obj, kind="j")
        assert read_json_envelope(tmp_path / "a.json", kind="j") == obj
        write_pickle_envelope(tmp_path / "a.pkl", obj, kind="p")
        assert read_pickle_envelope(tmp_path / "a.pkl", kind="p") == obj

    def test_no_stray_temp_files(self, tmp_path):
        write_envelope(tmp_path / "artifact.bin", PAYLOAD, kind="demo")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["artifact.bin"]

    def test_atomic_write_replaces_previous(self, tmp_path):
        path = tmp_path / "artifact.bin"
        write_envelope(path, b"old", kind="demo")
        write_envelope(path, b"new", kind="demo")
        assert read_envelope(path, expected_kind="demo") == b"new"

    def test_write_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "artifact.bin"
        write_envelope(path, PAYLOAD, kind="demo")
        assert read_envelope(path, expected_kind="demo") == PAYLOAD

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_envelope(tmp_path / "nope.bin", expected_kind="demo")


ALWAYS_TORN = FaultPlan(seed=3, torn_write=1.0)
ALWAYS_FLIP_W = FaultPlan(seed=3, bit_flip_write=1.0)
ALWAYS_ENOSPC = FaultPlan(seed=3, io_error_write=1.0)
ALWAYS_LOCK = FaultPlan(seed=3, stale_lock=1.0)
ALWAYS_EIO = FaultPlan(seed=3, io_error_read=1.0)
ALWAYS_FLIP_R = FaultPlan(seed=3, bit_flip_read=1.0)


class TestFaultyFS:
    def test_clean_plan_is_transparent(self, tmp_path):
        fs = FaultyFS(FaultPlan(seed=0))
        path = tmp_path / "a.bin"
        fs.write_bytes_atomic(path, PAYLOAD)
        assert fs.read_bytes(path) == PAYLOAD
        assert fs.fault_log == []

    def test_torn_write_detected_by_envelope(self, tmp_path):
        fs = FaultyFS(ALWAYS_TORN)
        path = tmp_path / "a.bin"
        fs.write_bytes_atomic(path, encode_envelope(PAYLOAD, "demo"))
        assert fs.corrupting_faults_for(path)
        with pytest.raises(EnvelopeError):
            decode_envelope(REAL_FS.read_bytes(path), "demo")

    def test_bit_flip_write_detected_by_envelope(self, tmp_path):
        fs = FaultyFS(ALWAYS_FLIP_W)
        path = tmp_path / "a.bin"
        fs.write_bytes_atomic(path, encode_envelope(PAYLOAD, "demo"))
        assert [f.kind for f in fs.faults_for(path)] == ["bit-flip"]
        with pytest.raises(EnvelopeError):
            decode_envelope(REAL_FS.read_bytes(path), "demo")

    def test_enospc_raises_and_writes_nothing(self, tmp_path):
        fs = FaultyFS(ALWAYS_ENOSPC)
        path = tmp_path / "a.bin"
        with pytest.raises(OSError):
            fs.write_bytes_atomic(path, PAYLOAD)
        assert not path.exists()
        assert [f.kind for f in fs.faults_for(path)] == ["enospc"]

    def test_stale_lock_is_oserror(self, tmp_path):
        fs = FaultyFS(ALWAYS_LOCK)
        with pytest.raises(StaleLockError):
            fs.write_bytes_atomic(tmp_path / "a.bin", PAYLOAD)
        # Callers catch plain OSError.
        assert issubclass(StaleLockError, OSError)

    def test_eio_read(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(PAYLOAD)
        with pytest.raises(OSError):
            FaultyFS(ALWAYS_EIO).read_bytes(path)

    def test_bit_flip_read_leaves_disk_intact(self, tmp_path):
        path = tmp_path / "a.bin"
        REAL_FS.write_bytes_atomic(path, PAYLOAD)
        fs = FaultyFS(ALWAYS_FLIP_R)
        assert fs.read_bytes(path) != PAYLOAD
        assert path.read_bytes() == PAYLOAD  # corruption was in-flight only

    def test_torn_append_lands_prefix(self, tmp_path):
        fs = FaultyFS(FaultPlan(seed=5, torn_write=1.0))
        path = tmp_path / "log.jsonl"
        fs.append_text(path, "0123456789\n")
        text = path.read_text() if path.exists() else ""
        assert "0123456789\n".startswith(text)
        assert text != "0123456789\n"

    def test_same_seed_same_faults(self, tmp_path):
        plan = FaultPlan.chaos_default(7)
        logs = []
        for attempt in range(2):
            fs = FaultyFS(plan)
            root = tmp_path / str(attempt)
            for i in range(30):
                path = root / f"f{i}.bin"
                try:
                    fs.write_bytes_atomic(path, PAYLOAD)
                    fs.read_bytes(path)
                except OSError:
                    pass
            logs.append([(f.op, f.kind) for f in fs.fault_log])
        assert logs[0] == logs[1]
        assert logs[0]  # chaos rates actually fire within 30 ops

    def test_metadata_ops_stay_truthful(self, tmp_path):
        # Quarantine relies on exists/move/unlink never being faulted.
        fs = FaultyFS(FaultPlan.chaos_default(1))
        src = tmp_path / "src.bin"
        src.write_bytes(PAYLOAD)
        for _ in range(20):
            assert fs.exists(src)
        fs.move(src, tmp_path / "dst.bin")
        assert not src.exists() and (tmp_path / "dst.bin").exists()
        fs.unlink(tmp_path / "dst.bin")
        assert not (tmp_path / "dst.bin").exists()


class TestWorkerFaultPlan:
    def test_deterministic(self):
        plan = WorkerFaultPlan(seed=4, raise_rate=0.5, exit_rate=0.2)
        draws = [plan.fault_for(i) for i in range(50)]
        assert draws == [plan.fault_for(i) for i in range(50)]
        assert any(d == "raise" for d in draws)
        assert any(d == "exit" for d in draws)
        assert any(d is None for d in draws)

    def test_retries_run_clean(self):
        plan = WorkerFaultPlan(seed=4, raise_rate=1.0)
        assert plan.fault_for(3, attempt=0) == "raise"
        assert plan.fault_for(3, attempt=1) is None

    def test_forced_overrides_random(self):
        plan = WorkerFaultPlan(seed=4, forced=((2, "hang"),))
        assert plan.fault_for(2) == "hang"
        assert plan.fault_for(1) is None
