"""Tests for the benchmark suite: every program compiles, translates its
inputs, runs correctly, and exhibits input-dependent behavior."""

import pytest

from repro.bench import (
    BENCHMARK_CLASSES,
    INPUT_SENSITIVE_GROUP,
    all_benchmarks,
    get_benchmark,
)
from repro.core import run_default
from repro.vm import DEFAULT_CONFIG, JITCompiler


@pytest.fixture(scope="module")
def built():
    """Build every benchmark once for the whole module."""
    result = {}
    for bench in all_benchmarks():
        result[bench.name] = (bench,) + bench.build(seed=7)
    return result


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_CLASSES) == 11

    def test_names_unique(self):
        names = [cls.name for cls in BENCHMARK_CLASSES]
        assert len(set(names)) == 11

    def test_get_benchmark_case_insensitive(self):
        assert get_benchmark("mtrt").name == "Mtrt"

    def test_get_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("NoSuch")

    def test_suites_assigned(self):
        suites = {cls.suite for cls in BENCHMARK_CLASSES}
        assert suites == {"jvm98", "dacapo", "grande"}

    def test_sensitive_group_members_exist(self):
        names = {cls.name for cls in BENCHMARK_CLASSES}
        assert set(INPUT_SENSITIVE_GROUP) <= names


@pytest.mark.parametrize("cls", BENCHMARK_CLASSES, ids=lambda c: c.name)
class TestEachBenchmark:
    def test_program_compiles_with_enough_methods(self, cls):
        bench = cls()
        assert len(bench.program) >= 6, "benchmarks should model a method set"

    def test_input_population_size(self, cls, built):
        bench, app, inputs = built[cls.name]
        assert len(inputs) == bench.n_inputs

    def test_all_inputs_translate(self, cls, built):
        bench, app, inputs = built[cls.name]
        translator = app.make_translator()
        shapes = set()
        for bench_input in inputs:
            fv = translator.build_fvector(bench_input.cmdline)
            assert len(fv) > 0
            shapes.add(fv.names)
        assert len(shapes) == 1, "feature vectors must share one shape"

    def test_every_input_runs(self, cls, built):
        bench, app, inputs = built[cls.name]
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        for i, bench_input in enumerate(inputs[:4]):
            outcome = run_default(app, bench_input.cmdline, jit=jit, rng_seed=i)
            assert outcome.profile.total_cycles > 0
            assert outcome.profile.invocations.get("main", 0) >= 1

    def test_running_time_varies_with_input(self, cls, built):
        bench, app, inputs = built[cls.name]
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        times = [
            run_default(app, bi.cmdline, jit=jit, rng_seed=0).profile.total_cycles
            for bi in inputs
        ]
        assert max(times) > min(times), "inputs must affect running time"

    def test_deterministic_given_input_and_seed(self, cls, built):
        bench, app, inputs = built[cls.name]
        a = run_default(app, inputs[0].cmdline, rng_seed=5)
        b = run_default(app, inputs[0].cmdline, rng_seed=5)
        assert a.result == b.result
        assert a.profile.total_cycles == b.profile.total_cycles


class TestInputSensitivity:
    def test_sensitive_benchmarks_have_wide_time_range(self, built):
        """The input-sensitive group must span a much wider running-time
        range than MonteCarlo (the paper's canonical insensitive case)."""
        def spread(name):
            bench, app, inputs = built[name]
            jit = JITCompiler(app.program, DEFAULT_CONFIG)
            times = [
                run_default(app, bi.cmdline, jit=jit).profile.total_cycles
                for bi in inputs
            ]
            return max(times) / min(times)

        mc_spread = spread("MonteCarlo")
        for name in ("Mtrt", "Compress", "RayTracer"):
            assert spread(name) > mc_spread * 2
