"""Direct unit tests for :mod:`repro.experiments.telemetry`.

The parallel-engine tests exercise telemetry end-to-end; these pin the
pieces down in isolation: the JSONL event schema, cache-key stability,
and the cache hit/miss paths (including corrupt entries).
"""

import json
from types import SimpleNamespace

from repro.experiments.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    CacheKey,
    ResultCache,
    TelemetryLog,
    cell_event,
    config_digest,
    read_events,
    run_event,
    validate_event,
)
from repro.vm.config import DEFAULT_CONFIG
from repro.vm.profiles import RunProfile


def _fake_outcome(**overrides):
    """A stand-in for RunOutcome with exactly the fields run_event reads."""
    profile = RunProfile()
    fields = {
        "profile": profile,
        "total_cycles": 1234,
        "overhead_cycles": 56,
        "confidence_after": 0.5,
        "accuracy": 0.75,
        "applied_prediction": True,
    }
    fields.update(overrides)
    return SimpleNamespace(**fields)


class TestEventSchema:
    def test_run_event_is_valid(self):
        event = run_event(
            benchmark="Mtrt",
            scenario="evolve",
            run_index=3,
            input_index=1,
            cmdline="-size 10",
            rng_seed=3,
            outcome=_fake_outcome(),
            wall_s=0.25,
        )
        assert validate_event(event) == []
        assert event["v"] == TELEMETRY_SCHEMA_VERSION

    def test_cell_events_are_valid(self):
        for kind in ("cell", "cache_hit"):
            event = cell_event(kind, "Mtrt", "default", 0, 8, cached=True)
            assert validate_event(event) == []

    def test_missing_field_reported(self):
        event = cell_event("cell", "Mtrt", "default", 0, 8)
        del event["stop"]
        assert any("stop" in p for p in validate_event(event))

    def test_wrong_type_reported(self):
        event = cell_event("cell", "Mtrt", "default", 0, 8)
        event["start"] = "zero"
        assert any("start" in p for p in validate_event(event))

    def test_unknown_kind_rejected(self):
        assert validate_event({"event": "mystery"}) == [
            "unknown event kind 'mystery'"
        ]

    def test_stale_schema_version_rejected(self):
        event = cell_event("cell", "Mtrt", "default", 0, 8)
        event["v"] = TELEMETRY_SCHEMA_VERSION + 1
        assert any("schema version" in p for p in validate_event(event))

    def test_methods_per_level_keys_checked(self):
        event = run_event(
            benchmark="Mtrt",
            scenario="rep",
            run_index=0,
            input_index=0,
            cmdline="",
            rng_seed=0,
            outcome=_fake_outcome(),
        )
        event["methods_per_level"] = {2: 1}  # int key: invalid over JSON
        assert any("methods_per_level" in p for p in validate_event(event))


class TestConfigDigest:
    def test_insensitive_to_argument_order(self):
        a = config_digest(seed=1, gamma=0.7, config=DEFAULT_CONFIG)
        b = config_digest(config=DEFAULT_CONFIG, gamma=0.7, seed=1)
        assert a == b

    def test_sensitive_to_values(self):
        assert config_digest(gamma=0.7) != config_digest(gamma=0.8)

    def test_sensitive_to_names(self):
        assert config_digest(gamma=0.7) != config_digest(threshold=0.7)


class TestCacheKey:
    def test_filename_is_deterministic(self):
        key = CacheKey("Mtrt", "default", 0, 8, 1, "abc123")
        assert key.filename() == key.filename()
        assert key.filename().endswith(".pkl")

    def test_filename_distinguishes_every_field(self):
        base = CacheKey("Mtrt", "default", 0, 8, 1, "abc123")
        variants = [
            CacheKey("Jess", "default", 0, 8, 1, "abc123"),
            CacheKey("Mtrt", "rep", 0, 8, 1, "abc123"),
            CacheKey("Mtrt", "default", 1, 8, 1, "abc123"),
            CacheKey("Mtrt", "default", 0, 9, 1, "abc123"),
            CacheKey("Mtrt", "default", 0, 8, 2, "abc123"),
            CacheKey("Mtrt", "default", 0, 8, 1, "zzz999"),
        ]
        names = {v.filename() for v in variants}
        assert base.filename() not in names
        assert len(names) == len(variants)


class TestResultCache:
    KEY = CacheKey("Mtrt", "default", 0, 8, 1, "abc123")

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(self.KEY) is None
        cache.put(self.KEY, {"outcomes": [1, 2, 3]})
        assert cache.get(self.KEY) == {"outcomes": [1, 2, 3]}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"ok": True})
        (tmp_path / self.KEY.filename()).write_bytes(b"not a pickle")
        assert cache.get(self.KEY) is None
        assert cache.stats.misses == 1

    def test_no_stray_tmp_files_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(self.KEY, {"ok": True})
        assert not list(tmp_path.glob("*.tmp"))


class TestTelemetryLog:
    def test_lazy_open(self, tmp_path):
        log = TelemetryLog(tmp_path / "sub" / "events.jsonl")
        assert not (tmp_path / "sub").exists()
        log.append({"event": "cell", "v": 1})
        assert log.path.exists()
        log.close()

    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        events = [
            cell_event("cell", "Mtrt", "default", 0, 8, wall_s=0.5),
            cell_event("cache_hit", "Mtrt", "rep", 0, 8, cached=True),
        ]
        with TelemetryLog(path) as log:
            log.extend(events)
            assert log.events_written == 2
        assert read_events(path) == events

    def test_appends_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetryLog(path) as log:
            log.append(cell_event("cell", "Mtrt", "default", 0, 8))
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "cell"
