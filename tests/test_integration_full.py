"""End-to-end integration: the paper's headline behaviours on a real
benchmark, in one compact experiment."""

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def mtrt_result():
    return run_experiment(get_benchmark("Mtrt"), seed=5, runs=28)


class TestHeadlineBehaviours:
    def test_confidence_ascends_and_gate_opens(self, mtrt_result):
        confidences = mtrt_result.confidences()
        assert confidences[0] < 0.7
        assert max(confidences) > 0.7
        applied = [out.applied_prediction for out in mtrt_result.evolve]
        assert not applied[0], "first run can never predict"
        assert any(applied), "the gate must eventually open"

    def test_evolve_beats_default_after_warmup(self, mtrt_result):
        late = mtrt_result.speedups("evolve")[14:]
        assert sum(late) / len(late) > 1.02

    def test_evolve_matches_or_beats_rep(self, mtrt_result):
        evolve = mtrt_result.speedups("evolve")
        rep = mtrt_result.speedups("rep")
        assert sum(evolve) / len(evolve) >= sum(rep) / len(rep) - 0.02

    def test_discriminative_guard_protects_worst_case(self, mtrt_result):
        assert min(mtrt_result.speedups("evolve")) >= min(
            mtrt_result.speedups("rep")
        ) - 0.02

    def test_prediction_accuracy_matches_paper_ballpark(self, mtrt_result):
        accuracies = mtrt_result.accuracies()
        late = accuracies[len(accuracies) // 2 :]
        assert sum(late) / len(late) > 0.7

    def test_program_results_identical_across_scenarios(self, mtrt_result):
        for d, r, e in zip(
            mtrt_result.default, mtrt_result.rep, mtrt_result.evolve
        ):
            assert d.result == r.result == e.result

    def test_feature_selection_shrinks_raw_vector(self, mtrt_result):
        models = mtrt_result.evolve_vm.models
        assert models.raw_feature_count() > len(models.used_features()) >= 1

    def test_predicted_methods_skip_reactive_delay(self, mtrt_result):
        """When Evolve predicts a >−1 level for a hot method, that method
        reaches its level in at most two compiles (baseline + predicted),
        while the default scheme needs stepwise recompilations."""
        applied = [
            out
            for out in mtrt_result.evolve
            if out.applied_prediction
            and out.predicted is not None
            and any(l > 0 for l in out.predicted.levels.values())
        ]
        assert applied
        out = applied[-1]
        for method, level in out.predicted.levels.items():
            events = [
                e.level
                for e in out.profile.compile_events
                if e.method == method
            ]
            if level > -1 and len(events) >= 2:
                assert events[0] == -1
                assert events[1] == level


class TestEvolvableDeterminism:
    def test_whole_experiment_reproducible(self):
        bench = get_benchmark("Search")
        a = run_experiment(bench, seed=9, runs=8)
        b = run_experiment(bench, seed=9, runs=8)
        assert a.sequence == b.sequence
        assert [o.total_cycles for o in a.evolve] == [
            o.total_cycles for o in b.evolve
        ]
        assert a.accuracies() == b.accuracies()
