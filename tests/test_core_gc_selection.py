"""Tests for input-specific GC selection (the §VI extension)."""

import pytest

from repro.core import Application, EvolvableVM, GCSelector
from repro.experiments.gc_study import build_service_app, run_gc_study
from repro.vm import GCCostModel
from repro.xicl import FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def profile_like(allocated, live, count):
    from repro.vm import RunProfile

    profile = RunProfile()
    profile.allocated_bytes = allocated
    profile.peak_live_bytes = live
    profile.allocation_count = count
    return profile


class TestGCSelector:
    def test_defaults_until_confident(self):
        selector = GCSelector()
        decision = selector.select(vec(c=0))
        assert decision.applied == "semispace"
        assert decision.predicted is None

    def test_learns_survival_split(self):
        model = GCCostModel()
        selector = GCSelector()
        high_live = model.heap_bytes * 0.4
        for i in range(10):
            cached = 0 if i % 2 == 0 else 1
            decision = selector.select(vec(c=cached))
            profile = profile_like(
                allocated=8_000_000,
                live=1_000 if cached == 0 else high_live,
                count=1_000,
            )
            selector.observe(decision, vec(c=cached), profile)
        assert selector.confidence.confident
        assert selector.select(vec(c=0)).applied == "semispace"
        assert selector.select(vec(c=1)).applied == "marksweep"

    def test_selection_accuracy_tracked(self):
        selector = GCSelector()
        for i in range(6):
            decision = selector.select(vec(c=0))
            selector.observe(
                decision, vec(c=0), profile_like(8_000_000, 1_000, 100)
            )
        assert 0.0 <= selector.selection_accuracy() <= 1.0
        # After identical history the prediction should be right.
        assert selector.decisions[-1].correct

    def test_saved_cycles_recorded(self):
        selector = GCSelector()
        decision = selector.select(vec(c=0))
        decision = selector.observe(
            decision, vec(c=0), profile_like(8_000_000, 1_000, 100)
        )
        assert decision.saved_cycles is not None

    def test_invalid_default_policy_rejected(self):
        with pytest.raises(ValueError):
            GCSelector(default_policy="compacting")


class TestEvolvableVMGCIntegration:
    def test_gc_selector_disabled_by_default(self, toy_app):
        vm = EvolvableVM(toy_app)
        assert vm.gc_selector is None
        outcome = vm.run("-m 1 -n 50", rng_seed=0)
        assert outcome.gc_decision is None

    def test_gc_decisions_recorded_when_enabled(self):
        app = build_service_app()
        vm = EvolvableVM(app, select_gc=True)
        outcome = vm.run("-r 400 -s 1500 -c 0", rng_seed=0)
        assert outcome.gc_decision is not None
        assert outcome.gc_decision.ideal in ("semispace", "marksweep")
        assert outcome.profile.gc_policy == outcome.gc_decision.applied

    def test_selector_switches_policy_after_learning(self):
        app = build_service_app()
        vm = EvolvableVM(app, select_gc=True)
        # High-survival inputs: marksweep territory.
        for i in range(8):
            vm.run("-r 800 -s 3000 -c 8000", rng_seed=i)
        late = vm.run("-r 800 -s 3000 -c 8000", rng_seed=99)
        assert late.gc_decision.applied == "marksweep"
        assert late.profile.gc_policy == "marksweep"


class TestGCStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_gc_study(seed=1, runs=24)

    def test_oracle_never_worse_than_fixed(self, study):
        assert study.total_pause["oracle"] <= study.total_pause["semispace"] + 1e-6
        assert study.total_pause["oracle"] <= study.total_pause["marksweep"] + 1e-6

    def test_selector_accuracy_reasonable(self, study):
        assert study.selection_accuracy > 0.6

    def test_steady_state_captures_most_of_oracle(self, study):
        assert study.steady_state_capture > 0.5

    def test_input_dependence_exists(self, study):
        """The study is only meaningful if neither fixed collector is
        universally ideal — the two fixed totals must differ."""
        assert study.total_pause["semispace"] != study.total_pause["marksweep"]
