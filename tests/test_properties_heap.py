"""Property-based tests on the heap/GC cost model."""

from hypothesis import given, settings, strategies as st

from repro.vm import GCCostModel, GC_POLICIES, Heap, estimate_gc_cost, ideal_gc_policy

_alloc = st.floats(min_value=1e4, max_value=1e9, allow_nan=False)
_live = st.floats(min_value=0.0, max_value=5e6, allow_nan=False)
_count = st.integers(min_value=1, max_value=100_000)


@given(_alloc, _live, _count)
@settings(max_examples=150, deadline=None)
def test_estimates_positive_and_ideal_is_argmin(alloc, live, count):
    costs = {
        policy: estimate_gc_cost(policy, alloc, live, count)
        for policy in GC_POLICIES
    }
    assert all(cost > 0 for cost in costs.values())
    ideal = ideal_gc_policy(alloc, live, count)
    assert costs[ideal] == min(costs.values())


@given(_alloc, _live, _count)
@settings(max_examples=80, deadline=None)
def test_estimates_monotone_in_allocation_volume(alloc, live, count):
    for policy in GC_POLICIES:
        smaller = estimate_gc_cost(policy, alloc, live, count)
        larger = estimate_gc_cost(policy, alloc * 2, live, count)
        assert larger >= smaller


@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "retain"]), st.integers(1, 50_000)),
        min_size=1,
        max_size=200,
    ),
    st.sampled_from(GC_POLICIES),
)
@settings(max_examples=80, deadline=None)
def test_heap_invariants_under_random_traffic(ops, policy):
    model = GCCostModel(heap_bytes=300_000)
    heap = Heap(policy, model)
    total = 0.0
    for kind, nbytes in ops:
        cost = heap.alloc(nbytes) if kind == "alloc" else heap.retain(nbytes)
        assert cost >= 0.0
        total += nbytes
    stats = heap.stats
    assert stats.allocated_bytes == total
    assert stats.allocation_count == len(ops)
    assert stats.peak_live_bytes >= heap.live_bytes or stats.peak_live_bytes == 0
    assert stats.gc_pause_cycles >= 0.0
    # Pauses only exist if collections happened, and vice versa.
    assert (stats.gc_count > 0) == (stats.gc_pause_cycles > 0)


@given(st.integers(1, 60), st.sampled_from(GC_POLICIES))
@settings(max_examples=60, deadline=None)
def test_gc_count_monotone_in_allocation_rounds(rounds, policy):
    model = GCCostModel(heap_bytes=100_000)
    few = Heap(policy, model)
    many = Heap(policy, model)
    for __ in range(rounds):
        few.alloc(8_000)
    for __ in range(rounds * 2):
        many.alloc(8_000)
    assert many.stats.gc_count >= few.stats.gc_count
