"""Unit tests for confidence tracking and the accuracy metric."""

import pytest

from repro.aos import LevelStrategy
from repro.core import ConfidenceTracker, prediction_accuracy
from repro.vm import RunProfile


class TestConfidenceTracker:
    def test_starts_at_zero_and_gated(self):
        tracker = ConfidenceTracker()
        assert tracker.value == 0.0
        assert not tracker.confident

    def test_decayed_update_formula(self):
        tracker = ConfidenceTracker(gamma=0.7)
        tracker.update(1.0)
        assert tracker.value == pytest.approx(0.7)
        tracker.update(1.0)
        assert tracker.value == pytest.approx(0.3 * 0.7 + 0.7)

    def test_gamma_weights_recent_runs(self):
        heavy = ConfidenceTracker(gamma=0.9)
        light = ConfidenceTracker(gamma=0.1)
        for tracker in (heavy, light):
            for acc in (1.0, 1.0, 0.0):
                tracker.update(acc)
        # The recent bad run hits the high-gamma tracker harder.
        assert heavy.value < light.value

    def test_gate_opens_above_threshold(self):
        tracker = ConfidenceTracker(gamma=0.7, threshold=0.7)
        tracker.update(1.0)
        assert not tracker.confident  # exactly 0.7 is not > 0.7
        tracker.update(1.0)
        assert tracker.confident

    def test_history_recorded(self):
        tracker = ConfidenceTracker()
        tracker.update(0.5)
        tracker.update(1.0)
        assert len(tracker.history) == 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceTracker(gamma=1.5)
        with pytest.raises(ValueError):
            ConfidenceTracker(threshold=-0.1)

    def test_bad_accuracy_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceTracker().update(1.2)


def profile_with(samples=None, work=None, invocations=None):
    profile = RunProfile()
    profile.samples = samples or {}
    profile.method_work = work or {}
    profile.invocations = invocations or {
        m: 1 for m in (samples or work or {})
    }
    return profile


class TestPredictionAccuracy:
    def test_perfect_prediction(self):
        predicted = LevelStrategy({"a": 2, "b": 0})
        ideal = LevelStrategy({"a": 2, "b": 0})
        profile = profile_with(samples={"a": 10, "b": 5})
        assert prediction_accuracy(predicted, ideal, profile) == 1.0

    def test_time_weighted_partial(self):
        predicted = LevelStrategy({"a": 2, "b": 1})
        ideal = LevelStrategy({"a": 2, "b": 0})
        profile = profile_with(samples={"a": 75, "b": 25})
        assert prediction_accuracy(predicted, ideal, profile) == pytest.approx(0.75)

    def test_absent_prediction_counts_as_baseline(self):
        predicted = LevelStrategy({})
        ideal = LevelStrategy({"a": -1, "b": 2})
        profile = profile_with(samples={"a": 50, "b": 50})
        assert prediction_accuracy(predicted, ideal, profile) == pytest.approx(0.5)

    def test_sampleless_run_falls_back_to_work(self):
        predicted = LevelStrategy({"a": 2})
        ideal = LevelStrategy({"a": 2, "b": -1})
        profile = profile_with(samples={}, work={"a": 900.0, "b": 100.0})
        assert prediction_accuracy(predicted, ideal, profile) == 1.0

    def test_empty_profile_agreement(self):
        profile = profile_with()
        same = LevelStrategy({"a": 1})
        assert prediction_accuracy(same, same, profile) == 1.0
        other = LevelStrategy({"a": 2})
        assert prediction_accuracy(same, other, profile) == 0.0

    def test_methods_not_in_profile_do_not_count(self):
        predicted = LevelStrategy({"ghost": 2})
        ideal = LevelStrategy({"a": -1})
        profile = profile_with(samples={"a": 10})
        assert prediction_accuracy(predicted, ideal, profile) == 1.0
