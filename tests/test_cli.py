"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Mtrt", "Compress", "RayTracer", "Search"):
            assert name in out

    def test_bench_requires_name(self, capsys):
        assert main(["bench"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_bench_runs_scenarios(self, capsys):
        assert main(["bench", "Search", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "evolve" in out
        assert out.count("\n") >= 5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_table1_reduced(self, capsys):
        assert main(["table1", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Program" in out and "RayTracer" in out

    def test_gc_study_reduced(self, capsys):
        assert main(["gc-study", "--runs", "8"]) == 0
        assert "GC-selection" in capsys.readouterr().out

    def test_fuzz_smoke(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "0",
                    "--iterations",
                    "3",
                    "--corpus-dir",
                    str(corpus),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3/3" in out
        assert "0 divergence(s)" in out
        # clean campaign: nothing written to the corpus
        assert not corpus.exists() or not list(corpus.glob("*.ml"))
