"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list_prints_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("Mtrt", "Compress", "RayTracer", "Search"):
            assert name in out

    def test_bare_bench_runs_vm_suite(self, capsys, tmp_path):
        # Bare `repro bench` is the fast-engine wall-clock suite; point the
        # timings at tiny trip counts via quick mode and a tmp report path.
        out = tmp_path / "BENCH_vm.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "speedup" in captured
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert report["speedup"]["geomean"] > 1.0

    def test_bare_bench_regression_gate(self, capsys, tmp_path):
        # A baseline demanding an impossible speedup must trip the gate.
        out = tmp_path / "BENCH_vm.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        inflated = json.loads(out.read_text())
        inflated["speedup"]["geomean"] = report["speedup"]["geomean"] * 100
        for row in inflated["workloads"]:
            row["speedup"] *= 100
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(inflated))
        capsys.readouterr()
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--out",
                    str(out),
                    "--baseline",
                    str(baseline),
                ]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().err

    def test_bench_runs_scenarios(self, capsys):
        assert main(["bench", "Search", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "evolve" in out
        assert out.count("\n") >= 5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_table1_reduced(self, capsys):
        assert main(["table1", "--runs", "4"]) == 0
        out = capsys.readouterr().out
        assert "Program" in out and "RayTracer" in out

    def test_gc_study_reduced(self, capsys):
        assert main(["gc-study", "--runs", "8"]) == 0
        assert "GC-selection" in capsys.readouterr().out

    def test_fuzz_smoke(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert (
            main(
                [
                    "fuzz",
                    "--seed",
                    "0",
                    "--iterations",
                    "3",
                    "--corpus-dir",
                    str(corpus),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3/3" in out
        assert "0 divergence(s)" in out
        # clean campaign: nothing written to the corpus
        assert not corpus.exists() or not list(corpus.glob("*.ml"))
