"""Unit tests for the VM cost-model configuration."""

import pytest

from repro.vm import DEFAULT_CONFIG, OPT_LEVELS, VMConfig


class TestVMConfig:
    def test_default_levels(self):
        assert OPT_LEVELS == (-1, 0, 1, 2)

    def test_dispatch_factors_decrease_with_level(self):
        factors = DEFAULT_CONFIG.dispatch_factor
        assert factors[-1] == 1.0
        assert factors[-1] > factors[0] > factors[1] > factors[2] > 0

    def test_compile_rates_increase_with_level(self):
        rates = DEFAULT_CONFIG.compile_rate
        assert rates[-1] < rates[0] < rates[1] < rates[2]

    def test_missing_level_rejected(self):
        with pytest.raises(ValueError, match="missing levels"):
            VMConfig(dispatch_factor={-1: 1.0, 0: 0.5})

    def test_bad_sample_interval_rejected(self):
        with pytest.raises(ValueError, match="sample_interval"):
            VMConfig(sample_interval=0)

    def test_bad_cycles_per_second_rejected(self):
        with pytest.raises(ValueError, match="cycles_per_second"):
            VMConfig(cycles_per_second=-1)

    def test_seconds_conversion(self):
        assert DEFAULT_CONFIG.seconds(2_000_000) == pytest.approx(2.0)
