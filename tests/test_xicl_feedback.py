"""Tests for the spec-feedback module (§VI extension)."""

from repro.aos import LevelStrategy
from repro.core import ModelBuilder
from repro.xicl import FeatureVector, analyze_models, parse_spec


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def trained_builder():
    """size drives the label; noise is random-ish; fixed never changes."""
    builder = ModelBuilder()
    for i in range(14):
        fv = vec(size=10 if i % 2 else 900, noise=i % 3, fixed=7)
        builder.observe_run(fv, LevelStrategy({"kernel": -1 if i % 2 else 2}))
    builder.refit_all()
    return builder


class TestAnalyzeModels:
    def test_influential_feature_ranked_first(self):
        feedback = analyze_models(trained_builder())
        assert feedback.influential[0][0] == "size"
        assert feedback.influential[0][1] == 1  # one method model

    def test_unused_features_reported(self):
        feedback = analyze_models(trained_builder())
        assert "noise" in feedback.unused
        assert "fixed" in feedback.unused
        assert "size" not in feedback.unused

    def test_constant_features_reported(self):
        feedback = analyze_models(trained_builder())
        assert feedback.constant == ("fixed",)

    def test_good_models_produce_no_warning(self):
        feedback = analyze_models(trained_builder())
        assert feedback.mean_cv_accuracy > 0.6
        assert feedback.warnings == ()

    def test_low_accuracy_warns_about_missing_features(self):
        builder = ModelBuilder()
        # The label depends on something the features don't carry.
        for i in range(16):
            builder.observe_run(
                vec(size=5), LevelStrategy({"kernel": -1 if i % 2 else 2})
            )
        spec = parse_spec(
            "option {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}"
        )
        feedback = analyze_models(builder, spec)
        assert feedback.warnings
        assert "missing an important input feature" in feedback.warnings[0]
        assert "VAL" in feedback.warnings[0]  # spec attrs referenced

    def test_empty_builder(self):
        feedback = analyze_models(ModelBuilder())
        assert feedback.influential == ()
        assert feedback.unused == ()
        assert feedback.warnings == ()

    def test_render_mentions_sections(self):
        text = analyze_models(trained_builder()).render()
        assert "influential" in text
        assert "never used" in text
        assert "accuracy" in text


class TestEndToEndFeedback:
    def test_feedback_on_real_benchmark(self):
        from random import Random

        from repro.bench import get_benchmark
        from repro.core import EvolvableVM

        bench = get_benchmark("Db")
        app, inputs = bench.build(seed=2)
        vm = EvolvableVM(app)
        rng = Random(1)
        for i in range(12):
            vm.run(inputs[rng.randrange(len(inputs))].cmdline, rng_seed=i)
        feedback = analyze_models(vm.models, app.spec)
        assert feedback.influential, "Db models must use some feature"
        assert 0.0 <= feedback.mean_cv_accuracy <= 1.0
