"""Deeper behavioral tests: each benchmark's input features must steer its
method-hotness distribution the way the workload model intends."""

import pytest

from repro.bench import get_benchmark
from repro.core import run_default
from repro.vm import DEFAULT_CONFIG, JITCompiler


def run_cmd(app, jit, cmdline, seed=0):
    return run_default(app, cmdline, jit=jit, rng_seed=seed).profile


def cycles(profile, method):
    return profile.method_cycles.get(method, 0.0)


class TestCategoricalFeaturesSwitchKernels:
    def test_antlr_language_switches_emitters(self):
        bench = get_benchmark("Antlr")
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        java = run_cmd(app, jit, "-o code -lang java data/antlr/grammar00.g")
        cpp = run_cmd(app, jit, "-o code -lang cpp data/antlr/grammar00.g")
        assert java.invocations.get("emit_java") and not java.invocations.get(
            "emit_cpp"
        )
        assert cpp.invocations.get("emit_cpp") and not cpp.invocations.get(
            "emit_java"
        )

    def test_antlr_html_format_skips_code_emitters(self):
        bench = get_benchmark("Antlr")
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        html = run_cmd(app, jit, "-o html -lang java data/antlr/grammar00.g")
        assert html.invocations.get("emit_html_report")
        assert not html.invocations.get("emit_java")

    def test_bloat_operation_selects_pipeline(self):
        bench = get_benchmark("Bloat")
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        ssa = run_cmd(app, jit, "-op ssa data/bloat/Class00.class")
        peep = run_cmd(app, jit, "-op peep data/bloat/Class00.class")
        assert ssa.invocations.get("ssa_optimize")
        assert not peep.invocations.get("ssa_optimize")
        assert peep.invocations.get("peephole_scan")

    def test_fop_format_selects_renderer(self):
        bench = get_benchmark("Fop")
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        pdf = run_cmd(app, jit, "-fmt pdf -q 1 data/fop/doc00.fo")
        ps = run_cmd(app, jit, "-fmt ps -q 1 data/fop/doc00.fo")
        assert pdf.invocations.get("render_pdf") and not pdf.invocations.get(
            "render_ps"
        )
        assert ps.invocations.get("render_ps") and not ps.invocations.get(
            "render_pdf"
        )


class TestNumericFeaturesScaleTime:
    @pytest.mark.parametrize(
        "name,small,large",
        [
            ("Euler", "24", "150"),
            ("MolDyn", "256", "2500"),
            ("RayTracer", "60", "540"),
        ],
    )
    def test_grande_time_monotone_in_size(self, name, small, large):
        bench = get_benchmark(name)
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        t_small = run_cmd(app, jit, small).total_cycles
        t_large = run_cmd(app, jit, large).total_cycles
        assert t_large > t_small * 3

    def test_mtrt_depth_scales_shading(self):
        bench = get_benchmark("Mtrt")
        app, inputs = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        path = next(iter(inputs[0].files))
        shallow = run_cmd(app, jit, f"-size 100 -depth 1 {path}")
        deep = run_cmd(app, jit, f"-size 100 -depth 7 {path}")
        assert deep.invocations["shade"] > shallow.invocations["shade"] * 3
        assert deep.total_cycles > shallow.total_cycles

    def test_search_prefix_length_bounds_tree(self):
        bench = get_benchmark("Search")
        app, __ = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        shallow = run_cmd(app, jit, "444333555522226666")
        deep = run_cmd(app, jit, "44")
        assert (
            deep.invocations["evaluate"] > shallow.invocations["evaluate"] * 5
        )


class TestHotnessDistributions:
    def test_compress_kernel_dominates_large_files(self):
        bench = get_benchmark("Compress")
        app, inputs = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        biggest = max(
            inputs, key=lambda bi: next(iter(bi.files.values())).size
        )
        profile = run_cmd(app, jit, biggest.cmdline)
        hottest = profile.hot_methods(top=1)[0][0]
        assert hottest in ("compress_chunk", "decompress_chunk")

    def test_db_sort_cycles_scale_with_records(self):
        bench = get_benchmark("Db")
        app, inputs = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        profiles = [run_cmd(app, jit, bi.cmdline) for bi in inputs[:4]]
        sort_costs = [cycles(p, "sort_records") for p in profiles]
        assert max(sort_costs) > 0

    def test_montecarlo_path_kernel_dominates(self):
        bench = get_benchmark("MonteCarlo")
        app, inputs = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        profile = run_cmd(app, jit, inputs[0].cmdline)
        assert cycles(profile, "simulate_path") > 0.5 * sum(
            profile.method_cycles.values()
        )


class TestIdealLevelsVaryAcrossInputs:
    @pytest.mark.parametrize("name", ["Mtrt", "Compress", "RayTracer", "Euler"])
    def test_sensitive_benchmarks_have_input_dependent_ideals(self, name):
        """The learning problem must be non-trivial: the posterior ideal
        level of at least one method differs across the input population."""
        from repro.aos import CostBenefitModel

        bench = get_benchmark(name)
        app, inputs = bench.build(seed=0)
        jit = JITCompiler(app.program, DEFAULT_CONFIG)
        model = CostBenefitModel(jit, DEFAULT_CONFIG.sample_interval)
        per_method: dict[str, set[int]] = {}
        for bi in inputs:
            profile = run_cmd(app, jit, bi.cmdline)
            for method, level in model.ideal_strategy(profile).levels.items():
                per_method.setdefault(method, set()).add(level)
        assert any(len(levels) > 1 for levels in per_method.values()), (
            f"{name}: every method has one ideal level across all inputs — "
            "nothing to learn"
        )
