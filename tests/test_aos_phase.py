"""Tests for the phase-based adaptive recompilation comparator."""

from collections import Counter

import pytest

from repro.aos import (
    AdaptiveController,
    PhaseAdaptiveController,
    PhaseDetector,
    window_similarity,
)
from repro.lang import compile_source
from repro.vm import Interpreter

TWO_PHASE = """
fn phase_a(n) { for (var i = 0; i < n; i = i + 1) { burn(1500); } return 0; }
fn phase_b(n) { for (var i = 0; i < n; i = i + 1) { burn(1500); } return 0; }
fn main(n) { phase_a(n); phase_b(n); return 0; }
"""


class TestWindowSimilarity:
    def test_identical_windows(self):
        w = Counter({"a": 5, "b": 3})
        assert window_similarity(w, w) == pytest.approx(1.0)

    def test_disjoint_windows(self):
        assert window_similarity(Counter({"a": 5}), Counter({"b": 5})) == 0.0

    def test_empty_windows(self):
        assert window_similarity(Counter(), Counter({"a": 1})) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        s = window_similarity(Counter({"a": 4, "b": 4}), Counter({"a": 4, "c": 4}))
        assert 0.0 < s < 1.0

    def test_symmetric(self):
        a, b = Counter({"a": 3, "b": 1}), Counter({"a": 1, "b": 3})
        assert window_similarity(a, b) == pytest.approx(window_similarity(b, a))


class TestPhaseDetector:
    def feed(self, detector, method, count, clock_start=0):
        changed = 0
        for i in range(count):
            if detector.observe(method, clock_start + i):
                changed += 1
        return changed

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            PhaseDetector(window_samples=0)

    def test_single_phase_stays_single(self):
        detector = PhaseDetector(window_samples=4)
        assert self.feed(detector, "hot", 40) == 0
        assert detector.phase_index == 0

    def test_distribution_shift_detected(self):
        detector = PhaseDetector(window_samples=4)
        self.feed(detector, "a", 16)
        changed = self.feed(detector, "b", 16, clock_start=100)
        assert changed == 1
        assert detector.phase_index == 1

    def test_stability_grows_within_phase(self):
        detector = PhaseDetector(window_samples=4)
        self.feed(detector, "a", 4)
        early = detector.stability
        self.feed(detector, "a", 28)
        assert detector.stability > early
        assert detector.stability == 1.0

    def test_boundaries_recorded_with_clocks(self):
        detector = PhaseDetector(window_samples=4)
        self.feed(detector, "a", 8)
        self.feed(detector, "b", 8, clock_start=500)
        assert len(detector.boundaries) == 1
        assert detector.boundaries[0] >= 500


class TestPhaseAdaptiveController:
    def test_detects_phases_and_optimizes_both_kernels(self):
        program = compile_source(TWO_PHASE)
        interp = Interpreter(program)
        controller = PhaseAdaptiveController(interp)
        profile = interp.run((2500,))
        assert controller.phase_count >= 2
        assert profile.final_levels["phase_a"] > -1
        assert profile.final_levels["phase_b"] > -1

    def test_competitive_with_default_on_stable_workload(self, hot_program):
        phase_interp = Interpreter(hot_program)
        PhaseAdaptiveController(phase_interp)
        phase_profile = phase_interp.run((2000,))

        default_interp = Interpreter(hot_program)
        AdaptiveController(default_interp)
        default_profile = default_interp.run((2000,))

        # On a single stable phase, the schemes should land within ~15%.
        ratio = phase_profile.total_cycles / default_profile.total_cycles
        assert 0.85 < ratio < 1.15

    def test_short_run_not_overcompiled(self, hot_program):
        interp = Interpreter(hot_program)
        PhaseAdaptiveController(interp)
        profile = interp.run((3,))
        assert all(level == -1 for level in profile.final_levels.values())

    def test_decisions_recorded(self, hot_program):
        interp = Interpreter(hot_program)
        controller = PhaseAdaptiveController(interp)
        interp.run((2000,))
        assert controller.decisions
        assert all(level > -1 for _, _, level in controller.decisions)
