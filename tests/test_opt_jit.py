"""Tests for the JIT compiler: tiers, speed model, compile costs, caching."""

import pytest

from repro.lang import compile_source
from repro.vm import (
    DEFAULT_CONFIG,
    Interpreter,
    JITCompiler,
    OPT_LEVELS,
    method_optimizability,
)
from repro.vm.opt.pipeline import TIER_PASSES, run_pipeline


@pytest.fixture
def jit(loop_program):
    return JITCompiler(loop_program, DEFAULT_CONFIG)


class TestSpeedModel:
    def test_baseline_speed_is_one(self, jit):
        assert jit.speed_factor("main", -1) == 1.0

    def test_speed_improves_with_level(self, jit):
        for method in ("main", "square"):
            speeds = [jit.speed_factor(method, lvl) for lvl in OPT_LEVELS]
            assert speeds == sorted(speeds, reverse=True)
            assert all(s > 0 for s in speeds)

    def test_optimizability_bounded(self, loop_program):
        for method in loop_program:
            assert 0.05 <= method_optimizability(method) <= 1.0

    def test_loopy_methods_more_optimizable(self):
        program = compile_source(
            """
            fn straight(x) { return x + 1; }
            fn loopy(x) {
              var s = 0;
              for (var i = 0; i < x; i = i + 1) {
                for (var j = 0; j < x; j = j + 1) { s = s + i * j; }
              }
              return s;
            }
            fn main() { return straight(1) + loopy(2); }
            """
        )
        assert method_optimizability(program.method("loopy")) > method_optimizability(
            program.method("straight")
        )

    def test_optimizability_deterministic_across_instances(self, loop_program):
        a = JITCompiler(loop_program, DEFAULT_CONFIG)
        b = JITCompiler(loop_program, DEFAULT_CONFIG)
        assert a.optimizability("main") == b.optimizability("main")


class TestCompileCosts:
    def test_cost_scales_with_size_and_level(self, jit, loop_program):
        main_size = loop_program.method("main").size
        for level in OPT_LEVELS:
            assert jit.compile_cost("main", level) == pytest.approx(
                DEFAULT_CONFIG.compile_rate[level] * main_size
            )

    def test_costs_increase_with_level(self, jit):
        costs = [jit.compile_cost("main", lvl) for lvl in OPT_LEVELS]
        assert costs == sorted(costs)


class TestCompilation:
    def test_cache_returns_same_object(self, jit):
        assert jit.compile("main", 1) is jit.compile("main", 1)

    def test_unknown_level_rejected(self, jit):
        with pytest.raises(ValueError):
            jit.compile("main", 7)

    def test_level0_code_identical_to_source(self, jit, loop_program):
        compiled = jit.compile("main", 0)
        assert compiled.code == loop_program.method("main").code

    def test_higher_tiers_never_grow_without_inlining(self):
        program = compile_source(
            """
            fn main(n) {
              var s = 0 + 0;
              var t = 1 * 1;
              for (var i = 0; i < n; i = i + 1) { s = s + 2 * 3; }
              return s + t;
            }
            """
        )
        jit = JITCompiler(program, DEFAULT_CONFIG)
        assert jit.compile("main", 1).size <= jit.compile("main", 0).size

    def test_tier_passes_shape(self):
        assert TIER_PASSES[-1] == ()
        assert TIER_PASSES[0] == ()
        assert len(TIER_PASSES[2]) > len(TIER_PASSES[1])

    def test_pipeline_reports_stats(self):
        program = compile_source("fn main() { return 2 + 3 * 4; }")
        code, locals_, stats = run_pipeline(program, program.method("main"), 1)
        assert stats.get("constant_folding")
        assert len(code) < program.method("main").size


class TestSemanticPreservationAcrossTiers:
    SOURCES = [
        ("fn main() { return 2 + 3 * 4 - 1; }", (), 13),
        (
            "fn f(a, b) { return a * 10 + b; }"
            "fn main() { var s = 0; for (var i = 0; i < 5; i = i + 1)"
            " { s = s + f(i, i + 1); } return s; }",
            (),
            0 * 10 + 1 + 10 + 2 + 20 + 3 + 30 + 4 + 40 + 5,
        ),
        (
            "fn main(n) { var a = array(n); for (var i = 0; i < n; i = i + 1)"
            " { a[i] = i; } var s = 0; for (var j = 0; j < n; j = j + 1)"
            " { s = s + a[j]; } return s; }",
            (10,),
            45,
        ),
    ]

    @pytest.mark.parametrize("source,args,expected", SOURCES)
    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_same_result_at_every_tier(self, source, args, expected, level):
        program = compile_source(source)
        interp = Interpreter(program, first_invocation_hook=lambda m: level)
        interp.run(args)
        assert interp.result == expected
