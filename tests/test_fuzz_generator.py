"""Tests for the seeded fuzz program generator."""

import pytest

from repro.lang import compile_source
from repro.testing import REFERENCE, execute_variant, generate, generate_batch


def _batch_sources(item):
    seed, n = item
    return [gp.source for gp in generate_batch(seed, n)]


class TestGenerateBatch:
    def test_matches_individual_generation(self):
        batch = generate_batch(7, 10)
        assert [gp.source for gp in batch] == [
            generate(7, i).source for i in range(10)
        ]
        assert [gp.args for gp in batch] == [
            generate(7, i).args for i in range(10)
        ]

    def test_empty_batch(self):
        assert generate_batch(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_batch(7, -1)

    def test_cross_process_determinism(self):
        # Each case is a pure function of (seed, index): worker
        # processes generating the same batch must emit byte-identical
        # sources, and they must match the in-process stream.
        from repro.experiments.parallel import map_parallel

        results, _ = map_parallel(_batch_sources, [(7, 6), (7, 6)], jobs=2)
        local = _batch_sources((7, 6))
        assert results[0] == results[1] == local


class TestDeterminism:
    def test_same_seed_index_same_program(self):
        a = generate(7, 3)
        b = generate(7, 3)
        assert a.source == b.source
        assert a.args == b.args
        assert a.module == b.module

    def test_different_indices_differ(self):
        sources = {generate(0, i).source for i in range(30)}
        assert len(sources) == 30

    def test_different_seeds_differ(self):
        assert generate(0, 5).source != generate(1, 5).source


class TestValidity:
    def test_batch_compiles_and_verifies(self):
        # compile_source runs the verifier on every method.
        for i in range(40):
            case = generate(0, i)
            program = compile_source(case.source, name=f"g{i}")
            assert program.total_size() > 0

    def test_batch_runs_clean_under_reference(self):
        # By construction: terminates, never faults, never hits a limit.
        for i in range(40):
            case = generate(0, i)
            program = compile_source(case.source, name=f"g{i}")
            outcome = execute_variant(program, case.args, REFERENCE)
            assert outcome.kind == "ok", (i, outcome.describe())


class TestCoverage:
    """The batch as a whole exercises the surface the optimizer touches."""

    def test_constructs_appear_across_batch(self):
        corpus = "\n".join(generate(0, i).source for i in range(60))
        for construct in (
            "while (",
            "for (",
            "if (",
            "break;",
            "continue;",
            "return",
            "array(",
            "alloc(",
            "retain(",
            "release(",
            "print(",
            "burn(",
        ):
            assert construct in corpus, construct

    def test_recursion_appears_across_batch(self):
        from repro.testing.render import render_function

        recursive = 0
        for i in range(60):
            for fn in generate(0, i).module.functions:
                body = render_function(fn).split("{", 1)[1]
                if f"{fn.name}(" in body:
                    recursive += 1
        assert recursive > 0

    def test_helper_calls_appear(self):
        corpus = "\n".join(generate(0, i).source for i in range(40))
        assert "h0(" in corpus
