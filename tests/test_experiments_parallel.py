"""Tests for the parallel experiment engine, telemetry, and result cache.

The engine's contract is strict: parallel results must be bitwise-identical
to the serial runner's for the same configuration, a second run of the same
sweep must come entirely from the cache, and every telemetry line must
validate against the documented schema (docs/experiments.md).
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import get_benchmark
from repro.experiments import run_experiment, run_sweep
from repro.experiments.parallel import (
    DEFAULT_CHUNK,
    STATEFUL_SCENARIOS,
    execute_cell,
    map_parallel,
    plan_cells,
)
from repro.experiments.telemetry import (
    ResultCache,
    TelemetryLog,
    read_events,
    validate_event,
)

RUNS = 6
SEED = 11


def _square(x):
    return x * x


class TestMapParallelChunksize:
    ITEMS = list(range(23))
    WANT = [x * x for x in ITEMS]

    def test_default_chunksize_unchanged(self):
        results, _ = map_parallel(_square, self.ITEMS, jobs=2)
        assert results == self.WANT

    def test_chunked_results_identical_to_unchunked(self):
        # Any chunksize returns the identical result list — only the
        # pool transport granularity changes.
        for chunksize in (1, 3, 7, 100):
            results, _ = map_parallel(
                _square, self.ITEMS, jobs=2, chunksize=chunksize
            )
            assert results == self.WANT, chunksize

    def test_chunksize_inline_path(self):
        results, parallel = map_parallel(
            _square, self.ITEMS, jobs=1, chunksize=4
        )
        assert results == self.WANT
        assert parallel is False

    def test_chunksize_validated(self):
        with pytest.raises(ValueError):
            map_parallel(_square, self.ITEMS, jobs=2, chunksize=0)


@pytest.fixture(scope="module")
def serial():
    return run_experiment(get_benchmark("Search"), seed=SEED, runs=RUNS)


def assert_outcomes_identical(a, b, scenario):
    assert len(a) == len(b), scenario
    for x, y in zip(a, b):
        assert x.scenario == y.scenario
        assert x.cmdline == y.cmdline
        assert x.result == y.result
        assert x.total_cycles == y.total_cycles
        assert x.profile.compile_cycles == y.profile.compile_cycles
        assert x.accuracy == y.accuracy
        assert x.confidence_after == y.confidence_after
        assert x.applied_prediction == y.applied_prediction


class TestParallelMatchesSerial:
    def test_cell_grain_bitwise_identical(self, serial):
        par = run_experiment(
            get_benchmark("Search"), seed=SEED, runs=RUNS, jobs=3
        )
        assert par.sequence == serial.sequence
        for scenario in ("default", "rep", "evolve"):
            assert_outcomes_identical(
                getattr(serial, scenario), getattr(par, scenario), scenario
            )

    def test_benchmark_grain_bitwise_identical(self, serial):
        report = run_sweep(
            [get_benchmark("Search")],
            jobs=2,
            seed=SEED,
            runs=RUNS,
            grain="benchmark",
        )
        par = report.results[0]
        for scenario in ("default", "rep", "evolve"):
            assert_outcomes_identical(
                getattr(serial, scenario), getattr(par, scenario), scenario
            )

    def test_evolve_summary_matches_serial(self, serial):
        par = run_experiment(
            get_benchmark("Search"), seed=SEED, runs=RUNS, jobs=2
        )
        assert serial.evolve_summary is not None
        assert par.evolve_summary == serial.evolve_summary

    def test_phase_scenario_supported(self):
        serial = run_experiment(
            get_benchmark("Search"),
            seed=SEED,
            runs=4,
            scenarios=("default", "phase"),
        )
        par = run_experiment(
            get_benchmark("Search"),
            seed=SEED,
            runs=4,
            scenarios=("default", "phase"),
            jobs=2,
        )
        assert_outcomes_identical(serial.phase, par.phase, "phase")


class TestCellPlanning:
    def test_stateful_scenarios_are_never_split(self):
        cells = plan_cells(
            get_benchmark("Search"), seed=SEED, runs=20, chunk=4
        )
        for cell in cells:
            if set(cell.scenarios) & STATEFUL_SCENARIOS:
                assert (cell.start, cell.stop) == (0, 20)

    def test_stateless_scenarios_are_chunked(self):
        cells = plan_cells(
            get_benchmark("Search"),
            seed=SEED,
            runs=10,
            chunk=4,
            scenarios=("default",),
        )
        ranges = [(c.start, c.stop) for c in cells]
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_benchmark_grain_is_one_cell(self):
        cells = plan_cells(
            get_benchmark("Search"), seed=SEED, runs=10, grain="benchmark"
        )
        assert len(cells) == 1
        assert cells[0].scenarios == ("default", "rep", "evolve")

    def test_cache_key_independent_of_jobs(self):
        # Chunk boundaries are fixed, so keys are too — changing --jobs
        # must not invalidate the cache.
        first = plan_cells(get_benchmark("Search"), seed=SEED, runs=RUNS)
        second = plan_cells(get_benchmark("Search"), seed=SEED, runs=RUNS)
        assert [c.cache_key() for c in first] == [c.cache_key() for c in second]
        assert all(0 < c.stop - c.start <= DEFAULT_CHUNK or
                   set(c.scenarios) & STATEFUL_SCENARIOS for c in first)

    def test_cache_key_changes_with_config(self):
        from repro.vm.config import VMConfig

        base = plan_cells(get_benchmark("Search"), seed=SEED, runs=RUNS)
        varied = plan_cells(
            get_benchmark("Search"),
            seed=SEED,
            runs=RUNS,
            config=VMConfig(sample_interval=80_000),
        )
        assert base[0].cache_key() != varied[0].cache_key()


class TestResultCache:
    def test_second_sweep_is_all_hits(self, tmp_path, serial):
        cache = ResultCache(tmp_path / "cache")
        first = run_sweep(
            [get_benchmark("Search")], jobs=1, seed=SEED, runs=RUNS, cache=cache
        )
        assert first.cells_cached == 0
        assert first.cells_executed == first.cells_total > 0

        cache2 = ResultCache(tmp_path / "cache")
        second = run_sweep(
            [get_benchmark("Search")], jobs=1, seed=SEED, runs=RUNS, cache=cache2
        )
        assert second.cells_executed == 0
        assert second.cells_cached == second.cells_total == first.cells_total
        assert cache2.stats.hits == second.cells_total

        for scenario in ("default", "rep", "evolve"):
            assert_outcomes_identical(
                getattr(serial, scenario),
                getattr(second.results[0], scenario),
                scenario,
            )

    def test_different_seed_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(
            [get_benchmark("Search")], jobs=1, seed=SEED, runs=4, cache=cache
        )
        other = ResultCache(tmp_path / "cache")
        run_sweep(
            [get_benchmark("Search")], jobs=1, seed=SEED + 1, runs=4, cache=other
        )
        assert other.stats.hits == 0

    def test_corrupt_entry_treated_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cells = plan_cells(get_benchmark("Search"), seed=SEED, runs=4)
        key = cells[0].cache_key()
        cache.root.mkdir(parents=True)
        (cache.root / key.filename()).write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.misses == 1


class TestTelemetry:
    def test_events_validate_against_schema(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryLog(path) as log:
            run_sweep(
                [get_benchmark("Search")],
                jobs=1,
                seed=SEED,
                runs=4,
                telemetry=log,
            )
        events = read_events(path)
        assert events, "no telemetry written"
        for event in events:
            assert validate_event(event) == [], event

    def test_run_events_cover_every_cell_run(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryLog(path) as log:
            run_sweep(
                [get_benchmark("Search")],
                jobs=1,
                seed=SEED,
                runs=4,
                telemetry=log,
            )
        runs = [e for e in read_events(path) if e["event"] == "run"]
        # 3 scenarios × 4 runs, each with seed == global run index.
        assert len(runs) == 12
        for event in runs:
            assert event["seed"] == event["run"]
            assert event["benchmark"] == "Search"
            assert event["total_cycles"] > 0
            assert event["methods_per_level"]

    def test_cache_hits_are_reported(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        cache_dir = tmp_path / "cache"
        run_sweep(
            [get_benchmark("Search")],
            jobs=1,
            seed=SEED,
            runs=4,
            cache=ResultCache(cache_dir),
        )
        with TelemetryLog(path) as log:
            run_sweep(
                [get_benchmark("Search")],
                jobs=1,
                seed=SEED,
                runs=4,
                cache=ResultCache(cache_dir),
                telemetry=log,
            )
        events = read_events(path)
        assert events and all(e["event"] == "cache_hit" for e in events)

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with TelemetryLog(path) as log:
            log.append({"event": "cell", "v": 1, "benchmark": "X",
                        "scenario": "default", "start": 0, "stop": 1,
                        "wall_s": 0.1, "cached": False})
        for line in path.read_text().splitlines():
            json.loads(line)


class TestWorker:
    def test_execute_cell_runs_requested_range_only(self):
        cells = plan_cells(
            get_benchmark("Search"),
            seed=SEED,
            runs=10,
            chunk=4,
            scenarios=("default",),
        )
        payload = execute_cell(cells[1])
        outs = payload["outcomes"]["default"]
        assert len(outs) == 4
        serial = run_experiment(
            get_benchmark("Search"), seed=SEED, runs=10, scenarios=("default",)
        )
        assert_outcomes_identical(serial.default[4:8], outs, "default")


class TestSweepCLI:
    def test_sweep_command_with_cache_and_telemetry(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        telemetry = tmp_path / "tel.jsonl"
        argv = [
            "sweep", "Search", "--runs", "3", "--jobs", "2",
            "--telemetry", str(telemetry), "--cache-dir", str(tmp_path / "c"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Search" in out and "0 cached" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        hits = [e for e in read_events(telemetry) if e["event"] == "cache_hit"]
        assert hits

    def test_sweep_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["sweep", "Search", "--runs", "2", "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / ".repro_cache").exists()

    def test_sweep_strict_exits_nonzero_on_failed_cells(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.experiments.parallel as parallel
        from repro.experiments.parallel import CellFailure, SweepReport

        monkeypatch.chdir(tmp_path)
        degraded = SweepReport(
            results=[],
            cells_total=2,
            cells_cached=0,
            cells_executed=1,
            cells_failed=1,
            failures=[
                CellFailure(
                    benchmark="Search", scenario="default", start=0,
                    stop=2, reason="timeout", detail="hung", attempts=2,
                )
            ],
        )
        monkeypatch.setattr(
            parallel, "run_sweep", lambda *a, **kw: degraded
        )
        argv = ["sweep", "Search", "--runs", "2", "--no-cache"]
        # Default: degraded sweeps return surviving results, exit 0 —
        # but the failure is surfaced in the summary and on stderr.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1 FAILED" in captured.out
        assert "failed cell" in captured.err
        assert "timeout" in captured.err
        # --strict: any failed cell makes the exit status non-zero.
        assert main(argv + ["--strict"]) == 1
        assert "1 cell(s) failed" in capsys.readouterr().err
