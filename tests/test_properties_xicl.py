"""Property-based tests for XICL translation."""

from hypothesis import given, settings, strategies as st

from repro.xicl import (
    FeatureVector,
    XICLTranslator,
    parse_spec,
)

SPEC = parse_spec(
    """
    option {name=-a; type=NUM; attr=VAL; default=0; has_arg=y}
    option {name=-b; type=NUM; attr=VAL; default=5; has_arg=y}
    option {name=-f:--flag; type=BIN; attr=VAL; default=0; has_arg=n}
    operand {position=1:$; type=STR; attr=LEN}
    """
)

_operand = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=12,
)


@given(
    a=st.one_of(st.none(), st.integers(-1000, 1000)),
    b=st.one_of(st.none(), st.integers(-1000, 1000)),
    flag=st.booleans(),
    operands=st.lists(_operand, max_size=5),
)
@settings(max_examples=150, deadline=None)
def test_translation_total_and_shape_stable(a, b, flag, operands):
    """Any legal command line translates; the vector shape is constant;
    option values round-trip; defaults fill absences."""
    tokens: list[str] = []
    if a is not None:
        tokens += ["-a", str(a)]
    if b is not None:
        tokens += ["-b", str(b)]
    if flag:
        tokens.append("--flag")
    tokens.append("--")
    tokens += operands

    translator = XICLTranslator(SPEC)
    fv = translator.build_fvector(tokens)

    assert fv["-a.VAL"] == (a if a is not None else 0)
    assert fv["-b.VAL"] == (b if b is not None else 5)
    assert fv["-f.VAL"] == (1 if flag else 0)
    assert fv["operands1_end.count"] == len(operands)
    assert fv["operands1_end.LEN"] == sum(len(op) for op in operands)

    reference = XICLTranslator(SPEC).build_fvector("-a 1 x")
    assert fv.names == reference.names


@given(
    values=st.dictionaries(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll",)),
            min_size=1,
            max_size=8,
        ),
        st.integers(-100, 100),
        max_size=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_runtime_channel_updates_are_idempotent_per_name(values):
    translator = XICLTranslator(SPEC)
    fv = translator.build_fvector("x")
    base_names = set(fv.names)
    for name, value in values.items():
        translator.channel.update_v(name, value)
        translator.channel.update_v(name, value)  # repeat: replace-in-place
    for name, value in values.items():
        assert fv[name] == value
    assert len(fv) == len(base_names | set(values))


@given(st.lists(_operand, min_size=1, max_size=6))
@settings(max_examples=80, deadline=None)
def test_order_of_operands_preserves_aggregates(operands):
    """Range aggregation is order-insensitive for numeric features."""
    translator = XICLTranslator(SPEC)
    forward = translator.build_fvector(list(operands))
    backward = translator.build_fvector(list(reversed(operands)))
    assert forward["operands1_end.LEN"] == backward["operands1_end.LEN"]
    assert forward["operands1_end.count"] == backward["operands1_end.count"]
