"""Property-based tests for the closure-compiled execution tier.

Two properties the tier's routing layer must uphold regardless of what
the emitter supports:

1. **Fallback identity.** Whatever ``resolve_compiled`` decides — run
   compiled, or route to the fast engine (listeners, depth, unsupported
   shapes) — an ``engine="compiled"`` run is observably identical to
   ``engine="reference"``: result, output, heap effects, clocks,
   per-method accounts, samples, compile events.
2. **Deterministic routing.** For a fixed artifact, the emit decision
   (source text or refusal reason) is a pure function of the artifact's
   code: repeated emissions agree, fresh interpreters route the same
   way, and the source cache key is stable.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.testing import compare_engines, generate
from repro.vm import DEFAULT_CONFIG, Interpreter, JITCompiler, VMConfig
from repro.vm.closure_emit import UnsupportedShape, emit_closure_source
from repro.vm.closures import (
    ClosureUnsupported,
    closure_source_key,
    ensure_closure,
    resolve_compiled,
)
from repro.vm.instructions import Instr, Op
from repro.vm.program import Method, Program


# ---------------------------------------------------------------------------
# Fallback identity
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(index=st.integers(min_value=0, max_value=2_000))
def test_compiled_engine_identical_on_generated_programs(index):
    case = generate(99, index)
    program = compile_source(case.source, name=f"prop_{index}")
    report = compare_engines(
        program,
        case.args,
        levels=(None,),
        engines=("reference", "compiled"),
    )
    assert report.ok, "\n".join(d.describe() for d in report.divergences)


@settings(max_examples=15, deadline=None)
@given(
    fuel=st.integers(min_value=1, max_value=5_000),
    depth=st.integers(min_value=2, max_value=3_000),
)
def test_compiled_engine_identical_under_tight_limits(fuel, depth):
    # Fuel forces the bail-and-replay path; extreme depth forces the
    # run-level refusal. Both must be invisible in the observables.
    program = compile_source(
        """
        fn main(n) {
          var s = 0;
          var i = 0;
          while (i < n) { s = s + work(i); i = i + 1; }
          return s;
        }
        fn work(x) {
          if (x > 20) { return work(x - 3); }
          return x * 2;
        }
        """
    )
    config = VMConfig(max_instructions=fuel, max_call_depth=depth)
    report = compare_engines(
        program,
        (30,),
        levels=(None,),
        config=config,
        engines=("reference", "compiled"),
    )
    assert report.ok, "\n".join(d.describe() for d in report.divergences)


def _method_with(code, num_locals=2, name="m"):
    return Method(name=name, num_params=1, num_locals=num_locals, code=code)


def test_unsupported_shape_routes_to_fallback_identically():
    # An irreducible shape (a jump from outside a loop into its body)
    # must be refused by the emitter yet execute identically through the
    # "compiled" engine, which silently lands on the fast path.
    code = (
        Instr(Op.LOAD, 0),      # 0
        Instr(Op.JNZ, 4),       # 1: jump into the loop body from outside
        Instr(Op.CONST, 0),     # 2: loop header (latch at 6)
        Instr(Op.POP),          # 3
        Instr(Op.LOAD, 0),      # 4: inside the loop span
        Instr(Op.JZ, 8),        # 5
        Instr(Op.JMP, 2),       # 6: latch
        Instr(Op.NOP),          # 7
        Instr(Op.CONST, 42),    # 8
        Instr(Op.RET),          # 9
    )
    method = _method_with(code, num_locals=1, name="main")
    program = Program([method], entry="main")
    jit = JITCompiler(program, DEFAULT_CONFIG)
    compiled = jit.compile("main", -1)
    try:
        ensure_closure(compiled, program)
        raised = False
    except ClosureUnsupported:
        raised = True
    assert raised
    # Routing refuses the whole run up front...
    interp = Interpreter(program, engine="compiled")
    assert resolve_compiled(interp, "main") is None
    # ...and the run still matches the reference bit-for-bit.
    report = compare_engines(
        program, (0,), levels=(None,), engines=("reference", "compiled")
    )
    assert report.ok, "\n".join(d.describe() for d in report.divergences)


# ---------------------------------------------------------------------------
# Deterministic routing / emission
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(index=st.integers(min_value=0, max_value=2_000))
def test_emission_is_deterministic(index):
    case = generate(7, index)
    program = compile_source(case.source, name=f"det_{index}")
    jit = JITCompiler(program, DEFAULT_CONFIG)
    for name in program.method_names:
        compiled = jit.compile(name, -1)
        num_params = program.method(name).num_params
        try:
            first = emit_closure_source(
                name, compiled.code, num_params,
                compiled.num_locals, compiled.speed_factor,
            )
        except UnsupportedShape as exc:
            # Refusals are just as deterministic as emissions.
            try:
                emit_closure_source(
                    name, compiled.code, num_params,
                    compiled.num_locals, compiled.speed_factor,
                )
                raise AssertionError("second emission did not refuse")
            except UnsupportedShape as exc2:
                assert str(exc) == str(exc2)
            continue
        second = emit_closure_source(
            name, compiled.code, num_params,
            compiled.num_locals, compiled.speed_factor,
        )
        assert first == second
        assert closure_source_key(compiled, num_params) == closure_source_key(
            compiled, num_params
        )


def test_routing_is_deterministic_across_fresh_interpreters():
    program = compile_source(
        """
        fn main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) { s = s + i; }
          return s;
        }
        """
    )
    decisions = set()
    for _ in range(3):
        interp = Interpreter(program, engine="compiled")
        decisions.add(resolve_compiled(interp, "main") is not None)
    assert decisions == {True}


def test_source_key_tracks_codegen_inputs():
    program = compile_source(
        "fn main(n) { return n + 1; }\nfn other(n) { return n + 2; }"
    )
    jit = JITCompiler(program, DEFAULT_CONFIG)
    a = jit.compile("main", -1)
    b = jit.compile("other", -1)
    l2 = jit.compile("main", 2)
    keys = {
        closure_source_key(a, 1),
        closure_source_key(b, 1),
        closure_source_key(l2, 1),
    }
    assert len(keys) == 3
