"""Unit tests for cross-validation and the incremental classifier."""

import pytest

from repro.learning import (
    IncrementalClassifier,
    cross_validated_accuracy,
    kfold_indices,
)
from repro.learning.dataset import Dataset
from repro.xicl import FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def signal_dataset(n=40):
    ds = Dataset()
    for i in range(n):
        ds.add(vec(x=i), "a" if i < n // 2 else "b")
    return ds


class TestKFold:
    def test_folds_partition_everything(self):
        folds = kfold_indices(23, 5, seed=1)
        flat = sorted(i for fold in folds for i in fold)
        assert flat == list(range(23))

    def test_folds_roughly_even(self):
        folds = kfold_indices(20, 4, seed=0)
        assert all(len(fold) == 5 for fold in folds)

    def test_k_clamped_to_n(self):
        folds = kfold_indices(3, 10, seed=0)
        assert len(folds) == 3

    def test_deterministic_given_seed(self):
        assert kfold_indices(10, 3, seed=7) == kfold_indices(10, 3, seed=7)

    def test_zero_rows_rejected(self):
        with pytest.raises(ValueError):
            kfold_indices(0, 3)


class TestCrossValidation:
    def test_strong_signal_scores_high(self):
        assert cross_validated_accuracy(signal_dataset()) > 0.85

    def test_pure_noise_scores_low(self):
        ds = Dataset()
        for i in range(30):
            ds.add(vec(x=i % 3), "a" if i % 2 else "b")
        assert cross_validated_accuracy(ds) < 0.8

    def test_single_row_returns_zero(self):
        ds = Dataset()
        ds.add(vec(x=1), "a")
        assert cross_validated_accuracy(ds) == 0.0

    def test_two_rows_leave_one_out(self):
        ds = Dataset()
        ds.add(vec(x=1), "a")
        ds.add(vec(x=9), "b")
        score = cross_validated_accuracy(ds)
        assert 0.0 <= score <= 1.0


class TestIncrementalClassifier:
    def test_no_prediction_before_min_rows(self):
        model = IncrementalClassifier(min_rows=3)
        model.observe(vec(x=1), "a")
        model.refit()
        assert model.predict(vec(x=1)) is None
        assert model.render() == "<insufficient history>"

    def test_predicts_after_enough_history(self):
        model = IncrementalClassifier()
        for i in range(10):
            model.observe(vec(x=i), "low" if i < 5 else "high")
        model.refit()
        assert model.predict(vec(x=0)) == "low"
        assert model.predict(vec(x=9)) == "high"

    def test_refit_picks_up_new_data(self):
        model = IncrementalClassifier()
        for i in range(10):
            model.observe(vec(x=i), "low")
        model.refit()
        assert model.predict(vec(x=100)) == "low"
        # New regime: all subsequent high x values flip the label.
        for i in range(100, 140, 4):
            model.observe(vec(x=i), "high")
        model.refit()
        assert model.predict(vec(x=120)) == "high"

    def test_observation_count(self):
        model = IncrementalClassifier()
        for i in range(7):
            model.observe(vec(x=i), "a")
        assert model.n_observations == 7

    def test_used_features_empty_before_fit(self):
        assert IncrementalClassifier().used_features() == ()

    def test_cv_accuracy_delegates(self):
        model = IncrementalClassifier()
        for i in range(20):
            model.observe(vec(x=i), "a" if i < 10 else "b")
        assert model.cv_accuracy() > 0.8

    def test_predict_never_fits(self):
        """Regression: prediction is the startup hot path — it must never
        pay training cost, not even when the model is stale or unfitted."""
        model = IncrementalClassifier()
        for i in range(10):
            model.observe(vec(x=i), "low" if i < 5 else "high")
        # Unfitted + stale: predict declines rather than training.
        assert model.predict(vec(x=0)) is None
        assert model.fit_count == 0
        model.refit()
        assert model.fit_count == 1
        # Stale again: predict serves the last fitted tree, still no fit.
        model.observe(vec(x=100), "high")
        assert model.stale
        assert model.predict(vec(x=0)) == "low"
        assert model.used_features() == ("x",)
        assert "x <=" in model.render()
        assert model.fit_count == 1

    def test_refit_below_min_rows_keeps_previous_tree(self):
        model = IncrementalClassifier(min_rows=2)
        model.observe(vec(x=1), "a")
        model.observe(vec(x=9), "b")
        model.refit()
        assert model.is_fitted
        tree_before = model.tree
        model.dataset._rows.clear()  # simulate history reset
        model.refit()
        assert model.tree is tree_before

    def test_engine_knob_validated(self):
        with pytest.raises(ValueError):
            IncrementalClassifier(engine="turbo")

    def test_cv_accuracy_engine_equivalence(self):
        ref = IncrementalClassifier(engine="reference")
        fast = IncrementalClassifier(engine="fast")
        for i in range(25):
            label = "a" if (i % 7) < 4 else "b"
            ref.observe(vec(x=i % 7, y=i % 3), label)
            fast.observe(vec(x=i % 7, y=i % 3), label)
        assert ref.cv_accuracy() == fast.cv_accuracy()
