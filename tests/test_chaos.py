"""Tests for the chaos harness and the ``repro chaos`` CLI."""

import pytest

from repro.__main__ import main
from repro.resilience.chaos import (
    ChaosReport,
    ChaosViolation,
    _build_reference,
    _check_rollback_pillar,
    _check_state_pillar,
    run_chaos,
)
from repro.resilience.degradation import DegradationReport
from repro.resilience.faults import FaultPlan, FaultyFS
from repro.scenarios.drift import get_drift_spec


@pytest.fixture(scope="module")
def reference():
    return _build_reference(0, "Search", 2, 1)


@pytest.fixture(scope="module")
def drift_reference():
    return _build_reference(
        0, "Search", 3, 1, drift_spec=get_drift_spec("abrupt")
    )


class TestRunChaos:
    def test_campaign_holds_invariants(self, tmp_path):
        report = run_chaos(
            seed=0, iterations=6, runs=2, fuzz_programs=1,
            sweep_every=3, workdir=str(tmp_path),
        )
        assert report.ok, [v.describe() for v in report.violations]
        assert report.completed == 6
        # The chaos fault mix actually fires and is actually survived.
        assert report.faults_injected > 0
        assert report.degradations > 0
        assert report.quarantines > 0
        assert "0 violation(s)" in report.describe()

    def test_same_seed_same_campaign(self, tmp_path):
        kwargs = dict(
            iterations=3, runs=2, fuzz_programs=1, sweep_every=0,
            workdir=str(tmp_path),
        )
        a = run_chaos(seed=5, **kwargs)
        b = run_chaos(seed=5, **kwargs)
        assert (a.faults_injected, a.degradations, a.quarantines) == (
            b.faults_injected, b.degradations, b.quarantines
        )

    def test_violations_flip_ok(self):
        report = ChaosReport(seed=0, iterations=1, benchmark="Search")
        assert report.ok
        report.violations.append(
            ChaosViolation(iteration=0, kind="divergence", detail="x")
        )
        assert not report.ok
        assert "divergence" in report.violations[0].describe()


class TestHarnessDetectsViolations:
    """The chaos invariants must be falsifiable, not vacuously green."""

    def test_doctored_reference_is_caught(self, reference, tmp_path):
        # Poison the expected post-run observations: a correct system now
        # looks "wrong", which must surface as a divergence violation.
        real_warm, real_cold = reference.warm_post, reference.cold_post
        reference.warm_post = ("bogus", -1.0)
        reference.cold_post = ("bogus", -1.0)
        try:
            found = []
            _check_state_pillar(
                reference,
                FaultyFS(FaultPlan(seed=0)),  # no faults at all
                DegradationReport(),
                tmp_path,
                found,
            )
        finally:
            reference.warm_post, reference.cold_post = real_warm, real_cold
        assert any(kind == "divergence" for kind, _ in found)

    def test_clean_fs_state_pillar_is_green(self, reference, tmp_path):
        found = []
        _check_state_pillar(
            reference,
            FaultyFS(FaultPlan(seed=0)),
            DegradationReport(),
            tmp_path / "clean",
            found,
        )
        assert found == []


class TestDriftChaos:
    """Combined drift+fault campaigns: the rollback pillar."""

    def test_drift_campaign_holds_invariants(self, tmp_path):
        report = run_chaos(
            seed=0, iterations=3, runs=3, fuzz_programs=1,
            sweep_every=2, workdir=str(tmp_path), drift=True,
        )
        assert report.ok, [v.describe() for v in report.violations]
        assert report.drift is True
        assert report.completed == 3
        assert report.faults_injected > 0

    def test_drift_reference_has_rollback_signature(self, drift_reference):
        assert drift_reference.drift_spec is not None
        assert drift_reference.rollback_signature != ()

    def test_clean_fs_rollback_pillar_is_green(
        self, drift_reference, tmp_path
    ):
        found = []
        _check_rollback_pillar(
            drift_reference,
            FaultyFS(FaultPlan(seed=0)),
            DegradationReport(),
            tmp_path / "clean",
            found,
        )
        assert found == []

    def test_doctored_rollback_signature_is_caught(
        self, drift_reference, tmp_path
    ):
        real = drift_reference.rollback_signature
        drift_reference.rollback_signature = ("bogus",)
        try:
            found = []
            _check_rollback_pillar(
                drift_reference,
                FaultyFS(FaultPlan(seed=0)),
                DegradationReport(),
                tmp_path / "doctored",
                found,
            )
        finally:
            drift_reference.rollback_signature = real
        assert any(kind == "divergence" for kind, _ in found)


class TestChaosCLI:
    def test_cli_green_run_exits_zero(self, capsys):
        code = main(["chaos", "--iterations", "2", "--runs", "2", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos seed=1" in out
        assert "all resilience invariants held" in out

    def test_cli_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["chaos", "NoSuchBench", "--iterations", "1"])

    def test_cli_drift_flag(self, capsys):
        code = main(
            ["chaos", "--iterations", "1", "--runs", "3", "--drift"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "drifted input schedule" in out
