"""Unit tests for the heap/GC cost model."""

import pytest

from repro.vm import (
    GCCostModel,
    GC_POLICIES,
    Heap,
    estimate_gc_cost,
    ideal_gc_policy,
)


@pytest.fixture
def model():
    return GCCostModel(heap_bytes=100_000)


class TestHeapMechanics:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown GC policy"):
            Heap("nursery")

    def test_no_gc_below_capacity(self, model):
        heap = Heap("semispace", model)
        cost = heap.alloc(10_000)
        assert heap.stats.gc_count == 0
        assert cost == 0.0  # semispace has no per-alloc overhead

    def test_gc_triggers_at_usable_capacity(self, model):
        heap = Heap("semispace", model)  # usable = 50_000
        total_cost = 0.0
        for __ in range(6):
            total_cost += heap.alloc(10_000)
        assert heap.stats.gc_count == 1
        assert total_cost > 0

    def test_marksweep_uses_full_heap(self, model):
        ss = Heap("semispace", model)
        ms = Heap("marksweep", model)
        for heap in (ss, ms):
            for __ in range(9):
                heap.alloc(10_000)
        assert ss.stats.gc_count > ms.stats.gc_count

    def test_marksweep_alloc_overhead(self, model):
        heap = Heap("marksweep", model)
        assert heap.alloc(10) == model.freelist_cycles_per_alloc

    def test_retain_raises_live_and_peak(self, model):
        heap = Heap("semispace", model)
        heap.retain(5_000)
        heap.retain(3_000)
        assert heap.live_bytes == 8_000
        assert heap.stats.peak_live_bytes == 8_000
        heap.release(4_000)
        assert heap.live_bytes == 4_000
        assert heap.stats.peak_live_bytes == 8_000  # peak persists

    def test_release_floors_at_zero(self, model):
        heap = Heap("semispace", model)
        heap.retain(100)
        heap.release(1_000)
        assert heap.live_bytes == 0.0

    def test_negative_allocation_rejected(self, model):
        heap = Heap("semispace", model)
        with pytest.raises(ValueError):
            heap.alloc(-1)
        with pytest.raises(ValueError):
            heap.retain(-1)

    def test_high_live_shrinks_usable_space(self, model):
        heap = Heap("semispace", model)
        heap.retain(45_000)  # usable drops to 5_000
        heap.alloc(6_000)
        assert heap.stats.gc_count == 1

    def test_usable_floor_prevents_livelock(self, model):
        assert model.usable_bytes("semispace", 10**9) > 0

    def test_stats_track_volume(self, model):
        heap = Heap("semispace", model)
        heap.alloc(1_000)
        heap.retain(2_000)
        assert heap.stats.allocated_bytes == 3_000
        assert heap.stats.allocation_count == 2


class TestCostEstimates:
    def test_low_survival_favors_semispace(self):
        assert ideal_gc_policy(
            allocated_bytes=10_000_000, peak_live_bytes=10_000, allocation_count=1_000
        ) == "semispace"

    def test_high_survival_favors_marksweep(self):
        model = GCCostModel()
        live = model.heap_bytes * 0.4
        assert ideal_gc_policy(
            allocated_bytes=10_000_000,
            peak_live_bytes=live,
            allocation_count=1_000,
        ) == "marksweep"

    def test_estimate_positive_and_monotone_in_allocation(self):
        for policy in GC_POLICIES:
            small = estimate_gc_cost(policy, 1e6, 1e4, 100)
            large = estimate_gc_cost(policy, 1e8, 1e4, 100)
            assert 0 < small < large

    def test_estimates_agree_with_simulation_ordering(self):
        """The analytic model must rank collectors the same way an actual
        simulated run does."""
        model = GCCostModel(heap_bytes=200_000)
        live = 70_000
        for policy_pair in [("semispace", "marksweep")]:
            sims = {}
            for policy in policy_pair:
                heap = Heap(policy, model)
                heap.retain(live)
                for __ in range(400):
                    heap.alloc(2_000)
                sims[policy] = heap.stats.gc_pause_cycles
            estimates = {
                policy: estimate_gc_cost(policy, 800_000, live, 401, model)
                for policy in policy_pair
            }
            sim_winner = min(sims, key=sims.get)
            est_winner = min(estimates, key=estimates.get)
            assert sim_winner == est_winner


class TestHeapInVM:
    def test_program_allocation_charges_gc_pauses(self):
        from repro.lang import compile_source
        from repro.vm import Interpreter

        source = """
        fn churn(n) {
          for (var i = 0; i < n; i = i + 1) { alloc(5000); }
          return n;
        }
        fn main() { retain(100000); return churn(3000); }
        """
        program = compile_source(source)
        interp = Interpreter(program, gc_policy="semispace")
        profile = interp.run(())
        assert profile.gc_count > 0
        assert profile.gc_pause_cycles > 0
        assert profile.allocated_bytes == 3000 * 5000 + 100_000
        assert profile.peak_live_bytes == 100_000
        assert profile.gc_policy == "semispace"

    def test_gc_pause_not_scaled_by_jit_tier(self):
        """GC work must cost the same regardless of the mutator's level."""
        from repro.lang import compile_source
        from repro.vm import Interpreter

        source = """
        fn churn(n) {
          for (var i = 0; i < n; i = i + 1) { alloc(4000); }
          return n;
        }
        fn main() { return churn(2000); }
        """
        program = compile_source(source)
        base = Interpreter(program, gc_policy="semispace")
        base.run(())
        fast = Interpreter(
            program, gc_policy="semispace", first_invocation_hook=lambda m: 2
        )
        fast.run(())
        assert base.profile.gc_count == fast.profile.gc_count
        assert base.profile.gc_pause_cycles == pytest.approx(
            fast.profile.gc_pause_cycles
        )
        # Mutator cycles shrink; GC cycles don't.
        assert fast.profile.execution_cycles < base.profile.execution_cycles
