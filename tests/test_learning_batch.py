"""Property suite: batched inference is bit-identical to per-row predicts.

The serving layer's whole batching story rests on one invariant — a
drained queue answered through :meth:`FlatForest.predict_batch` (the
compiled batch program) or :meth:`FlatTree.predict_values_batch` (the
level-synchronous fallback kernel) must produce byte-for-byte the
responses the per-row path would have produced. Hypothesis drives random
forests (mixed numeric/categorical features, correlated labels) against
random query matrices with missing features; every example asserts exact
``==`` on the full result structure, not approximate agreement.
"""

import pickle
from random import Random

from hypothesis import given, settings, strategies as st

from repro.learning import (
    ClassificationTree,
    Dataset,
    TreeParams,
    compile_forest,
)
from repro.learning.flat import FlatTree
from repro.xicl import FeatureVector

DEEP = TreeParams(max_depth=64, min_samples_split=2, min_samples_leaf=1)

_CATS = ["r", "g", "b", "zz"]


def vec(items):
    v = FeatureVector()
    for name, value in items:
        if value is not None:
            v.append_value(name, value)
    return v


#: One training row: (x numeric | None, c categorical | None, label).
_train_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-20, max_value=20)),
        st.one_of(st.none(), st.sampled_from(_CATS)),
        st.sampled_from(["lo", "hi", "mid"]),
    ),
    min_size=2,
    max_size=40,
)

#: One query row: either feature may be missing or out-of-vocabulary.
_query_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-30, max_value=30)),
        st.one_of(st.none(), st.sampled_from(_CATS + ["unseen"])),
    ),
    min_size=0,
    max_size=32,
)


def build_forest(row_groups):
    """One fitted forest from a list of training-row lists (one per tree)."""
    trees = {}
    for i, rows in enumerate(row_groups):
        ds = Dataset()
        for x, c, label in rows:
            ds.add(vec([("x", x), ("c", c)]), label)
        trees[f"m{i}"] = ClassificationTree(DEEP).fit(ds)
    return trees, compile_forest(trees)


@given(st.lists(_train_rows, min_size=1, max_size=4), _query_rows)
@settings(max_examples=120, deadline=None)
def test_predict_batch_bitwise_equals_per_row(row_groups, queries):
    """The core invariant: predict_batch == [predict_all(v) for v in ...]
    for any forest and any query matrix, missing features included."""
    _, forest = build_forest(row_groups)
    vectors = [vec([("x", x), ("c", c)]) for x, c in queries]
    batched = forest.predict_batch(vectors)
    per_row = [forest.predict_all(v) for v in vectors]
    assert batched == per_row


@given(_train_rows, _query_rows)
@settings(max_examples=100, deadline=None)
def test_level_sync_kernel_equals_predict_values(rows, queries):
    """The fallback tier independently: the level-synchronous kernel on
    one tree matches per-row predict_values exactly."""
    ds = Dataset()
    for x, c, label in rows:
        ds.add(vec([("x", x), ("c", c)]), label)
    fitted = ClassificationTree(DEEP).fit(ds)
    tree = FlatTree(fitted.root, fitted.fitted_columns)
    values = [
        tuple({"x": x, "c": c}.get(col) for col in tree.columns)
        for x, c in queries
    ]
    assert tree.predict_values_batch(values) == [
        tree.predict_values(v) for v in values
    ]


@given(st.lists(_train_rows, min_size=1, max_size=3))
@settings(max_examples=50, deadline=None)
def test_empty_batch(row_groups):
    _, forest = build_forest(row_groups)
    assert forest.predict_batch([]) == []


@given(_train_rows, st.tuples(
    st.one_of(st.none(), st.integers(min_value=-30, max_value=30)),
    st.one_of(st.none(), st.sampled_from(_CATS + ["unseen"])),
))
@settings(max_examples=80, deadline=None)
def test_single_row_batch_equals_predict_all(rows, query):
    """A one-row batch — the smallest drain the server can hand over —
    is exactly one predict_all, even for a one-tree forest."""
    x, c = query
    _, forest = build_forest([rows])
    v = vec([("x", x), ("c", c)])
    assert forest.predict_batch([v]) == [forest.predict_all(v)]


@given(st.lists(_train_rows, min_size=1, max_size=3), _query_rows)
@settings(max_examples=40, deadline=None)
def test_pickle_roundtrip_preserves_batch_results(row_groups, queries):
    """The compiled batch program is dropped on pickle (the registry
    stores forests) and lazily rebuilt — results must not change."""
    _, forest = build_forest(row_groups)
    vectors = [vec([("x", x), ("c", c)]) for x, c in queries]
    before = forest.predict_batch(vectors)
    clone = pickle.loads(pickle.dumps(forest))
    assert clone.predict_batch(vectors) == before


def test_non_inlinable_trees_fall_back_to_level_sync_kernel(monkeypatch):
    """Trees deeper than the inline bound are answered by the fallback
    kernel inside predict_batch — and still match per-row exactly. The
    bound is monkeypatched to 0 so every (non-stump) tree takes the
    skip path deterministically."""
    import repro.learning.flat as flat_mod

    rng = Random(5)
    ds = Dataset()
    for i in range(40):
        ds.add(vec([("x", i)]), "a" if rng.random() < 0.5 else "b")
    shallow_ds = Dataset()
    for i in range(10):
        shallow_ds.add(vec([("x", i)]), "lo" if i < 5 else "hi")
    trees = {
        "noisy": ClassificationTree(DEEP).fit(ds),
        "shallow": ClassificationTree(DEEP).fit(shallow_ds),
    }
    vectors = [vec([("x", rng.randint(-5, 200))]) for _ in range(64)]
    monkeypatch.setattr(flat_mod, "_MAX_INLINE_DEPTH", 0)
    forest = compile_forest(trees)
    assert forest.predict_batch(vectors) == [
        forest.predict_all(v) for v in vectors
    ]
    assert len(forest._batch_skipped) == len(forest)
