"""Tests for the disassembler/assembler round trip."""

import pytest

from repro.lang import compile_source
from repro.vm import (
    AsmError,
    Interpreter,
    assemble,
    assemble_program,
    disassemble_method,
    disassemble_program,
    run_program,
)


@pytest.fixture
def program():
    return compile_source(
        """
        fn square(x) { return x * x; }
        fn main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) {
            s = s + square(i);
            burn(10);
          }
          return s;
        }
        """
    )


class TestDisassembly:
    def test_method_header_and_end(self, program):
        text = disassemble_method(program.method("square"))
        lines = text.splitlines()
        assert lines[0] == ".method square params=1 locals=1"
        assert lines[-1] == ".end"

    def test_jumps_become_labels(self, program):
        text = disassemble_method(program.method("main"))
        assert "JZ L" in text or "JNZ L" in text
        assert "JMP L" in text
        assert "L0:" in text

    def test_calls_rendered_with_arity(self, program):
        text = disassemble_method(program.method("main"))
        assert "CALL square/1" in text
        assert "INTRIN burn/1" in text

    def test_program_order_entry_first(self, program):
        text = disassemble_program(program)
        assert text.index(".method main") < text.index(".method square")


class TestRoundTrip:
    def test_text_round_trip_stable(self, program):
        text = disassemble_program(program)
        rebuilt = assemble_program(text)
        assert disassemble_program(rebuilt) == text

    def test_semantics_preserved(self, program):
        rebuilt = assemble_program(disassemble_program(program))
        original, _ = run_program(program, args=(20,))
        recovered, _ = run_program(rebuilt, args=(20,))
        assert original == recovered

    def test_round_trip_all_benchmarks(self):
        from repro.bench import all_benchmarks

        for bench in all_benchmarks():
            text = disassemble_program(bench.program)
            rebuilt = assemble_program(text, entry=bench.program.entry)
            assert disassemble_program(rebuilt) == text


class TestAssembler:
    def test_minimal_method(self):
        methods = assemble(".method main params=0 locals=0\n    CONST 7\n    RET\n.end")
        assert len(methods) == 1
        program = assemble_program(
            ".method main params=0 locals=0\n    CONST 7\n    RET\n.end"
        )
        result, _ = run_program(program)
        assert result == 7

    def test_comments_and_blanks_ignored(self):
        text = """
        # heading comment
        .method main params=0 locals=0
            ; a comment
            CONST 1
            RET
        .end
        """
        assert len(assemble(text)) == 1

    def test_string_operands(self):
        methods = assemble(
            '.method main params=0 locals=0\n    CONST "hi"\n    RET\n.end'
        )
        assert methods[0].code[0].arg == "hi"

    def test_float_operands(self):
        methods = assemble(
            ".method main params=0 locals=0\n    CONST 2.5\n    RET\n.end"
        )
        assert methods[0].code[0].arg == 2.5

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AsmError, match="unknown opcode"):
            assemble(".method m params=0 locals=0\n    FLY\n.end")

    def test_undefined_label_rejected(self):
        with pytest.raises(AsmError, match="undefined label"):
            assemble(".method m params=0 locals=0\n    JMP LX\n    RET\n.end")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError, match="duplicate label"):
            assemble(
                ".method m params=0 locals=0\nL0:\nL0:\n    RET\n.end"
            )

    def test_missing_end_rejected(self):
        with pytest.raises(AsmError, match="missing .end"):
            assemble(".method m params=0 locals=0\n    RET")

    def test_bad_header_rejected(self):
        with pytest.raises(AsmError, match="header"):
            assemble("CONST 1")

    def test_bad_call_operand_rejected(self):
        with pytest.raises(AsmError, match="name/argc"):
            assemble(".method m params=0 locals=0\n    CALL foo\n    RET\n.end")
