"""Integration tests for the evolvable VM, Rep driver, and persistence."""

import json

import pytest

from repro.core import (
    Application,
    EvolvableVM,
    RepVM,
    load_state,
    run_default,
    save_state,
    load_state_file,
    state_to_dict,
)
from repro.lang import compile_source


def make_inputs(rng_choices):
    return [f"-m {m} -n {n}" for m, n in rng_choices]


TRAIN = make_inputs(
    [(1, 50), (2, 1200), (1, 1200), (2, 50), (1, 50), (2, 1200),
     (1, 1200), (2, 50), (1, 400), (2, 400), (1, 50), (2, 1200)]
)


class TestEvolvableVM:
    def test_figure7_loop_learns_and_applies(self, toy_app):
        vm = EvolvableVM(toy_app)
        outcomes = [vm.run(cmd, rng_seed=i) for i, cmd in enumerate(TRAIN)]
        assert any(out.applied_prediction for out in outcomes)
        # Every run carries self-evaluation results.
        assert all(out.accuracy is not None for out in outcomes)
        assert all(out.ideal is not None for out in outcomes)
        # Confidence must have risen above zero.
        assert vm.confidence.value > 0.3

    def test_prediction_improves_over_default(self, toy_app):
        vm = EvolvableVM(toy_app)
        for i, cmd in enumerate(TRAIN):
            vm.run(cmd, rng_seed=i)
        cmd = "-m 2 -n 1200"
        evolve_out = vm.run(cmd, rng_seed=99)
        default_out = run_default(toy_app, cmd, rng_seed=99)
        assert evolve_out.applied_prediction
        assert evolve_out.speedup_vs(default_out) > 1.05

    def test_no_spec_falls_back_to_default(self, toy_app):
        bare_app = Application(
            name=toy_app.name,
            program=toy_app.program,
            spec=None,
            launcher=lambda tokens, fv, fs: (1, 200),
        )
        vm = EvolvableVM(bare_app)
        outcome = vm.run("", rng_seed=0)
        assert outcome.fvector is None
        assert outcome.accuracy is None
        assert not outcome.applied_prediction
        assert vm.confidence.value == 0.0

    def test_overhead_accounted(self, toy_app):
        vm = EvolvableVM(toy_app)
        outcome = vm.run(TRAIN[0], rng_seed=0)
        assert outcome.overhead_cycles > 0
        assert outcome.total_cycles > outcome.profile.total_cycles

    def test_outcomes_accumulate(self, toy_app):
        vm = EvolvableVM(toy_app)
        for i, cmd in enumerate(TRAIN[:3]):
            vm.run(cmd, rng_seed=i)
        assert vm.run_count == 3
        assert len(vm.outcomes) == 3

    def test_results_correct_under_prediction(self, toy_app):
        """Optimization must never change program results."""
        vm = EvolvableVM(toy_app)
        for i, cmd in enumerate(TRAIN):
            out = vm.run(cmd, rng_seed=i)
            base = run_default(toy_app, cmd, rng_seed=i)
            assert out.result == base.result

    def test_reactive_controller_handles_unpredicted_methods(self, toy_app):
        vm = EvolvableVM(toy_app)
        # Train only on mode 1: heavy() never observed.
        for i in range(8):
            vm.run("-m 1 -n 1200", rng_seed=i)
        assert vm.confidence.confident
        outcome = vm.run("-m 2 -n 1200", rng_seed=50)
        assert outcome.applied_prediction
        # heavy had no model; the reactive fallback may still optimize it.
        assert "heavy" in outcome.profile.final_levels


class TestRepVM:
    def test_records_and_applies_history(self, toy_app):
        rep = RepVM(toy_app)
        for i, cmd in enumerate(TRAIN):
            rep.run(cmd, rng_seed=i)
        assert rep.repository.run_count == len(TRAIN)
        assert len(rep.repository.strategy()) > 0

    def test_frozen_strategy_not_updated(self, toy_app):
        rep = RepVM(toy_app)
        for i, cmd in enumerate(TRAIN[:4]):
            rep.run(cmd, rng_seed=i)
        rep.frozen_strategy = rep.repository.strategy()
        count = rep.repository.run_count
        rep.run(TRAIN[0], rng_seed=9)
        assert rep.repository.run_count == count

    def test_rep_single_strategy_for_all_inputs(self, toy_app):
        rep = RepVM(toy_app)
        for i, cmd in enumerate(TRAIN):
            rep.run(cmd, rng_seed=i)
        # The applied strategy is input-agnostic: identical final levels
        # regardless of the input of the next run.
        s1 = rep.repository.strategy()
        rep.run("-m 1 -n 50", rng_seed=100)
        s2 = rep.repository.strategy()
        # Strategies may evolve with history, but within one run they do
        # not depend on the input (no feature vector is consulted).
        assert s1.methods() == tuple(sorted(s1.plans))
        assert isinstance(s2.methods(), tuple)


class TestPersistence:
    def test_state_roundtrip(self, toy_app, tmp_path):
        vm = EvolvableVM(toy_app)
        for i, cmd in enumerate(TRAIN):
            vm.run(cmd, rng_seed=i)
        path = str(tmp_path / "state.json")
        save_state(vm, path)

        restored = EvolvableVM(toy_app)
        load_state_file(restored, path)
        assert restored.confidence.value == pytest.approx(vm.confidence.value)
        assert restored.run_count == vm.run_count
        assert restored.models.method_names == vm.models.method_names
        # The restored models predict identically.
        fv = vm.translator.build_fvector("-m 2 -n 1200")
        fv2 = restored.translator.build_fvector("-m 2 -n 1200")
        assert restored.models.predict(fv2).levels == vm.models.predict(fv).levels

    def test_state_is_json_serializable(self, toy_app):
        vm = EvolvableVM(toy_app)
        vm.run(TRAIN[0], rng_seed=0)
        text = json.dumps(state_to_dict(vm))
        assert toy_app.name in text

    def test_wrong_application_rejected(self, toy_app):
        vm = EvolvableVM(toy_app)
        vm.run(TRAIN[0], rng_seed=0)
        state = state_to_dict(vm)
        state["application"] = "other"
        with pytest.raises(ValueError, match="state is for"):
            load_state(EvolvableVM(toy_app), state)

    def test_bad_format_rejected(self, toy_app):
        with pytest.raises(ValueError, match="format"):
            load_state(EvolvableVM(toy_app), {"format": 99})
