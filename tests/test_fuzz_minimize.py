"""Tests for the delta-debugging minimizer.

The predicates here are synthetic (keep a marker call / keep compiling)
so minimization behaviour is tested independently of any real
miscompile; the broken-pass acceptance test exercises the real
``module_diverges`` predicate.
"""

from repro.lang import compile_source
from repro.lang.errors import LangError
from repro.lang.parser import parse
from repro.testing import minimize, render_module
from repro.testing.minimize import _candidates
from repro.vm.errors import VerificationError

BUSY_SOURCE = """
fn helper(x) {
  return x * 2;
}

fn main() {
  var a = 1;
  var b = 2;
  var c = (a + b);
  print(c);
  for (var i = 0; i < 4; i = i + 1) {
    a = (a + i);
  }
  if (a > 2) {
    burn(7);
  } else {
    burn(9);
  }
  var d = helper(c);
  return (d + a);
}
"""


def _keeps_marker(module) -> bool:
    source = render_module(module)
    try:
        compile_source(source, name="cand")
    except (LangError, VerificationError):
        return False
    return "burn(7)" in source


class TestMinimize:
    def test_shrinks_to_essentials(self):
        module = parse(BUSY_SOURCE)
        assert _keeps_marker(module)
        small = minimize(module, _keeps_marker)
        source = render_module(small)
        assert "burn(7)" in source
        # Everything unrelated to reaching burn(7) is gone.
        assert "helper" not in source
        assert "for (" not in source
        assert "print(" not in source
        assert len(source.splitlines()) <= 6

    def test_result_always_compiles(self):
        module = parse(BUSY_SOURCE)
        small = minimize(module, _keeps_marker)
        compile_source(render_module(small), name="minimized")

    def test_noop_when_nothing_shrinkable(self):
        module = parse("fn main() { burn(7); }\n")
        small = minimize(module, _keeps_marker)
        assert "burn(7)" in render_module(small)

    def test_budget_respected(self):
        module = parse(BUSY_SOURCE)
        # A one-check budget can apply at most one reduction.
        small = minimize(module, _keeps_marker, max_checks=1)
        assert _keeps_marker(small)


class TestCandidates:
    def test_candidates_include_function_drop(self):
        module = parse(BUSY_SOURCE)
        drops = [c for c in _candidates(module) if len(c.functions) == 1]
        assert drops and drops[0].functions[0].name == "main"

    def test_main_never_dropped(self):
        module = parse(BUSY_SOURCE)
        for candidate in _candidates(module):
            assert any(fn.name == "main" for fn in candidate.functions)

    def test_candidates_never_grow_the_tree(self):
        module = parse("fn main() { return (1 + 2); }\n")

        def nodes(m):
            from repro.testing.minimize import _walk

            return sum(1 for _ in _walk(m))

        baseline = nodes(module)
        sizes = [nodes(candidate) for candidate in _candidates(module)]
        assert sizes
        assert all(size <= baseline for size in sizes)
        assert any(size < baseline for size in sizes)
