"""Drift detection inside the learning core.

Per-method accuracy extraction, the targeted-forgetting helpers, the
evolvable VM's detect-and-respond wiring, and the ``drift_detected``
telemetry schema. The detector defaults are pinned from both sides: a
stationary stream must stay silent (tier-1 regressions would follow
otherwise) while a regime collapse must fire within a handful of runs.
"""

import pytest

from repro.aos.strategy import LevelStrategy
from repro.bench import get_benchmark
from repro.core.accuracy import per_method_accuracy
from repro.core.confidence import DriftMonitor
from repro.core.evolvable import EvolvableVM
from repro.experiments import run_experiment
from repro.experiments.report import (
    detect_changepoints,
    steady_state_mean,
    steady_state_start,
)
from repro.experiments.telemetry import drift_event, validate_event
from repro.scenarios.drift import get_drift_spec, shift_points
from repro.vm.profiles import RunProfile


class TestPerMethodAccuracy:
    def test_scores_each_profiled_method(self):
        profile = RunProfile(samples={"hot": 90, "cold": 10})
        predicted = LevelStrategy({"hot": 2, "cold": 1})
        ideal = LevelStrategy({"hot": 2, "cold": 0})
        assert per_method_accuracy(predicted, ideal, profile) == {
            "hot": 1.0,
            "cold": 0.0,
        }

    def test_absent_methods_default_to_baseline(self):
        profile = RunProfile(samples={"m": 5})
        # Neither strategy mentions m: baseline == baseline, correct.
        assert per_method_accuracy(
            LevelStrategy(), LevelStrategy(), profile
        ) == {"m": 1.0}
        # Only the ideal wants m optimized: prediction missed it.
        assert per_method_accuracy(
            LevelStrategy(), LevelStrategy({"m": 2}), profile
        ) == {"m": 0.0}

    def test_sampleless_run_falls_back_to_method_work(self):
        profile = RunProfile(method_work={"m": 12.0})
        assert per_method_accuracy(
            LevelStrategy({"m": 1}), LevelStrategy({"m": 1}), profile
        ) == {"m": 1.0}


class TestVMIntegration:
    def test_stationary_stream_stays_silent(self):
        result = run_experiment(
            get_benchmark("Search"), seed=0, runs=20, scenarios=("evolve",)
        )
        assert all(out.drift_methods == () for out in result.evolve)

    def test_abrupt_shift_fires_after_the_changepoint(self):
        spec = get_drift_spec("abrupt")
        result = run_experiment(
            get_benchmark("Search"),
            seed=3,
            runs=40,
            scenarios=("evolve",),
            drift=spec,
        )
        fired = [
            index
            for index, out in enumerate(result.evolve)
            if out.drift_methods
        ]
        assert fired, "regime collapse must trip a detector"
        changepoint = shift_points(spec, 40)[0]
        assert all(index >= changepoint for index in fired)
        monitor = result.evolve_vm.drift
        assert monitor is not None and monitor.detections >= len(fired)

    def test_detection_can_be_disabled(self):
        bench = get_benchmark("Search")
        app, _ = bench.build(seed=0)
        vm = EvolvableVM(app, detect_drift=False)
        assert vm.drift is None

    def test_custom_monitor_is_honored(self):
        bench = get_benchmark("Search")
        app, _ = bench.build(seed=0)
        monitor = DriftMonitor(lam=0.9)
        vm = EvolvableVM(app, drift_monitor=monitor)
        assert vm.drift is monitor


class TestDriftTelemetry:
    def test_event_is_schema_valid(self):
        event = drift_event("Search", "evolve", 21, ("beta", "alpha"), 0.8)
        assert validate_event(event) == []
        assert event["methods"] == ["alpha", "beta"]

    def test_empty_or_mistyped_methods_rejected(self):
        event = drift_event("Search", "evolve", 3, (), None)
        assert validate_event(event)
        event = drift_event("Search", "evolve", 3, ("m",), 0.5)
        event["methods"] = ["m", 7]
        assert validate_event(event)


class TestChangepointReport:
    def test_detects_drop_and_recovery(self):
        series = [0.9] * 12 + [0.1] * 12 + [0.9] * 12
        points = detect_changepoints(series)
        assert points
        assert any(12 <= p < 24 for p in points)
        assert any(p >= 24 for p in points)

    def test_flat_series_has_no_changepoints(self):
        assert detect_changepoints([0.8] * 30) == []
        assert steady_state_start([0.8] * 30) == 0
        assert steady_state_mean([0.8] * 30) == pytest.approx(0.8)

    def test_steady_state_follows_last_changepoint(self):
        series = [0.2] * 10 + [0.9] * 20
        start = steady_state_start(series)
        assert start >= 10
        assert steady_state_mean(series) == pytest.approx(0.9)

    def test_empty_series(self):
        assert detect_changepoints([]) == []
        assert steady_state_mean([]) is None
