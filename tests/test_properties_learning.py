"""Property-based tests on the learning substrate."""

from hypothesis import given, settings, strategies as st

from repro.learning import ClassificationTree, Dataset, TreeParams, entropy
from repro.xicl import FeatureVector


def vec(x, y):
    v = FeatureVector()
    v.append_value("x", x)
    v.append_value("y", y)
    return v


_rows = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=1,
    max_size=60,
)


@given(_rows)
@settings(max_examples=80, deadline=None)
def test_tree_training_rows_with_unique_features_classified_exactly(rows):
    """With unlimited depth, rows whose feature values are unique must be
    classified to their own labels (perfect memorization)."""
    ds = Dataset()
    seen_features = {}
    for x, y, label in rows:
        seen_features.setdefault((x, y), label)
    consistent = [(x, y, label) for (x, y), label in seen_features.items()]
    for x, y, label in consistent:
        ds.add(vec(x, y), label)
    tree = ClassificationTree(
        TreeParams(max_depth=64, min_samples_split=2, min_samples_leaf=1)
    ).fit(ds)
    for x, y, label in consistent:
        assert tree.predict(vec(x, y)) == label


@given(_rows)
@settings(max_examples=60, deadline=None)
def test_tree_predictions_always_known_labels(rows):
    ds = Dataset()
    for x, y, label in rows:
        ds.add(vec(x, y), label)
    tree = ClassificationTree().fit(ds)
    labels = set(ds.labels())
    for x, y, _ in rows:
        assert tree.predict(vec(x, y)) in labels
    # Out-of-range queries still land on a known label.
    assert tree.predict(vec(10_000, -10_000)) in labels


@given(_rows)
@settings(max_examples=60, deadline=None)
def test_tree_depth_bounded(rows):
    ds = Dataset()
    for x, y, label in rows:
        ds.add(vec(x, y), label)
    params = TreeParams(max_depth=4)
    tree = ClassificationTree(params).fit(ds)
    assert tree.depth() <= 4


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=50),
        min_size=1,
    )
)
@settings(max_examples=100, deadline=None)
def test_entropy_bounds(counts):
    import math

    value = entropy(counts)
    classes = sum(1 for c in counts.values() if c > 0)
    assert value >= 0.0
    if classes:
        assert value <= math.log2(classes) + 1e-9


@given(_rows)
@settings(max_examples=40, deadline=None)
def test_splits_reduce_entropy_monotonically(rows):
    """Every inner node's split must have non-negative information gain."""
    ds = Dataset()
    for x, y, label in rows:
        ds.add(vec(x, y), label)
    tree = ClassificationTree().fit(ds)

    def visit(node):
        if node is None or node.is_leaf:
            return
        assert node.split.gain >= 0.0
        visit(node.left)
        visit(node.right)

    visit(tree.root)
