"""Focused tests for the experiment runner's scenario plumbing."""

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def with_phase():
    return run_experiment(
        get_benchmark("Search"),
        seed=6,
        runs=6,
        scenarios=("default", "rep", "evolve", "phase"),
    )


class TestPhaseScenario:
    def test_phase_outcomes_populated(self, with_phase):
        assert len(with_phase.phase) == 6
        assert all(out.scenario == "phase" for out in with_phase.phase)

    def test_phase_results_agree(self, with_phase):
        for default, phase in zip(with_phase.default, with_phase.phase):
            assert default.result == phase.result

    def test_phase_speedups_available(self, with_phase):
        speedups = with_phase.speedups("phase")
        assert len(speedups) == 6
        assert all(s > 0 for s in speedups)

    def test_unknown_scenario_speedups_rejected(self, with_phase):
        with pytest.raises(KeyError):
            with_phase.speedups("quantum")


class TestRunnerParameterPlumbing:
    def test_gamma_and_threshold_reach_the_vm(self):
        result = run_experiment(
            get_benchmark("Search"),
            seed=6,
            runs=3,
            scenarios=("evolve",),
            gamma=0.42,
            threshold=0.9,
        )
        assert result.evolve_vm.confidence.gamma == 0.42
        assert result.evolve_vm.confidence.threshold == 0.9

    def test_tree_params_reach_the_models(self):
        from repro.learning.tree import TreeParams

        params = TreeParams(max_depth=2)
        result = run_experiment(
            get_benchmark("Search"),
            seed=6,
            runs=3,
            scenarios=("evolve",),
            tree_params=params,
        )
        assert result.evolve_vm.models.tree_params.max_depth == 2

    def test_default_runs_come_from_benchmark(self):
        bench = get_benchmark("Search")
        result = run_experiment(bench, seed=6, scenarios=("default",))
        assert len(result.default) == bench.runs

    def test_custom_config_used_everywhere(self):
        from repro.vm.config import VMConfig

        config = VMConfig(sample_interval=80_000)
        result = run_experiment(
            get_benchmark("Search"),
            seed=6,
            runs=3,
            config=config,
            scenarios=("default", "evolve"),
        )
        assert result.evolve_vm.config.sample_interval == 80_000
