"""Tests for quarantine semantics and degradation accounting."""

import json

import pytest

from repro.resilience.degradation import DegradationReport
from repro.resilience.quarantine import (
    QUARANTINE_DIR,
    quarantine_dir,
    quarantine_file,
)


@pytest.fixture
def corrupt(tmp_path):
    path = tmp_path / "state.json"
    path.write_bytes(b"\x00 definitely not an envelope")
    return path


class TestQuarantineFile:
    def test_moves_file_aside(self, corrupt, tmp_path):
        record = quarantine_file(corrupt, "checksum-mismatch", "bit rot")
        assert not corrupt.exists()
        dest = quarantine_dir(corrupt) / "state.json"
        assert dest.exists()
        assert record.quarantined == str(dest)
        assert record.original == str(corrupt)
        assert quarantine_dir(corrupt) == tmp_path / QUARANTINE_DIR

    def test_reason_sidecar_is_machine_readable(self, corrupt):
        quarantine_file(corrupt, "truncated", "payload short")
        sidecar = quarantine_dir(corrupt) / "state.json.reason.json"
        data = json.loads(sidecar.read_text())
        assert data["reason"] == "truncated"
        assert data["detail"] == "payload short"
        assert data["original"] == str(corrupt)
        assert data["quarantined"].endswith("state.json")

    def test_collisions_get_counter_suffix(self, tmp_path):
        names = []
        for _ in range(3):
            path = tmp_path / "entry.pkl"
            path.write_bytes(b"junk")
            record = quarantine_file(path, "bad-magic")
            names.append(record.quarantined.rsplit("/", 1)[-1])
        assert names == ["entry.pkl", "entry.pkl.1", "entry.pkl.2"]
        # Each quarantined copy is preserved, none overwritten.
        qdir = tmp_path / QUARANTINE_DIR
        assert {n for n in names} <= {p.name for p in qdir.iterdir()}

    def test_records_degradation(self, corrupt):
        report = DegradationReport()
        quarantine_file(
            corrupt, "checksum-mismatch", component="state", report=report
        )
        assert report.count(component="state", action="quarantine") == 1
        event = report.events[0]
        assert event.reason == "checksum-mismatch"
        assert event.path == str(corrupt)

    def test_missing_file_never_raises(self, tmp_path):
        report = DegradationReport()
        record = quarantine_file(
            tmp_path / "vanished.bin", "eio", report=report
        )
        # The move failed; the record says so and the caller proceeds.
        assert record.quarantined is None
        assert report.count(action="quarantine") == 1


class TestDegradationReport:
    def test_counts_and_filters(self):
        report = DegradationReport()
        report.record("state", "cold-start", "missing")
        report.record("jit-cache", "cache-miss", "checksum-mismatch")
        report.record("jit-cache", "store-failed", "OSError")
        assert len(report) == 3
        assert report.count() == 3
        assert report.count(component="jit-cache") == 2
        assert report.count(action="cache-miss") == 1
        assert report.count(component="state", action="cache-miss") == 0

    def test_always_truthy(self):
        # `if report:` must not silently skip recording on empty reports.
        assert bool(DegradationReport())

    def test_describe_summarizes(self):
        report = DegradationReport()
        assert "no degradation" in report.describe()
        report.record("state", "cold-start", "missing")
        report.record("state", "cold-start", "missing")
        text = report.describe()
        assert "state" in text and "cold-start" in text and "2" in text

    def test_extend_merges(self):
        a, b = DegradationReport(), DegradationReport()
        b.record("sweep", "retry", "exception")
        a.extend(b)
        assert a.count(component="sweep") == 1
