"""Tests for the abstract-interpretation verifier (stack depths,
definite assignment)."""

import pytest

from repro.lang import compile_source
from repro.vm import (
    Instr,
    Method,
    Op,
    VerificationError,
    locals_write_before_read,
    max_stack_depth,
    stack_depths,
    verify_program_stacks,
    verify_stack_discipline,
)


def method(code, params=0, locals_=None, name="m"):
    return Method(
        name=name,
        num_params=params,
        num_locals=locals_ if locals_ is not None else max(params, 1),
        code=tuple(code),
    )


class TestStackDepths:
    def test_straightline(self):
        m = method([Instr(Op.CONST, 1), Instr(Op.CONST, 2), Instr(Op.ADD), Instr(Op.RET)])
        depths = verify_stack_discipline(m)
        assert depths == {0: 0, 1: 1, 2: 2, 3: 1}

    def test_underflow_detected(self):
        m = method([Instr(Op.ADD), Instr(Op.RET)])
        with pytest.raises(VerificationError, match="underflow"):
            verify_stack_discipline(m)

    def test_inconsistent_join_detected(self):
        # One path pushes two values, the other one; both join at RET.
        code = [
            Instr(Op.CONST, 1),    # 0: depth 0 -> 1
            Instr(Op.JZ, 4),       # 1: -> 0
            Instr(Op.CONST, 2),    # 2: -> 1
            Instr(Op.CONST, 3),    # 3: -> 2
            Instr(Op.CONST, 9),    # 4: joined from 1 (depth 0) and fallthrough (2)
            Instr(Op.RET),
        ]
        with pytest.raises(VerificationError, match="inconsistent"):
            stack_depths(code)

    def test_fall_off_end_detected(self):
        code = [Instr(Op.CONST, 1), Instr(Op.POP)]
        with pytest.raises(VerificationError, match="falls off"):
            stack_depths(code)

    def test_branches_with_consistent_depths(self):
        m = method(
            [
                Instr(Op.CONST, 1),
                Instr(Op.JZ, 4),
                Instr(Op.CONST, 5),
                Instr(Op.RET),
                Instr(Op.CONST, 7),
                Instr(Op.RET),
            ]
        )
        depths = verify_stack_discipline(m)
        assert depths[2] == depths[4] == 0

    def test_max_stack_depth(self):
        m = method(
            [Instr(Op.CONST, 1), Instr(Op.CONST, 2), Instr(Op.CONST, 3),
             Instr(Op.ADD), Instr(Op.ADD), Instr(Op.RET)]
        )
        assert max_stack_depth(m) == 3

    def test_whole_program(self, loop_program):
        depths = verify_program_stacks(loop_program)
        assert set(depths) == {"main", "square"}
        assert all(d >= 1 for d in depths.values())

    def test_all_compiled_minilang_passes(self):
        source = """
        fn helper(a, b) { return a * b + a; }
        fn main(n) {
          var s = 0;
          for (var i = 0; i < n; i = i + 1) {
            if (i % 2 == 0 && i > 2) { s = s + helper(i, s); }
            else { s = s - 1; }
          }
          return s;
        }
        """
        verify_program_stacks(compile_source(source))


class TestDefiniteAssignment:
    def test_codegen_output_always_satisfies(self):
        source = """
        fn f(x) {
          var a = x + 1;
          if (x > 0) { var b = a * 2; a = b; }
          while (a > 0) { a = a - 1; }
          return a;
        }
        fn main() { return f(5); }
        """
        program = compile_source(source)
        for m in program:
            assert locals_write_before_read(list(m.code), m.num_params)

    def test_read_before_write_detected(self):
        code = [Instr(Op.LOAD, 1), Instr(Op.RET)]
        assert not locals_write_before_read(code, num_params=1)

    def test_params_count_as_assigned(self):
        code = [Instr(Op.LOAD, 0), Instr(Op.RET)]
        assert locals_write_before_read(code, num_params=1)

    def test_one_sided_assignment_detected(self):
        # slot 1 assigned only on the taken branch, then read on the join.
        code = [
            Instr(Op.LOAD, 0),
            Instr(Op.JZ, 4),
            Instr(Op.CONST, 7),
            Instr(Op.STORE, 1),
            Instr(Op.LOAD, 1),
            Instr(Op.RET),
        ]
        assert not locals_write_before_read(code, num_params=1)

    def test_both_sided_assignment_accepted(self):
        code = [
            Instr(Op.LOAD, 0),
            Instr(Op.JZ, 5),
            Instr(Op.CONST, 7),
            Instr(Op.STORE, 1),
            Instr(Op.JMP, 7),
            Instr(Op.CONST, 8),
            Instr(Op.STORE, 1),
            Instr(Op.LOAD, 1),
            Instr(Op.RET),
        ]
        assert locals_write_before_read(code, num_params=1)
