"""Property-based tests on VM tooling: disassembly round-trips, verifier
invariants, and tier consistency over randomly generated programs."""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.vm import (
    Interpreter,
    assemble_program,
    disassemble_program,
    max_stack_depth,
    verify_program_stacks,
)


@st.composite
def programs(draw):
    """Random structured MiniLang programs with helpers, branches, loops."""
    n_helpers = draw(st.integers(min_value=0, max_value=3))
    helper_names = [f"h{i}" for i in range(n_helpers)]
    parts = []
    for name in helper_names:
        coeff = draw(st.integers(min_value=-4, max_value=4))
        offset = draw(st.integers(min_value=-4, max_value=4))
        parts.append(
            f"fn {name}(x) {{ return x * {_lit(coeff)} + {_lit(offset)}; }}"
        )
    bound = draw(st.integers(min_value=0, max_value=15))
    pivot = draw(st.integers(min_value=0, max_value=15))
    body_calls = "".join(
        f" s = s + {name}(i);" for name in helper_names
    )
    parts.append(
        f"""
        fn main() {{
          var s = 0;
          for (var i = 0; i < {bound}; i = i + 1) {{
            if (i < {pivot}) {{ s = s + i; }} else {{ s = s - 1; }}
            {body_calls}
          }}
          return s;
        }}
        """
    )
    source = "\n".join(parts)
    expected = _oracle(bound, pivot, helper_names, source)
    return source, expected


def _lit(value: int) -> str:
    return str(value) if value >= 0 else f"(0 - {-value})"


def _oracle(bound, pivot, helper_names, source):
    """Recompute main()'s value in Python by parsing helper coefficients
    back out of the generated source (kept trivially in sync)."""
    import re

    coeffs = {}
    for match in re.finditer(
        r"fn (h\d+)\(x\) \{ return x \* (\(0 - \d+\)|\d+) \+ (\(0 - \d+\)|\d+); \}",
        source,
    ):
        name = match.group(1)
        coeff = _unlit(match.group(2))
        offset = _unlit(match.group(3))
        coeffs[name] = (coeff, offset)
    s = 0
    for i in range(bound):
        s = s + i if i < pivot else s - 1
        for name in helper_names:
            a, b = coeffs[name]
            s += a * i + b
    return s


def _unlit(text: str) -> int:
    return -int(text[5:-1]) if text.startswith("(0 -") else int(text)


@given(programs())
@settings(max_examples=50, deadline=None)
def test_compiled_program_matches_oracle(case):
    source, expected = case
    program = compile_source(source)
    interp = Interpreter(program)
    interp.run(())
    assert interp.result == expected


@given(programs())
@settings(max_examples=50, deadline=None)
def test_disassembly_round_trip_preserves_everything(case):
    source, expected = case
    program = compile_source(source)
    text = disassemble_program(program)
    rebuilt = assemble_program(text)
    # Text is a fixpoint…
    assert disassemble_program(rebuilt) == text
    # …and semantics survive.
    interp = Interpreter(rebuilt)
    interp.run(())
    assert interp.result == expected


@given(programs())
@settings(max_examples=50, deadline=None)
def test_all_generated_code_passes_stack_verification(case):
    source, __ = case
    program = compile_source(source)
    depths = verify_program_stacks(program)
    assert all(depth >= 1 for depth in depths.values())


@given(programs(), st.sampled_from([0, 1, 2]))
@settings(max_examples=40, deadline=None)
def test_optimized_code_still_verifies(case, level):
    """Every tier's output must satisfy the stack discipline the verifier
    checks — optimization may not corrupt stack shapes."""
    from repro.vm import DEFAULT_CONFIG, JITCompiler, Method

    source, __ = case
    program = compile_source(source)
    jit = JITCompiler(program, DEFAULT_CONFIG)
    for method in program:
        compiled = jit.compile(method.name, level)
        reconstructed = Method(
            name=method.name,
            num_params=method.num_params,
            num_locals=compiled.num_locals,
            code=compiled.code,
        )
        assert max_stack_depth(reconstructed) >= 1
