"""Unit tests for the MiniLang lexer."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


def kinds(source):
    return [tok.kind for tok in tokenize(source)]


def texts(source):
    return [tok.text for tok in tokenize(source)[:-1]]


class TestTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == TokenKind.EOF

    def test_integers_and_floats(self):
        tokens = tokenize("42 3.14 0 0.5")
        assert [t.value for t in tokens[:-1]] == [42, 3.14, 0, 0.5]
        assert tokens[0].kind == TokenKind.INT
        assert tokens[1].kind == TokenKind.FLOAT

    def test_int_followed_by_dot_not_float(self):
        # "1." with no trailing digit lexes the int then fails on the dot.
        with pytest.raises(LexError):
            tokenize("1.")

    def test_keywords_vs_identifiers(self):
        tokens = tokenize("fn var iffy if while whilex return")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.FN,
            TokenKind.VAR,
            TokenKind.IDENT,
            TokenKind.IF,
            TokenKind.WHILE,
            TokenKind.IDENT,
            TokenKind.RETURN,
        ]

    def test_two_char_operators(self):
        tokens = tokenize("== != <= >= && ||")
        assert [t.kind for t in tokens[:-1]] == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_one_char_operators(self):
        assert texts("+ - * / % ! < > = ( ) { } [ ] , ;") == [
            "+", "-", "*", "/", "%", "!", "<", ">", "=",
            "(", ")", "{", "}", "[", "]", ",", ";",
        ]

    def test_comments_skipped(self):
        tokens = tokenize("1 // comment with symbols +-*/\n2")
        assert [t.value for t in tokens[:-1]] == [1, 2]

    def test_division_not_comment(self):
        tokens = tokenize("4 / 2")
        assert tokens[1].kind == TokenKind.SLASH

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_unexpected_character_reports_position(self):
        with pytest.raises(LexError) as err:
            tokenize("a\n@")
        assert err.value.line == 2

    def test_underscore_identifiers(self):
        tokens = tokenize("_x x_1 __weird__")
        assert all(t.kind == TokenKind.IDENT for t in tokens[:-1])
