"""Per-artifact corruption tests: every persisted artifact type degrades.

The acceptance bar for the crash-safe layer: corrupting any persisted
artifact — result-cache entry, JIT artifact, telemetry log tail — by
truncation or bit flip yields quarantine + graceful fallback, never an
exception and never a wrong result. (VM state files are covered in
``test_resilience_records.py``.)
"""

import pytest

from repro.experiments.telemetry import (
    CacheKey,
    ResultCache,
    TelemetryLog,
    cell_event,
    read_events,
)
from repro.resilience.degradation import DegradationReport
from repro.resilience.quarantine import QUARANTINE_DIR, quarantine_dir
from repro.vm.opt.artifact_cache import JITArtifactCache

KEY = CacheKey("Search", "default", 0, 8, 11, "abc123")
PAYLOAD = {"outcomes": [1, 2, 3], "wall_s": 0.5}


def truncate(path):
    blob = path.read_bytes()
    path.write_bytes(blob[: max(1, len(blob) // 2)])


def bit_flip(path):
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0x10
    path.write_bytes(bytes(blob))


CORRUPTORS = [truncate, bit_flip]


class TestResultCacheCorruption:
    @pytest.mark.parametrize("corrupt", CORRUPTORS)
    def test_corrupt_entry_quarantines_and_misses(self, tmp_path, corrupt):
        report = DegradationReport()
        cache = ResultCache(tmp_path, report=report)
        cache.put(KEY, PAYLOAD)
        entry = cache._path(KEY)
        corrupt(entry)

        assert cache.get(KEY) is None
        assert cache.stats.quarantined == 1
        assert not entry.exists()
        assert quarantine_dir(entry).exists()
        assert report.count(component="result-cache", action="quarantine") == 1
        assert report.count(component="result-cache", action="cache-miss") == 1
        # A re-put repopulates; the cache recovers fully.
        cache.put(KEY, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD

    def test_wrong_kind_envelope_misses(self, tmp_path):
        from repro.resilience.envelope import write_envelope

        cache = ResultCache(tmp_path)
        cache.put(KEY, PAYLOAD)
        write_envelope(cache._path(KEY), b"x", kind="vm-state")
        assert cache.get(KEY) is None


class TestJITArtifactCacheCorruption:
    def _warm(self, tmp_path, report=None):
        cache = JITArtifactCache(tmp_path / "jit", report=report)
        cache.put("k" * 64, {"speed_factor": 2.0, "compile_cycles": 100.0})
        return cache

    @pytest.mark.parametrize("corrupt", CORRUPTORS)
    def test_corrupt_artifact_quarantines_and_misses(self, tmp_path, corrupt):
        report = DegradationReport()
        self._warm(tmp_path, report)
        corrupt(tmp_path / "jit" / f"{'k' * 64}.pkl")

        # A fresh cache instance (new process, cold memory) must treat the
        # corrupt entry as a miss, not a crash and not a corrupt hit.
        cold = JITArtifactCache(tmp_path / "jit", report=report)
        assert cold.get("k" * 64) is None
        assert cold.quarantined == 1
        assert cold.stats()["quarantined"] == 1
        assert (tmp_path / "jit" / QUARANTINE_DIR).exists()
        assert report.count(component="jit-cache", action="quarantine") == 1

    def test_reput_after_quarantine_serves_again(self, tmp_path):
        self._warm(tmp_path)
        truncate(tmp_path / "jit" / f"{'k' * 64}.pkl")
        cold = JITArtifactCache(tmp_path / "jit")
        assert cold.get("k" * 64) is None
        cold.put("k" * 64, {"speed_factor": 2.0})
        colder = JITArtifactCache(tmp_path / "jit")
        assert colder.get("k" * 64) == {"speed_factor": 2.0}


class TestTelemetryTailCorruption:
    def _write_log(self, tmp_path, n=4):
        path = tmp_path / "events.jsonl"
        log = TelemetryLog(path)
        events = [
            cell_event("cell", "Search", "default", i, i + 1, wall_s=None)
            for i in range(n)
        ]
        log.extend(events)
        return path, events

    def test_truncated_tail_line_skipped_with_warning(self, tmp_path):
        path, events = self._write_log(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # tear the last line

        report = DegradationReport()
        with pytest.warns(RuntimeWarning, match="skipped"):
            read_back = read_events(path, report=report)
        assert read_back == events[:-1]
        assert report.count(component="telemetry", action="skip-line") == 1

    def test_bit_flipped_middle_line_skipped_rest_survive(self, tmp_path):
        path, events = self._write_log(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5] + "\x00" + lines[1][6:]
        path.write_text("\n".join(lines) + "\n")

        with pytest.warns(RuntimeWarning):
            read_back = read_events(path)
        assert read_back == [events[0]] + events[2:]

    def test_strict_mode_raises_instead(self, tmp_path):
        path, _ = self._write_log(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        with pytest.raises(ValueError):
            read_events(path, strict=True)

    def test_clean_log_reads_without_warning(self, tmp_path):
        import warnings

        path, events = self._write_log(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert read_events(path) == events
