"""Unit tests for the virtual-time sampler."""

import pytest

from repro.vm import Sampler


class Recorder:
    def __init__(self):
        self.events = []

    def on_sample(self, method, clock, count):
        self.events.append((method, clock, count))


class TestSampler:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Sampler(0)
        with pytest.raises(ValueError):
            Sampler(-5)

    def test_no_sample_before_first_tick(self):
        sampler = Sampler(100)
        sampler.advance(99, "m")
        assert sampler.total == 0

    def test_one_sample_per_interval(self):
        sampler = Sampler(100)
        sampler.advance(100, "m")
        sampler.advance(150, "m")
        sampler.advance(250, "m")
        assert sampler.counts == {"m": 2}

    def test_long_instruction_emits_multiple_samples(self):
        sampler = Sampler(100)
        sampler.advance(550, "burner")
        assert sampler.counts == {"burner": 5}

    def test_samples_attributed_to_current_method(self):
        sampler = Sampler(100)
        sampler.advance(100, "a")
        sampler.advance(200, "b")
        sampler.advance(305, "b")
        assert sampler.counts == {"a": 1, "b": 2}

    def test_listener_receives_cumulative_counts(self):
        sampler = Sampler(100)
        recorder = Recorder()
        sampler.add_listener(recorder)
        sampler.advance(210, "m")
        assert [count for _, _, count in recorder.events] == [1, 2]
        assert all(method == "m" for method, _, _ in recorder.events)

    def test_skip_to_suppresses_samples(self):
        sampler = Sampler(100)
        sampler.skip_to(450)
        sampler.advance(460, "m")
        assert sampler.total == 0  # next tick moved past 450
        sampler.advance(500, "m")
        assert sampler.counts == {"m": 1}

    def test_next_tick_exposed(self):
        sampler = Sampler(100)
        assert sampler.next_tick == 100
        sampler.advance(100, "m")
        assert sampler.next_tick == 200


class TestBatchedAdvance:
    """The listener-free fast path of ``advance`` must be bit-identical
    to per-tick advancement (same counts, same ``next_tick`` bits)."""

    def test_has_listeners_reflects_registration(self):
        sampler = Sampler(100)
        assert not sampler.has_listeners
        sampler.add_listener(Recorder())
        assert sampler.has_listeners

    def test_batched_advance_matches_stepwise(self):
        # Awkward float interval: repeated addition must stay bitwise in
        # sync between one big advance and many small ones.
        interval = 104.729
        batched = Sampler(interval)
        stepwise = Sampler(interval)
        clock = 0.0
        for i in range(1, 400):
            clock += 13.37 * (i % 7 + 1)
            stepwise.advance(clock, "m")
        batched.advance(clock, "m")
        assert batched.counts == stepwise.counts
        assert batched.next_tick == stepwise.next_tick

    def test_listener_path_unchanged_by_batching(self):
        interval = 100.0
        plain = Sampler(interval)
        listened = Sampler(interval)
        recorder = Recorder()
        listened.add_listener(recorder)
        for clock in (150.0, 320.0, 805.5):
            plain.advance(clock, "m")
            listened.advance(clock, "m")
        assert plain.counts == listened.counts
        assert plain.next_tick == listened.next_tick
        assert [count for _, _, count in recorder.events] == list(range(1, 9))
