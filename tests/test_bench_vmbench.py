"""Schema and regression-gate tests for the VM wall-clock bench suite.

The timing itself lives in ``benchmarks/bench_vm.py`` (bench-marked);
tier-1 only checks the report contract: schema validation, baseline
comparison logic, and that one minimal timed workload round-trips
through ``write_report``.
"""

import json

import pytest

from repro.bench.vmbench import (
    BENCH_SCHEMA_VERSION,
    bench_workloads,
    compare_to_baseline,
    validate_bench_report,
    write_report,
)


def synthetic_report(
    speedup: float = 4.0,
    learn_speedup: float = 5.0,
    overhead_ratio: float = 1.3,
    compiled_speedup: float = 12.0,
    fork_speedup: float = 3.2,
    kernel_speedup: float = 3.0,
) -> dict:
    row = {
        "name": "arith_loop",
        "level": None,
        "instructions": 1000,
        "reference_wall_s": 1.0,
        "fast_wall_s": 1.0 / speedup,
        "compiled_wall_s": 1.0 / compiled_speedup,
        "reference_ips": 1000.0,
        "fast_ips": 1000.0 * speedup,
        "compiled_ips": 1000.0 * compiled_speedup,
        "speedup": speedup,
        "speedup_compiled": compiled_speedup,
    }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": True,
        "host": {"python": "3", "implementation": "x", "machine": "y"},
        "workloads": [row],
        "speedup": {"geomean": speedup, "min": speedup, "max": speedup},
        "speedup_compiled": {
            "geomean": compiled_speedup,
            "min": compiled_speedup,
            "max": compiled_speedup,
        },
        "sweep_cell": {"identical_cycles": True},
        "fuzz": {"ok": True},
        "learning": {
            "training": {
                "methods": 40,
                "runs": 60,
                "training_rows": 2400,
                "wall_s": 0.2,
                "rows_per_s": 12000.0,
                "presort": {"entries": 1, "hits": 39, "misses": 1},
            },
            "speedup": {
                "methods_timed": 4,
                "per_method": [],
                "geomean": learn_speedup,
                "min": learn_speedup,
                "max": learn_speedup,
                "identical_trees": True,
            },
            "predict": {
                "queries": 200,
                "trees": 40,
                "wall_s": 0.01,
                "per_call_us": 50.0,
            },
        },
        "serving": {
            "requests": 240,
            "tenants": 3,
            "wall_s": 0.2,
            "serial_wall_s": 0.2 / overhead_ratio,
            "total_wall_s": 0.5,
            "rps": 1200.0,
            "latency_ms": {
                "p50": 5.0, "p95": 20.0, "p99": 30.0, "mean": 8.0,
            },
            "overhead_ratio": overhead_ratio,
            "swaps": 9,
            "sheds": 36,
            "batches": 5,
            "identical_to_serial": True,
            "batch_kernel": {
                "trees": 40,
                "rows": [
                    {
                        "batch_size": 16,
                        "per_row_us": 100.0,
                        "batch_us": 100.0 / kernel_speedup,
                        "speedup": kernel_speedup,
                    },
                ],
                "identical": True,
                "speedup": {
                    "geomean": kernel_speedup,
                    "min": kernel_speedup,
                    "max": kernel_speedup,
                },
            },
            "shard_scaling": {
                "requests": 160,
                "tenants": 3,
                "points": [
                    {"shards": 1, "wall_s": 0.4, "rps": 400.0},
                    {"shards": 2, "wall_s": 0.25, "rps": 640.0},
                ],
                "identical_to_serial": True,
            },
        },
        "datagen": {
            "fork": {
                "programs": 6,
                "pairs": 48,
                "naive_wall_s": 3.2,
                "forked_wall_s": 3.2 / fork_speedup,
                "speedup": fork_speedup,
                "identical_labels": True,
            },
            "pipeline": {
                "programs": 30,
                "inputs_per_program": 4,
                "rows": 280,
                "shards": 1,
                "max_resident_rows": 280,
                "label_wall_s": 2.0,
                "train_wall_s": 0.5,
                "rows_per_s_generated": 140.0,
                "rows_per_s_trained": 560.0,
                "trained": True,
            },
        },
    }


def test_valid_report_passes():
    validate_bench_report(synthetic_report())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.pop("workloads"),
        lambda r: r.update(schema_version=99),
        lambda r: r["workloads"][0].update(speedup=0),
        lambda r: r["workloads"][0].pop("fast_ips"),
        lambda r: r["workloads"][0].pop("compiled_ips"),
        lambda r: r.pop("speedup_compiled"),
        lambda r: r["speedup_compiled"].update(geomean=0),
        lambda r: r.update(workloads=[]),
        lambda r: r["sweep_cell"].update(identical_cycles=False),
        lambda r: r.pop("learning"),
        lambda r: r["learning"]["speedup"].update(identical_trees=False),
        lambda r: r["learning"]["training"].update(rows_per_s=0),
        lambda r: r["learning"]["predict"].pop("per_call_us"),
        lambda r: r.pop("serving"),
        lambda r: r["serving"].update(identical_to_serial=False),
        lambda r: r["serving"]["latency_ms"].pop("p99"),
        lambda r: r["serving"].update(rps=0),
        lambda r: r["serving"].pop("batch_kernel"),
        lambda r: r["serving"]["batch_kernel"].update(identical=False),
        lambda r: r["serving"]["batch_kernel"]["rows"][0].update(speedup=0),
        lambda r: r["serving"].pop("shard_scaling"),
        lambda r: r["serving"]["shard_scaling"].update(
            identical_to_serial=False
        ),
        lambda r: r["serving"]["shard_scaling"].update(points=[]),
        lambda r: r.pop("datagen"),
        lambda r: r["datagen"]["fork"].update(identical_labels=False),
        lambda r: r["datagen"]["fork"].update(speedup=0),
        lambda r: r["datagen"]["pipeline"].update(rows=0),
    ],
    ids=[
        "missing-workloads",
        "bad-version",
        "nonpositive-speedup",
        "missing-field",
        "missing-compiled-ips",
        "missing-compiled-speedup",
        "zero-compiled-geomean",
        "empty-workloads",
        "cache-changed-results",
        "missing-learning",
        "learning-trees-diverged",
        "learning-zero-throughput",
        "learning-missing-latency",
        "missing-serving",
        "serving-diverged-from-serial",
        "serving-missing-percentile",
        "serving-zero-throughput",
        "missing-batch-kernel",
        "batch-kernel-diverged",
        "batch-kernel-zero-speedup",
        "missing-shard-scaling",
        "shard-scaling-diverged",
        "shard-scaling-no-points",
        "missing-datagen",
        "fork-labels-diverged",
        "zero-fork-speedup",
        "datagen-zero-rows",
    ],
)
def test_invalid_reports_rejected(mutate):
    report = synthetic_report()
    mutate(report)
    with pytest.raises(ValueError):
        validate_bench_report(report)


def test_baseline_within_tolerance():
    report = synthetic_report(speedup=3.5)
    baseline = synthetic_report(speedup=4.0)
    # 3.5 >= 4.0 * 0.8 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_baseline_regression_detected():
    report = synthetic_report(speedup=2.0)
    baseline = synthetic_report(speedup=4.0)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert any("geomean" in failure for failure in failures)


def test_compiled_regression_detected():
    report = synthetic_report(compiled_speedup=6.0)
    baseline = synthetic_report(compiled_speedup=12.0)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert any("compiled" in failure for failure in failures)


def test_compiled_within_tolerance():
    report = synthetic_report(compiled_speedup=10.0)
    baseline = synthetic_report(compiled_speedup=12.0)
    # 10.0 >= 12.0 * 0.8 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_compiled_gate_tolerates_v3_baseline():
    # A pre-compiled-tier (schema 3) baseline simply has no compiled gate.
    report = synthetic_report(compiled_speedup=1.0)
    baseline = synthetic_report()
    del baseline["speedup_compiled"]
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_learning_regression_detected():
    report = synthetic_report(learn_speedup=2.0)
    baseline = synthetic_report(learn_speedup=5.0)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert all("learning" in failure for failure in failures)


def test_learning_gate_tolerates_v1_baseline():
    # A pre-learning (schema 1) baseline simply has no learning gate.
    report = synthetic_report(learn_speedup=2.0)
    baseline = synthetic_report()
    del baseline["learning"]
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_serving_regression_detected():
    # Overhead ratio is "cost of concurrency": higher is worse.
    report = synthetic_report(overhead_ratio=2.0)
    baseline = synthetic_report(overhead_ratio=1.3)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert all("serving" in failure for failure in failures)


def test_serving_within_tolerance():
    report = synthetic_report(overhead_ratio=1.5)
    baseline = synthetic_report(overhead_ratio=1.3)
    # 1.5 <= 1.3 * 1.2 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_serving_gate_tolerates_v2_baseline():
    # A pre-serving (schema 2) baseline simply has no serving gate.
    report = synthetic_report(overhead_ratio=5.0)
    baseline = synthetic_report()
    del baseline["serving"]
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_batch_kernel_regression_detected():
    report = synthetic_report(kernel_speedup=1.5)
    baseline = synthetic_report(kernel_speedup=3.0)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert all("batch kernel" in failure for failure in failures)


def test_batch_kernel_within_tolerance():
    report = synthetic_report(kernel_speedup=2.6)
    baseline = synthetic_report(kernel_speedup=3.0)
    # 2.6 >= 3.0 * 0.8 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_batch_kernel_gate_tolerates_v5_baseline():
    # A pre-batching (schema 5) baseline simply has no batch-kernel gate.
    report = synthetic_report(kernel_speedup=1.0)
    baseline = synthetic_report()
    del baseline["serving"]["batch_kernel"]
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_datagen_regression_detected():
    report = synthetic_report(fork_speedup=1.5)
    baseline = synthetic_report(fork_speedup=3.2)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert all("fork" in failure for failure in failures)


def test_datagen_within_tolerance():
    report = synthetic_report(fork_speedup=2.8)
    baseline = synthetic_report(fork_speedup=3.2)
    # 2.8 >= 3.2 * 0.8 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_datagen_gate_tolerates_v4_baseline():
    # A pre-forge (schema 4) baseline simply has no datagen gate.
    report = synthetic_report(fork_speedup=1.0)
    baseline = synthetic_report()
    del baseline["datagen"]
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_checked_in_baseline_is_valid():
    from pathlib import Path

    path = Path(__file__).parent.parent / "benchmarks" / "BENCH_baseline.json"
    baseline = json.loads(path.read_text())
    validate_bench_report(baseline)
    # The tentpole acceptance bars, recorded in the baseline itself.
    assert baseline["speedup"]["geomean"] >= 3.0
    # Closure-compiled tier: at least 10x over the reference loop.
    assert baseline["speedup_compiled"]["geomean"] >= 10.0
    # Quick mode trains on small datasets where the sweep's advantage is
    # smallest; the full Table-I-scale workload clears 5x.
    assert baseline["learning"]["speedup"]["geomean"] >= 2.0
    assert baseline["learning"]["speedup"]["identical_trees"] is True
    assert baseline["learning"]["predict"]["per_call_us"] < 1000.0
    assert baseline["serving"]["identical_to_serial"] is True
    assert baseline["serving"]["swaps"] > 0
    assert baseline["serving"]["sheds"] > 0
    # Batched inference kernel: at least 2x over per-row predicts at
    # batch sizes >= 16 with outputs checked bit-identical (the sharded
    # serving acceptance bar), and every shard count bit-identical to
    # serial replay.
    kernel = baseline["serving"]["batch_kernel"]
    assert kernel["speedup"]["geomean"] >= 2.0
    assert kernel["identical"] is True
    assert baseline["serving"]["shard_scaling"]["identical_to_serial"] is True
    # Forked-run labeling: at least 3x over independent runs at
    # bit-identical labels (the forge acceptance bar).
    assert baseline["datagen"]["fork"]["speedup"] >= 3.0
    assert baseline["datagen"]["fork"]["identical_labels"] is True


def test_workload_timing_roundtrip(tmp_path):
    # One tiny real measurement exercises the writer end to end.
    rows = bench_workloads(quick=True, repeats=1)
    assert all(row["speedup"] > 0 for row in rows)
    assert all(row["speedup_compiled"] > 0 for row in rows)
    report = synthetic_report()
    out = tmp_path / "BENCH_vm.json"
    write_report(report, out)
    assert json.loads(out.read_text())["schema_version"] == BENCH_SCHEMA_VERSION
