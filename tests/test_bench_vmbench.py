"""Schema and regression-gate tests for the VM wall-clock bench suite.

The timing itself lives in ``benchmarks/bench_vm.py`` (bench-marked);
tier-1 only checks the report contract: schema validation, baseline
comparison logic, and that one minimal timed workload round-trips
through ``write_report``.
"""

import json

import pytest

from repro.bench.vmbench import (
    BENCH_SCHEMA_VERSION,
    bench_workloads,
    compare_to_baseline,
    validate_bench_report,
    write_report,
)


def synthetic_report(speedup: float = 4.0) -> dict:
    row = {
        "name": "arith_loop",
        "level": None,
        "instructions": 1000,
        "reference_wall_s": 1.0,
        "fast_wall_s": 1.0 / speedup,
        "reference_ips": 1000.0,
        "fast_ips": 1000.0 * speedup,
        "speedup": speedup,
    }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": True,
        "host": {"python": "3", "implementation": "x", "machine": "y"},
        "workloads": [row],
        "speedup": {"geomean": speedup, "min": speedup, "max": speedup},
        "sweep_cell": {"identical_cycles": True},
        "fuzz": {"ok": True},
    }


def test_valid_report_passes():
    validate_bench_report(synthetic_report())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda r: r.pop("workloads"),
        lambda r: r.update(schema_version=99),
        lambda r: r["workloads"][0].update(speedup=0),
        lambda r: r["workloads"][0].pop("fast_ips"),
        lambda r: r.update(workloads=[]),
        lambda r: r["sweep_cell"].update(identical_cycles=False),
    ],
    ids=[
        "missing-workloads",
        "bad-version",
        "nonpositive-speedup",
        "missing-field",
        "empty-workloads",
        "cache-changed-results",
    ],
)
def test_invalid_reports_rejected(mutate):
    report = synthetic_report()
    mutate(report)
    with pytest.raises(ValueError):
        validate_bench_report(report)


def test_baseline_within_tolerance():
    report = synthetic_report(speedup=3.5)
    baseline = synthetic_report(speedup=4.0)
    # 3.5 >= 4.0 * 0.8 → fine.
    assert compare_to_baseline(report, baseline, max_regression=0.20) == []


def test_baseline_regression_detected():
    report = synthetic_report(speedup=2.0)
    baseline = synthetic_report(speedup=4.0)
    failures = compare_to_baseline(report, baseline, max_regression=0.20)
    assert failures
    assert any("geomean" in failure for failure in failures)


def test_checked_in_baseline_is_valid():
    from pathlib import Path

    path = Path(__file__).parent.parent / "benchmarks" / "BENCH_baseline.json"
    baseline = json.loads(path.read_text())
    validate_bench_report(baseline)
    # The tentpole acceptance bar, recorded in the baseline itself.
    assert baseline["speedup"]["geomean"] >= 3.0


def test_workload_timing_roundtrip(tmp_path):
    # One tiny real measurement exercises the writer end to end.
    rows = bench_workloads(quick=True, repeats=1)
    assert all(row["speedup"] > 0 for row in rows)
    report = synthetic_report()
    out = tmp_path / "BENCH_vm.json"
    write_report(report, out)
    assert json.loads(out.read_text())["schema_version"] == BENCH_SCHEMA_VERSION
