"""Serving-surface tests: wire schema, registry, startup surfacing, caches.

The contracts under test (docs/serving.md):

- the request/response schema is machine-checkable and every response
  carries an HTTP-flavored ``status``;
- the model registry persists learned state through the crash-safe
  envelope: corruption quarantines and cold-starts, never crashes, and
  ``repro serve`` surfaces a degraded registry loudly (stderr +
  ``serve_degradation`` telemetry) instead of booting silently empty;
- the shared predict-result cache is content-addressed by model
  fingerprint, so a hot swap can never serve a stale generation's answer
  while a restart of the *same* model keeps its entries warm;
- the TCP transport round-trips requests as JSON lines.
"""

import asyncio
import io
import json

import pytest

from repro.core import EvolvableVM
from repro.experiments.telemetry import (
    ResultCache,
    TelemetryLog,
    serve_event,
    validate_event,
)
from repro.serving import (
    FleetServer,
    ModelRegistry,
    Tenant,
    build_fleet,
    serve_tcp,
)
from repro.serving.protocol import (
    bad_request_response,
    decode_line,
    encode_line,
    error_response,
    ok_response,
    shed_response,
    unknown_tenant_response,
    validate_request,
)

TRAIN = ["-m 1 -n 50", "-m 2 -n 1200", "-m 1 -n 1200", "-m 2 -n 50",
         "-m 1 -n 50", "-m 2 -n 1200"]


class TestProtocol:
    def test_valid_requests(self):
        assert validate_request(
            {"op": "run", "app": "a", "cmdline": "-n 1"}) == []
        assert validate_request(
            {"op": "predict", "app": "a", "cmdline": "-n 1"}) == []
        assert validate_request({"op": "swap", "app": "a"}) == []
        assert validate_request({"op": "stats"}) == []

    def test_rejects_garbage(self):
        assert validate_request("not a dict")
        assert validate_request({"op": "explode"})
        assert validate_request({"op": "run", "cmdline": "-n 1"})  # no app
        assert validate_request({"op": "run", "app": "a"})  # no cmdline
        assert validate_request(
            {"op": "run", "app": "a", "cmdline": "x", "seed": "zero"})

    def test_response_statuses_and_echo(self):
        request = {"op": "run", "app": "a", "id": 7}
        assert ok_response(request, result=1)["status"] == 200
        assert ok_response(request, result=1)["id"] == 7
        assert bad_request_response(request, ["x"])["status"] == 400
        assert unknown_tenant_response(request, ["b"])["status"] == 404
        shed = shed_response(request, 4, 4)
        assert shed["status"] == 429
        assert shed["queue_depth"] == 4 and shed["queue_bound"] == 4
        assert error_response(request, ValueError("boom"))["status"] == 500

    def test_jsonl_round_trip(self):
        obj = {"op": "stats", "id": "x"}
        assert decode_line(encode_line(obj)) == obj
        assert decode_line(b"") is None
        assert decode_line(b"not json\n") is None
        assert decode_line(b"[1, 2]\n") is None  # non-object


@pytest.fixture
def trained(toy_app):
    vm = EvolvableVM(toy_app)
    for i, cmd in enumerate(TRAIN):
        vm.run(cmd, rng_seed=i)
    return vm


class TestModelRegistry:
    def test_ephemeral_registry_cold_starts_and_never_saves(self, toy_app):
        registry = ModelRegistry(None)
        vm = EvolvableVM(toy_app)
        assert registry.load_into(vm) is False
        assert registry.save(vm) is False
        summary = registry.startup_summary()
        assert summary["degraded"] is False
        assert summary["cold_started"] == ["toy"]

    def test_round_trip_restores_learning(self, toy_app, trained, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.save(trained)
        fresh = EvolvableVM(toy_app)
        assert registry.load_into(fresh) is True
        assert fresh.run_count == trained.run_count
        assert registry.startup_summary()["restored"] == ["toy"]
        assert registry.startup_summary()["degraded"] is False

    def test_generation_tracking(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.load_into(EvolvableVM(toy_app))
        assert registry.generations["toy"] == 0
        assert registry.note_swap("toy") == 1
        assert registry.note_swap("toy") == 2

    def test_missing_state_is_a_quiet_cold_start(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "never_written")
        registry.load_into(EvolvableVM(toy_app))
        summary = registry.startup_summary()
        assert summary["cold_started"] == ["toy"]
        assert summary["degraded"] is False  # missing file is normal

    def test_corrupt_state_quarantines_and_degrades(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path)
        path = registry.state_path("toy")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00garbage that is not an envelope")
        vm = EvolvableVM(toy_app)
        assert registry.load_into(vm) is False
        assert not path.exists()  # moved aside, not left to re-fail
        summary = registry.startup_summary()
        assert summary["quarantined"] == 1
        assert summary["degraded"] is True
        assert vm.run_count == 0  # cold boot, still serviceable


class TestStartupSurfacing:
    """The satellite fix: a quarantined registry must be loud at boot."""

    def _degraded_server(self, toy_app, tmp_path, telemetry=None):
        registry = ModelRegistry(tmp_path / "reg")
        path = registry.state_path("toy")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00torn")
        tenants = [Tenant(toy_app, registry=registry)]
        return FleetServer(tenants, registry, telemetry=telemetry)

    def test_degradation_printed_to_stream(self, toy_app, tmp_path):
        server = self._degraded_server(toy_app, tmp_path)
        stream = io.StringIO()
        summary = server.surface_startup(stream=stream)
        text = stream.getvalue()
        assert summary["degraded"] is True
        assert "WARNING" in text
        assert "quarantine" in text
        assert "toy" in text

    def test_degradation_mirrored_to_telemetry(self, toy_app, tmp_path):
        log = TelemetryLog(tmp_path / "serve.jsonl")
        server = self._degraded_server(toy_app, tmp_path, telemetry=log)
        server.surface_startup(stream=io.StringIO())
        log.close()
        events = [
            json.loads(line)
            for line in (tmp_path / "serve.jsonl").read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert "serve_degradation" in kinds
        for event in events:
            assert validate_event(event) == [], event

    def test_healthy_startup_is_not_degraded(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        server = FleetServer(
            [Tenant(toy_app, registry=registry)], registry
        )
        stream = io.StringIO()
        summary = server.surface_startup(stream=stream)
        assert summary["degraded"] is False
        assert "WARNING" not in stream.getvalue()


class TestServeTelemetrySchema:
    def test_all_serve_events_validate(self):
        events = [
            serve_event("serve_start", tenants=2, restored=1,
                        cold_started=1, quarantined=0, degraded=False),
            serve_event("serve_request", app="a", op="run", status=200,
                        wall_ms=1.5, batched=1),
            serve_event("serve_shed", app="a", op="predict",
                        queue_depth=4, queue_bound=4),
            serve_event("serve_swap", app="a", generation=3, runs=25,
                        wall_s=0.01),
            serve_event("serve_degradation", component="state",
                        action="quarantine", reason="checksum",
                        detail="x", path="/tmp/x"),
        ]
        for event in events:
            assert validate_event(event) == [], event

    def test_missing_fields_rejected(self):
        assert validate_event(serve_event("serve_shed", app="a"))
        assert validate_event({"event": "serve_nonsense", "v": 1})


class TestPredictCacheFingerprinting:
    def test_hits_within_generation_miss_across_swap(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        cache = ResultCache(tmp_path / "cache")
        tenant = Tenant(toy_app, registry=registry, predict_cache=cache,
                        refit_interval=None)
        first = tenant.predict(TRAIN[0])
        again = tenant.predict(TRAIN[0])
        assert again["levels"] == first["levels"]
        assert tenant.predict_cache_hits == 1
        for i, cmd in enumerate(TRAIN):
            tenant.run(cmd, seed=i)
        tenant.swap()  # new fingerprint: old entries must not serve
        tenant.predict(TRAIN[0])
        assert tenant.predict_cache_hits == 1  # miss after the swap
        tenant.predict(TRAIN[0])
        assert tenant.predict_cache_hits == 2  # warm again within gen

    def test_cache_survives_restart_of_same_model(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        cache = ResultCache(tmp_path / "cache")
        tenant = Tenant(toy_app, registry=registry, predict_cache=cache,
                        refit_interval=None)
        for i, cmd in enumerate(TRAIN):
            tenant.run(cmd, seed=i)
        tenant.swap()  # persists state + fingerprints the model
        warmed = tenant.predict(TRAIN[1])
        # "Restart": a fresh process would rebuild the tenant from disk.
        reborn = Tenant(toy_app, registry=ModelRegistry(tmp_path / "reg"),
                        predict_cache=cache, refit_interval=None)
        answer = reborn.predict(TRAIN[1])
        assert reborn.predict_cache_hits == 1  # same model → warm start
        assert answer["levels"] == warmed["levels"]


class TestTcpTransport:
    def test_json_lines_round_trip(self, toy_app, tmp_path):
        async def scenario():
            registry = ModelRegistry(tmp_path / "reg")
            server = FleetServer(
                build_fleet([toy_app], registry=registry,
                            refit_interval=None),
                registry,
            )
            await server.start()
            tcp = await serve_tcp(server, "127.0.0.1", 0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            requests = [
                {"id": 1, "op": "run", "app": "toy",
                 "cmdline": TRAIN[0], "seed": 0},
                {"id": 2, "op": "predict", "app": "toy",
                 "cmdline": TRAIN[0]},
                {"id": 3, "op": "stats"},
                {"id": 4, "op": "run", "app": "ghost", "cmdline": "-n 1"},
            ]
            for request in requests:
                writer.write(encode_line(request))
            writer.write(b"this is not json\n")
            await writer.drain()
            responses = []
            for _ in range(len(requests) + 1):
                responses.append(json.loads(await reader.readline()))
            writer.close()
            tcp.close()
            await tcp.wait_closed()
            await server.stop()
            return responses

        responses = asyncio.run(scenario())
        by_id = {r.get("id"): r for r in responses}
        assert by_id[1]["status"] == 200 and "result" in by_id[1]
        assert by_id[2]["status"] == 200 and "levels" in by_id[2]
        assert by_id[3]["status"] == 200
        assert by_id[3]["server"]["served"] >= 2
        assert by_id[4]["status"] == 404
        assert by_id[None]["status"] == 400  # the unparseable line
