"""Unit tests for the model builder and strategy predictor."""

import pytest

from repro.aos import LevelStrategy
from repro.core import ConfidenceTracker, ModelBuilder, OverheadModel, StrategyPredictor
from repro.xicl import FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def teach(builder, size, level_small, level_big, n=12, methods=("kernel",)):
    """Teach: small inputs → level_small, big inputs → level_big.

    Ends with the explicit offline-construction pass — prediction never
    trains, so an un-refit builder predicts nothing.
    """
    for i in range(n):
        small = i % 2 == 0
        fv = vec(size=10 if small else 1000)
        ideal = LevelStrategy(
            {m: (level_small if small else level_big) for m in methods}
        )
        builder.observe_run(fv, ideal)
    builder.refit_all()


class TestModelBuilder:
    def test_one_model_per_method(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2, methods=("a", "b"))
        assert len(builder) == 2
        assert builder.method_names == ("a", "b")

    def test_prediction_follows_features(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert builder.predict(vec(size=10)).level_for("kernel") == -1
        assert builder.predict(vec(size=1000)).level_for("kernel") == 2

    def test_empty_builder_predicts_nothing(self):
        assert len(ModelBuilder().predict(vec(size=1))) == 0

    def test_insufficient_history_omitted(self):
        builder = ModelBuilder(min_rows=5)
        builder.observe_run(vec(size=10), LevelStrategy({"m": 0}))
        builder.refit_all()
        assert len(builder.predict(vec(size=10))) == 0

    def test_used_and_raw_features(self):
        builder = ModelBuilder()
        for i in range(12):
            fv = vec(size=10 if i % 2 else 1000, noise=7)
            builder.observe_run(
                fv, LevelStrategy({"m": -1 if i % 2 else 2})
            )
        builder.refit_all()
        assert builder.raw_feature_count() == 2
        assert builder.used_features() == ("size",)

    def test_mean_cv_accuracy_range(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert 0.5 <= builder.mean_cv_accuracy() <= 1.0

    def test_model_for_lookup(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert builder.model_for("kernel") is not None
        assert builder.model_for("missing") is None

    def test_predict_never_trains(self):
        """Regression: the startup path must not pay training cost —
        predicting on a stale builder serves the last fitted trees."""
        builder = ModelBuilder()
        teach(builder, 10, -1, 2, methods=("a", "b"))
        fits_before = {
            m: builder.model_for(m).fit_count for m in builder.method_names
        }
        # New observations make every model stale; prediction must still
        # answer from the old trees without a single fit.
        builder.observe_run(vec(size=10), LevelStrategy({"a": 0, "b": 0}))
        assert all(builder.model_for(m).stale for m in builder.method_names)
        strategy = builder.predict(vec(size=1000))
        assert strategy.level_for("a") == 2
        assert {
            m: builder.model_for(m).fit_count for m in builder.method_names
        } == fits_before

    def test_unrefit_builder_predicts_nothing(self):
        builder = ModelBuilder()
        for i in range(12):
            builder.observe_run(
                vec(size=10 if i % 2 else 1000),
                LevelStrategy({"m": -1 if i % 2 else 2}),
            )
        # No explicit refit_all: no trees, no advice, no training.
        assert len(builder.predict(vec(size=10))) == 0
        assert builder.model_for("m").fit_count == 0

    def test_predict_all_matches_per_model_predict(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2, methods=("a", "b", "c"))
        for size in (10, 1000, 400):
            flat = builder.predict_all(vec(size=size))
            for method in builder.method_names:
                assert flat[method] == builder.model_for(method).predict(
                    vec(size=size)
                )

    def test_shared_presort_across_methods(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2, methods=tuple("m%d" % i for i in range(6)))
        stats = builder.presort_stats()
        # Six methods share one feature matrix: one presort, five hits.
        assert stats["hits"] >= 5

    def test_parallel_refit_identical_to_serial(self):
        serial = ModelBuilder()
        parallel = ModelBuilder()
        methods = ("alpha", "beta", "gamma")
        for i in range(14):
            fv = vec(size=10 if i % 2 else 1000, extra=i % 3)
            ideal = LevelStrategy(
                {m: (i + k) % 3 for k, m in enumerate(methods)}
            )
            serial.observe_run(fv, ideal)
            parallel.observe_run(fv, ideal)
        serial.refit_all(jobs=1)
        parallel.refit_all(jobs=3)
        for m in methods:
            assert (
                serial.model_for(m).render() == parallel.model_for(m).render()
            )
        probe = vec(size=400, extra=1)
        assert serial.predict(probe).levels == parallel.predict(probe).levels


class TestStrategyPredictor:
    def make(self, confident: bool):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        confidence = ConfidenceTracker()
        if confident:
            confidence.update(1.0)
            confidence.update(1.0)
        return StrategyPredictor(builder, confidence)

    def test_declines_when_not_confident(self):
        predictor = self.make(confident=False)
        strategy, cycles = predictor.maybe_predict(vec(size=1000))
        assert strategy is None
        assert cycles == 0.0

    def test_predicts_when_confident(self):
        predictor = self.make(confident=True)
        strategy, cycles = predictor.maybe_predict(vec(size=1000))
        assert strategy is not None
        assert strategy.level_for("kernel") == 2
        assert cycles > 0

    def test_declines_with_no_models(self):
        predictor = StrategyPredictor(ModelBuilder(), ConfidenceTracker())
        predictor.confidence.update(1.0)
        predictor.confidence.update(1.0)
        assert predictor.maybe_predict(vec(size=1))[0] is None

    def test_posterior_predict_ignores_gate(self):
        predictor = self.make(confident=False)
        strategy = predictor.posterior_predict(vec(size=1000))
        assert strategy.level_for("kernel") == 2

    def test_overhead_model_scales(self):
        overhead = OverheadModel()
        small = overhead.extraction_cycles(vec(a=1))
        large = overhead.extraction_cycles(vec(a=1, b=2, c=3))
        assert large > small
        assert overhead.prediction_cycles(LevelStrategy({"m": 1})) > 0
