"""Unit tests for the model builder and strategy predictor."""

import pytest

from repro.aos import LevelStrategy
from repro.core import ConfidenceTracker, ModelBuilder, OverheadModel, StrategyPredictor
from repro.xicl import FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def teach(builder, size, level_small, level_big, n=12, methods=("kernel",)):
    """Teach: small inputs → level_small, big inputs → level_big."""
    for i in range(n):
        small = i % 2 == 0
        fv = vec(size=10 if small else 1000)
        ideal = LevelStrategy(
            {m: (level_small if small else level_big) for m in methods}
        )
        builder.observe_run(fv, ideal)


class TestModelBuilder:
    def test_one_model_per_method(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2, methods=("a", "b"))
        assert len(builder) == 2
        assert builder.method_names == ("a", "b")

    def test_prediction_follows_features(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert builder.predict(vec(size=10)).level_for("kernel") == -1
        assert builder.predict(vec(size=1000)).level_for("kernel") == 2

    def test_empty_builder_predicts_nothing(self):
        assert len(ModelBuilder().predict(vec(size=1))) == 0

    def test_insufficient_history_omitted(self):
        builder = ModelBuilder(min_rows=5)
        builder.observe_run(vec(size=10), LevelStrategy({"m": 0}))
        assert len(builder.predict(vec(size=10))) == 0

    def test_used_and_raw_features(self):
        builder = ModelBuilder()
        for i in range(12):
            fv = vec(size=10 if i % 2 else 1000, noise=7)
            builder.observe_run(
                fv, LevelStrategy({"m": -1 if i % 2 else 2})
            )
        assert builder.raw_feature_count() == 2
        assert builder.used_features() == ("size",)

    def test_mean_cv_accuracy_range(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert 0.5 <= builder.mean_cv_accuracy() <= 1.0

    def test_model_for_lookup(self):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        assert builder.model_for("kernel") is not None
        assert builder.model_for("missing") is None


class TestStrategyPredictor:
    def make(self, confident: bool):
        builder = ModelBuilder()
        teach(builder, 10, -1, 2)
        confidence = ConfidenceTracker()
        if confident:
            confidence.update(1.0)
            confidence.update(1.0)
        return StrategyPredictor(builder, confidence)

    def test_declines_when_not_confident(self):
        predictor = self.make(confident=False)
        strategy, cycles = predictor.maybe_predict(vec(size=1000))
        assert strategy is None
        assert cycles == 0.0

    def test_predicts_when_confident(self):
        predictor = self.make(confident=True)
        strategy, cycles = predictor.maybe_predict(vec(size=1000))
        assert strategy is not None
        assert strategy.level_for("kernel") == 2
        assert cycles > 0

    def test_declines_with_no_models(self):
        predictor = StrategyPredictor(ModelBuilder(), ConfidenceTracker())
        predictor.confidence.update(1.0)
        predictor.confidence.update(1.0)
        assert predictor.maybe_predict(vec(size=1))[0] is None

    def test_posterior_predict_ignores_gate(self):
        predictor = self.make(confident=False)
        strategy = predictor.posterior_predict(vec(size=1000))
        assert strategy.level_for("kernel") == 2

    def test_overhead_model_scales(self):
        overhead = OverheadModel()
        small = overhead.extraction_cycles(vec(a=1))
        large = overhead.extraction_cycles(vec(a=1, b=2, c=3))
        assert large > small
        assert overhead.prediction_cycles(LevelStrategy({"m": 1})) > 0
