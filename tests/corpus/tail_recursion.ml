fn sum(n, acc) {
  if (n <= 0) {
    return acc;
  }
  return sum((n - 1), ((acc + n) % 9973));
}

fn main(k) {
  return ((sum(50, k) + (2 + 3)) % 9973);
}
