fn main() {
  var a = (2 + 3);
  alloc((a * 16));
  retain(32);
  print((a + 7));
  release(8);
  return ((a * a) + (10 - 4));
}
