fn main(n) {
  var a = array(5);
  var s = 0;
  for (var i = 0; i < 8; i = i + 1) {
    if (i == 6) {
      break;
    }
    if ((i % 2) == 0) {
      continue;
    }
    a[(i % 5)] = (i * i);
    s = ((s + a[(i % 5)]) % 1009);
  }
  var j = 3;
  while (j > 0) {
    s = ((s + (j * n)) % 1009);
    j = (j - 1);
  }
  return s;
}
