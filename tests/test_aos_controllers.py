"""Unit tests for AOS controllers and the Rep profile repository."""

import pytest

from repro.aos import (
    AdaptiveController,
    PairPlanController,
    PairStrategy,
    ProfileRepository,
    RecompilePair,
)
from repro.vm import DEFAULT_CONFIG, Interpreter, JITCompiler, run_program


class TestAdaptiveController:
    def test_recompiles_hot_method(self, hot_program):
        interp = Interpreter(hot_program)
        controller = AdaptiveController(interp)
        profile = interp.run((2000,))
        assert profile.final_levels["kernel"] > -1
        assert controller.decisions
        assert any(m == "kernel" for m, _, _ in controller.decisions)

    def test_beats_baseline_on_hot_loop(self, hot_program):
        _, base = run_program(hot_program, args=(2000,))
        interp = Interpreter(hot_program)
        AdaptiveController(interp)
        adaptive = interp.run((2000,))
        assert adaptive.total_cycles < base.total_cycles

    def test_excluded_methods_untouched(self, hot_program):
        interp = Interpreter(hot_program)
        AdaptiveController(interp, exclude=frozenset({"kernel"}))
        profile = interp.run((2000,))
        assert profile.final_levels["kernel"] == -1

    def test_short_run_not_overcompiled(self, hot_program):
        interp = Interpreter(hot_program)
        AdaptiveController(interp)
        profile = interp.run((3,))
        # Too little work to justify any recompilation.
        assert all(level == -1 for level in profile.final_levels.values())


class TestPairPlanController:
    def test_plan_executed_at_thresholds(self, hot_program):
        strategy = PairStrategy({"kernel": (RecompilePair(2, 1),)})
        interp = Interpreter(hot_program)
        PairPlanController(interp, strategy)
        profile = interp.run((2000,))
        assert profile.final_levels["kernel"] == 1
        kernel_events = [
            e for e in profile.compile_events if e.method == "kernel"
        ]
        assert [e.level for e in kernel_events] == [-1, 1]

    def test_multi_pair_plan_staged(self, hot_program):
        strategy = PairStrategy(
            {"kernel": (RecompilePair(1, 0), RecompilePair(5, 2))}
        )
        interp = Interpreter(hot_program)
        PairPlanController(interp, strategy)
        profile = interp.run((2000,))
        kernel_levels = [
            e.level for e in profile.compile_events if e.method == "kernel"
        ]
        assert kernel_levels == [-1, 0, 2]

    def test_unplanned_methods_untouched(self, hot_program):
        strategy = PairStrategy({"kernel": (RecompilePair(1, 2),)})
        interp = Interpreter(hot_program)
        PairPlanController(interp, strategy)
        profile = interp.run((2000,))
        assert profile.final_levels["main"] == -1


class TestProfileRepository:
    @pytest.fixture
    def repo(self, hot_program):
        jit = JITCompiler(hot_program, DEFAULT_CONFIG)
        return ProfileRepository(jit, DEFAULT_CONFIG.sample_interval)

    def run_and_record(self, repo, hot_program, n, runs=1):
        for _ in range(runs):
            interp = Interpreter(hot_program, jit=repo.jit)
            AdaptiveController(interp)
            repo.record_run(interp.run((n,)))

    def test_empty_repository_has_empty_strategy(self, repo):
        assert len(repo.strategy()) == 0

    def test_hot_history_produces_plan(self, repo, hot_program):
        self.run_and_record(repo, hot_program, 2000, runs=3)
        strategy = repo.strategy()
        assert "kernel" in strategy.plans
        plan = strategy.plan_for("kernel")
        assert plan[-1].level >= 1

    def test_cold_history_produces_no_plan(self, repo, hot_program):
        self.run_and_record(repo, hot_program, 2, runs=3)
        assert repo.strategy().plan_for("kernel") == ()

    def test_strategy_cached_until_new_run(self, repo, hot_program):
        self.run_and_record(repo, hot_program, 2000)
        first = repo.strategy()
        assert repo.strategy() is first
        self.run_and_record(repo, hot_program, 2000)
        assert repo.strategy() is not first

    def test_history_backfills_missing_methods(self, repo, hot_program):
        self.run_and_record(repo, hot_program, 2000, runs=2)
        assert repo.run_count == 2
        for works in repo._history.values():
            assert len(works) == 2

    def test_plan_cost_decreases_with_useful_plan(self, repo, hot_program):
        """For a heavy workload, the planned cost must beat the no-plan cost."""
        self.run_and_record(repo, hot_program, 2000)
        work = repo._history["kernel"][-1]
        no_plan = repo._plan_cost("kernel", (), work)
        plan = (RecompilePair(1, 2),)
        assert repo._plan_cost("kernel", plan, work) < no_plan

    def test_plan_cost_short_run_prefers_no_plan(self, repo, hot_program):
        plan = (RecompilePair(1, 2),)
        tiny_work = 1000.0
        assert repo._plan_cost("kernel", plan, tiny_work) >= repo._plan_cost(
            "kernel", (), tiny_work
        )

    def test_repository_strategy_speeds_up_future_runs(self, repo, hot_program):
        self.run_and_record(repo, hot_program, 2000, runs=3)
        strategy = repo.strategy()
        interp = Interpreter(hot_program, jit=repo.jit)
        PairPlanController(interp, strategy)
        planned = interp.run((2000,))
        _, base = run_program(hot_program, args=(2000,))
        assert planned.total_cycles < base.total_cycles


class TestWorkHistogram:
    def test_small_histories_kept_exact(self):
        from repro.aos.repository import _histogram

        hist = _histogram([3.0, 1.0, 2.0], buckets=10)
        assert hist.values == (1.0, 2.0, 3.0)
        assert sum(hist.weights) == pytest.approx(1.0)

    def test_large_histories_bucketed(self):
        from repro.aos.repository import _histogram

        hist = _histogram([float(i) for i in range(100)], buckets=10)
        assert len(hist.values) <= 11
        assert sum(hist.weights) == pytest.approx(1.0)
        assert list(hist.values) == sorted(hist.values)

    def test_empty_history(self):
        from repro.aos.repository import _histogram

        hist = _histogram([], buckets=4)
        assert hist.values == ()
