"""Unit tests for the classification tree and dataset."""

import pytest

from repro.learning import (
    ClassificationTree,
    Dataset,
    TreeParams,
    entropy,
)
from repro.xicl import FeatureKind, FeatureVector


def vec(**features):
    v = FeatureVector()
    for name, value in features.items():
        v.append_value(name, value)
    return v


def grid_dataset():
    """Labels decided by x <= 5 over a numeric grid (pure signal)."""
    ds = Dataset()
    for x in range(11):
        for y in range(3):
            ds.add(vec(x=x, y=y), "low" if x <= 5 else "high")
    return ds


class TestEntropy:
    def test_pure_distribution_zero(self):
        assert entropy({"a": 10}) == 0.0

    def test_uniform_binary_is_one_bit(self):
        assert entropy({"a": 5, "b": 5}) == pytest.approx(1.0)

    def test_empty_distribution(self):
        assert entropy({}) == 0.0

    def test_skew_less_than_uniform(self):
        assert entropy({"a": 9, "b": 1}) < entropy({"a": 5, "b": 5})


class TestDataset:
    def test_columns_align_by_name(self):
        ds = Dataset()
        ds.add(vec(a=1, b=2), "x")
        ds.add(vec(b=5, a=4), "y")
        assert ds.columns == ("a", "b")
        assert ds.rows[1].values == (4, 5)

    def test_new_columns_widen_old_rows_with_none(self):
        ds = Dataset()
        ds.add(vec(a=1), "x")
        ds.add(vec(a=2, b=3), "y")
        assert ds.rows[0].values == (1, None)

    def test_missing_features_are_none(self):
        ds = Dataset()
        ds.add(vec(a=1, b=2), "x")
        ds.add(vec(a=3), "y")
        assert ds.rows[1].values == (3, None)

    def test_label_counts_and_majority(self):
        ds = Dataset()
        for label in ("a", "b", "a"):
            ds.add(vec(x=1), label)
        assert ds.label_counts() == {"a": 2, "b": 1}
        assert ds.majority_label() == "a"

    def test_majority_of_empty_rejected(self):
        with pytest.raises(ValueError):
            Dataset().majority_label()

    def test_subset_shares_columns(self):
        ds = grid_dataset()
        sub = ds.subset([0, 5, 10])
        assert sub.columns == ds.columns
        assert len(sub) == 3

    def test_kind_recorded(self):
        ds = Dataset()
        v = FeatureVector()
        v.append_value("num", 3)
        v.append_value("cat", "red")
        ds.add(v, "x")
        assert ds.kind_of("num") is FeatureKind.NUMERIC
        assert ds.kind_of("cat") is FeatureKind.CATEGORICAL


class TestTreeFitting:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            ClassificationTree().fit(Dataset())

    def test_learns_numeric_threshold(self):
        tree = ClassificationTree().fit(grid_dataset())
        assert tree.predict(vec(x=2, y=0)) == "low"
        assert tree.predict(vec(x=9, y=1)) == "high"
        assert tree.used_features() == ("x",)

    def test_learns_categorical_split(self):
        ds = Dataset()
        for color, label in [("red", 1), ("red", 1), ("blue", 2), ("green", 2)]:
            for _ in range(3):
                ds.add(vec(color=color), label)
        tree = ClassificationTree().fit(ds)
        assert tree.predict(vec(color="red")) == 1
        assert tree.predict(vec(color="blue")) == 2

    def test_irrelevant_features_excluded(self):
        # y carries no signal; automatic feature selection must drop it.
        tree = ClassificationTree().fit(grid_dataset())
        assert "y" not in tree.used_features()

    def test_pure_dataset_yields_leaf(self):
        ds = Dataset()
        for x in range(10):
            ds.add(vec(x=x), "only")
        tree = ClassificationTree().fit(ds)
        assert tree.root.is_leaf
        assert tree.depth() == 0

    def test_max_depth_respected(self):
        params = TreeParams(max_depth=1)
        ds = Dataset()
        # Requires depth 2 to separate fully (xor-ish pattern).
        for x in range(8):
            for y in range(8):
                ds.add(vec(x=x, y=y), (x <= 3) ^ (y <= 3))
        tree = ClassificationTree(params).fit(ds)
        assert tree.depth() <= 1

    def test_min_samples_split_respected(self):
        ds = grid_dataset()
        tree = ClassificationTree(TreeParams(min_samples_split=1000)).fit(ds)
        assert tree.root.is_leaf

    def test_missing_value_routes_to_larger_child(self):
        tree = ClassificationTree().fit(grid_dataset())
        # 18 'high' rows vs 15 'low' rows (x in 6..10 vs 0..5): predict must
        # not crash and must return one of the labels.
        assert tree.predict(vec(y=1)) in ("low", "high")

    def test_deterministic_fit(self):
        t1 = ClassificationTree().fit(grid_dataset())
        t2 = ClassificationTree().fit(grid_dataset())
        assert t1.render() == t2.render()

    def test_node_count_consistent_with_depth(self):
        tree = ClassificationTree().fit(grid_dataset())
        assert tree.node_count() >= 2 * tree.depth() + 1

    def test_render_mentions_split_feature(self):
        tree = ClassificationTree().fit(grid_dataset())
        assert "x <=" in tree.render()

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ValueError):
            ClassificationTree().predict(vec(x=1))
