"""Failure-mode tests for the fault-tolerant sweep engine.

The contract (docs/robustness.md): a raising cell is retried and the
retry is bit-identical to fault-free execution; a dying worker breaks
the pool but not the sweep (lost cells re-execute serially); a hanging
cell trips the per-cell timeout and is failed-but-reported; a sweep
never aborts because of a bad cell.
"""

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_sweep
from repro.experiments.telemetry import TelemetryLog, read_events, validate_event
from repro.resilience.faults import WorkerFaultPlan

RUNS = 6
SEED = 11
SCENARIOS = ("default", "evolve")


@pytest.fixture(scope="module")
def clean():
    return run_sweep(
        [get_benchmark("Search")],
        jobs=1, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
    )


def assert_identical(a, b):
    for scenario in SCENARIOS:
        xs, ys = getattr(a, scenario), getattr(b, scenario)
        assert len(xs) == len(ys), scenario
        for x, y in zip(xs, ys):
            assert x.result == y.result
            assert x.total_cycles == y.total_cycles
            assert x.profile.compile_cycles == y.profile.compile_cycles


class TestRaisingCell:
    def test_retry_recovers_bit_identical(self, clean):
        plan = WorkerFaultPlan(seed=0, forced=((0, "raise"), (1, "raise")))
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=1, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=1, backoff_s=0.0,
        )
        assert swept.cells_failed == 0
        assert swept.degradation.count(component="sweep", action="retry") == 2
        assert_identical(clean.results[0], swept.results[0])

    def test_exhausted_retries_fail_but_report(self, tmp_path):
        telemetry = TelemetryLog(tmp_path / "events.jsonl")
        plan = WorkerFaultPlan(seed=0, forced=((0, "raise"),))
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=1, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=0, backoff_s=0.0, telemetry=telemetry,
        )
        # The sweep completed; the bad cell is visible, not fatal.
        assert swept.cells_failed == 1
        assert len(swept.failures) == 1
        failure = swept.failures[0]
        assert failure.reason == "exception"
        assert failure.attempts == 1
        assert "injected" in failure.detail
        assert swept.degradation.count(
            component="sweep", action="cell-failed"
        ) == 1
        # The other cell still produced its outcomes.
        produced = sum(
            len(getattr(swept.results[0], s)) for s in SCENARIOS
        )
        assert produced == RUNS

        events = read_events(telemetry.path)
        failed = [e for e in events if e["event"] == "cell_failed"]
        assert len(failed) == 1
        assert failed[0]["reason"] == "exception"
        for event in events:
            validate_event(event)

    def test_random_raises_all_recovered(self, clean):
        # Every cell raises on its first attempt; retries cover all.
        plan = WorkerFaultPlan(seed=0, raise_rate=1.0)
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=1, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=1, backoff_s=0.0,
        )
        assert swept.cells_failed == 0
        assert_identical(clean.results[0], swept.results[0])


class TestDyingWorker:
    def test_broken_pool_recovers_serially(self, clean):
        # The worker for cell 0 dies hard (os._exit) — the pool breaks,
        # and every unresolved cell is re-executed serially.
        plan = WorkerFaultPlan(seed=0, forced=((0, "exit"),))
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=2, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=1, backoff_s=0.0,
        )
        assert swept.cells_failed == 0
        assert swept.degradation.count(
            component="sweep", action="serial-reexec"
        ) >= 1
        assert_identical(clean.results[0], swept.results[0])


class TestHangingCell:
    def test_timeout_fails_cell_but_not_sweep(self):
        plan = WorkerFaultPlan(seed=0, forced=((0, "hang"),), hang_s=20.0)
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=2, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=1, cell_timeout=1.0, backoff_s=0.0,
        )
        assert swept.cells_failed == 1
        failure = swept.failures[0]
        assert failure.reason == "timeout"
        assert "timeout" in failure.detail
        assert swept.degradation.count(
            component="sweep", action="timeout"
        ) == 1
        # The sweep itself returned promptly with the other cell's runs.
        assert swept.wall_s < 15.0

    def test_inline_hang_degrades_to_raise_and_retries(self, clean):
        # The serial phase cannot survive a real in-process hang or exit;
        # injected faults degrade to exceptions there, exercising retry.
        plan = WorkerFaultPlan(
            seed=0, forced=((0, "hang"), (1, "exit")), hang_s=20.0
        )
        swept = run_sweep(
            [get_benchmark("Search")],
            jobs=1, seed=SEED, runs=RUNS, scenarios=SCENARIOS,
            fault_plan=plan, retries=1, backoff_s=0.0,
        )
        assert swept.cells_failed == 0
        assert swept.wall_s < 15.0
        assert_identical(clean.results[0], swept.results[0])
