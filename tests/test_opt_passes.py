"""Unit tests for individual optimization passes."""

import pytest

from repro.lang import compile_source
from repro.vm import Instr, Method, Op, Program
from repro.vm.opt.context import PassContext
from repro.vm.opt.ir import CodeBuffer, basic_block_starts, reachable_pcs
from repro.vm.opt.passes import (
    constant_folding,
    dead_code_elimination,
    inline_calls,
    jump_threading,
    peephole,
)


def make_ctx(buf_method_code=None, program=None):
    """Build a PassContext around a trivial program/method."""
    if program is None:
        program = compile_source("fn main() { return 0; }")
    method = program.method(program.entry)
    return PassContext(program=program, method=method, num_locals=method.num_locals)


def ops(buf: CodeBuffer) -> list[Op]:
    return [ins.op for ins in buf.instrs]


class TestCodeBuffer:
    def test_compact_removes_nops_and_remaps_jumps(self):
        buf = CodeBuffer(
            [
                Instr(Op.JMP, 3),
                Instr(Op.NOP),
                Instr(Op.NOP),
                Instr(Op.CONST, 1),
                Instr(Op.RET),
            ]
        )
        removed = buf.compact()
        assert removed == 2
        assert ops(buf) == [Op.JMP, Op.CONST, Op.RET]
        assert buf[0].arg == 1

    def test_compact_jump_to_nop_follows_to_next_survivor(self):
        buf = CodeBuffer(
            [
                Instr(Op.JMP, 1),
                Instr(Op.NOP),
                Instr(Op.CONST, 7),
                Instr(Op.RET),
            ]
        )
        buf.compact()
        assert buf[0].arg == 1  # now points at CONST 7
        assert buf[1].op == Op.CONST

    def test_compact_noop_when_clean(self):
        buf = CodeBuffer([Instr(Op.CONST, 1), Instr(Op.RET)])
        assert buf.compact() == 0

    def test_jump_targets(self):
        buf = CodeBuffer([Instr(Op.JZ, 2), Instr(Op.CONST, 1), Instr(Op.RET)])
        assert buf.jump_targets() == {2}
        assert buf.is_jump_target(2)
        assert not buf.is_jump_target(1)

    def test_reachable_pcs_skips_dead_branch(self):
        code = [
            Instr(Op.JMP, 3),
            Instr(Op.CONST, 1),  # dead
            Instr(Op.RET),       # dead
            Instr(Op.CONST, 2),
            Instr(Op.RET),
        ]
        assert reachable_pcs(code) == {0, 3, 4}

    def test_basic_block_starts(self):
        code = [
            Instr(Op.CONST, 1),
            Instr(Op.JZ, 4),
            Instr(Op.CONST, 2),
            Instr(Op.RET),
            Instr(Op.CONST, 3),
            Instr(Op.RET),
        ]
        assert basic_block_starts(code) == [0, 2, 4]


class TestConstantFolding:
    def run_fold(self, instrs):
        buf = CodeBuffer(instrs)
        ctx = make_ctx()
        changed = constant_folding(buf, ctx)
        buf.compact()
        return changed, buf

    def test_binary_fold(self):
        changed, buf = self.run_fold(
            [Instr(Op.CONST, 6), Instr(Op.CONST, 7), Instr(Op.MUL), Instr(Op.RET)]
        )
        assert changed
        assert buf.instrs[0] == Instr(Op.CONST, 42)
        assert len(buf) == 2

    def test_division_by_zero_not_folded(self):
        changed, buf = self.run_fold(
            [Instr(Op.CONST, 1), Instr(Op.CONST, 0), Instr(Op.DIV), Instr(Op.RET)]
        )
        assert not changed
        assert ops(buf) == [Op.CONST, Op.CONST, Op.DIV, Op.RET]

    def test_unary_fold(self):
        changed, buf = self.run_fold(
            [Instr(Op.CONST, 5), Instr(Op.NEG), Instr(Op.RET)]
        )
        assert changed
        assert buf.instrs[0] == Instr(Op.CONST, -5)

    def test_branch_fold_taken(self):
        changed, buf = self.run_fold(
            [
                Instr(Op.CONST, 0),
                Instr(Op.JZ, 3),
                Instr(Op.RET),
                Instr(Op.CONST, 9),
                Instr(Op.RET),
            ]
        )
        assert changed
        assert buf.instrs[0].op == Op.JMP

    def test_branch_fold_not_taken(self):
        changed, buf = self.run_fold(
            [
                Instr(Op.CONST, 1),
                Instr(Op.JZ, 3),
                Instr(Op.CONST, 5),
                Instr(Op.RET),
            ]
        )
        assert changed
        assert ops(buf) == [Op.CONST, Op.RET]

    def test_jump_target_mid_pattern_blocks_fold(self):
        # pc=2 (the MUL) is a jump target: folding would corrupt the
        # incoming path's stack.
        buf = CodeBuffer(
            [
                Instr(Op.CONST, 6),
                Instr(Op.CONST, 7),
                Instr(Op.MUL),
                Instr(Op.JZ, 2),
                Instr(Op.RET),
            ]
        )
        changed = constant_folding(buf, make_ctx())
        assert not changed

    def test_comparison_folds(self):
        changed, buf = self.run_fold(
            [Instr(Op.CONST, 3), Instr(Op.CONST, 4), Instr(Op.LT), Instr(Op.RET)]
        )
        assert changed
        assert buf.instrs[0] == Instr(Op.CONST, 1)


class TestPeephole:
    def run_peep(self, instrs):
        buf = CodeBuffer(instrs)
        changed = peephole(buf, make_ctx())
        buf.compact()
        return changed, buf

    def test_add_zero_removed(self):
        changed, buf = self.run_peep(
            [Instr(Op.LOAD, 0), Instr(Op.CONST, 0), Instr(Op.ADD), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.LOAD, Op.RET]

    def test_mul_one_removed(self):
        changed, buf = self.run_peep(
            [Instr(Op.LOAD, 0), Instr(Op.CONST, 1), Instr(Op.MUL), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.LOAD, Op.RET]

    def test_mul_two_becomes_dup_add(self):
        changed, buf = self.run_peep(
            [Instr(Op.LOAD, 0), Instr(Op.CONST, 2), Instr(Op.MUL), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.LOAD, Op.DUP, Op.ADD, Op.RET]

    def test_duplicate_load_becomes_dup(self):
        changed, buf = self.run_peep(
            [Instr(Op.LOAD, 3), Instr(Op.LOAD, 3), Instr(Op.MUL), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.LOAD, Op.DUP, Op.MUL, Op.RET]

    def test_store_load_becomes_dup_store(self):
        changed, buf = self.run_peep(
            [Instr(Op.CONST, 1), Instr(Op.STORE, 0), Instr(Op.LOAD, 0), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.CONST, Op.DUP, Op.STORE, Op.RET]

    def test_jmp_to_next_removed(self):
        changed, buf = self.run_peep(
            [Instr(Op.JMP, 1), Instr(Op.CONST, 1), Instr(Op.RET)]
        )
        assert changed
        assert ops(buf) == [Op.CONST, Op.RET]

    def test_jump_target_blocks_window(self):
        # A jump lands on the LOAD of a STORE/LOAD pair; rewriting it to
        # DUP/STORE would corrupt the incoming path, so the window must
        # not fire.
        buf = CodeBuffer(
            [
                Instr(Op.CONST, 1),
                Instr(Op.STORE, 0),
                Instr(Op.LOAD, 0),   # jump target
                Instr(Op.JZ, 2),
                Instr(Op.RET),
            ]
        )
        changed = peephole(buf, make_ctx())
        assert not changed


class TestDeadCode:
    def test_unreachable_removed(self):
        buf = CodeBuffer(
            [
                Instr(Op.CONST, 1),
                Instr(Op.RET),
                Instr(Op.CONST, 99),  # unreachable
                Instr(Op.RET),
            ]
        )
        changed = dead_code_elimination(buf, make_ctx())
        buf.compact()
        assert changed
        assert len(buf) == 2

    def test_push_pop_cancelled(self):
        buf = CodeBuffer(
            [
                Instr(Op.LOAD, 0),
                Instr(Op.POP),
                Instr(Op.CONST, 1),
                Instr(Op.RET),
            ]
        )
        changed = dead_code_elimination(buf, make_ctx())
        buf.compact()
        assert changed
        assert ops(buf) == [Op.CONST, Op.RET]

    def test_call_pop_not_cancelled(self):
        # A call may have side effects; its POP must stay.
        buf = CodeBuffer(
            [
                Instr(Op.CALL, ("main", 0)),
                Instr(Op.POP),
                Instr(Op.CONST, 1),
                Instr(Op.RET),
            ]
        )
        changed = dead_code_elimination(buf, make_ctx())
        assert not changed


class TestJumpThreading:
    def test_chain_collapsed(self):
        buf = CodeBuffer(
            [
                Instr(Op.JZ, 2),
                Instr(Op.RET),
                Instr(Op.JMP, 4),
                Instr(Op.RET),
                Instr(Op.CONST, 1),
                Instr(Op.RET),
            ]
        )
        changed = jump_threading(buf, make_ctx())
        assert changed
        assert buf[0].arg == 4

    def test_jmp_cycle_left_alone(self):
        buf = CodeBuffer([Instr(Op.JMP, 0), Instr(Op.RET)])
        changed = jump_threading(buf, make_ctx())
        assert not changed


class TestInlining:
    def make_program(self):
        return compile_source(
            """
            fn add1(x) { return x + 1; }
            fn big(x) {
              var s = x;
              for (var i = 0; i < 10; i = i + 1) { s = s + i * i + x; }
              return s;
            }
            fn caller(x) { return add1(x) + add1(x); }
            fn main() { return caller(5); }
            """,
            entry="main",
        )

    def test_small_leaf_inlined(self):
        program = self.make_program()
        method = program.method("caller")
        buf = CodeBuffer(method.code)
        ctx = PassContext(program=program, method=method, num_locals=method.num_locals)
        changed = inline_calls(buf, ctx)
        assert changed
        assert all(ins.op != Op.CALL for ins in buf.instrs)
        assert ctx.num_locals > method.num_locals

    def test_inlined_code_preserves_semantics(self):
        from repro.vm import JITCompiler, DEFAULT_CONFIG, Interpreter

        program = self.make_program()
        plain = Interpreter(program)
        plain.run(())
        opt = Interpreter(program, first_invocation_hook=lambda m: 2)
        opt.run(())
        assert plain.result == opt.result == 12

    def test_size_limit_respected(self):
        program = self.make_program()
        method = program.method("caller")
        buf = CodeBuffer(method.code)
        ctx = PassContext(
            program=program,
            method=method,
            num_locals=method.num_locals,
            inline_size_limit=1,
        )
        assert not inline_calls(buf, ctx)

    def test_self_recursion_not_inlined(self):
        program = compile_source(
            "fn main(n) { if (n <= 0) { return 0; } return main(n - 1); }"
        )
        method = program.method("main")
        buf = CodeBuffer(method.code)
        ctx = PassContext(program=program, method=method, num_locals=method.num_locals)
        assert not inline_calls(buf, ctx)

    def test_budget_respected(self):
        program = self.make_program()
        method = program.method("caller")
        buf = CodeBuffer(method.code)
        ctx = PassContext(
            program=program,
            method=method,
            num_locals=method.num_locals,
            inline_budget=0,
        )
        assert not inline_calls(buf, ctx)
