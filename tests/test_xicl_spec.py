"""Unit tests for XICL spec model and parser."""

import pytest

from repro.xicl import (
    ComponentType,
    OperandSpec,
    OptionSpec,
    SpecSyntaxError,
    SpecValidationError,
    XICLSpec,
    parse_spec,
)

ROUTE_SPEC = """
# the paper's Figure 2 example
option  {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}
option  {name=-e:--echo; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=FILE; attr=mNodes:mEdges}
"""


class TestSpecModel:
    def test_option_requires_dash_prefix(self):
        with pytest.raises(SpecValidationError):
            OptionSpec(names=("n",), type=ComponentType.NUM)

    def test_option_requires_name(self):
        with pytest.raises(SpecValidationError):
            OptionSpec(names=(), type=ComponentType.NUM)

    def test_bin_option_must_not_take_argument(self):
        with pytest.raises(SpecValidationError):
            OptionSpec(names=("-e",), type=ComponentType.BIN, has_arg=True)

    def test_option_aliases_match(self):
        opt = OptionSpec(
            names=("-e", "--echo"), type=ComponentType.BIN, has_arg=False
        )
        assert opt.matches("-e")
        assert opt.matches("--echo")
        assert not opt.matches("-x")
        assert opt.canonical == "-e"

    def test_operand_position_validation(self):
        with pytest.raises(SpecValidationError):
            OperandSpec(position=(0, 1), type=ComponentType.NUM)
        with pytest.raises(SpecValidationError):
            OperandSpec(position=(3, 2), type=ComponentType.NUM)

    def test_operand_covers_range(self):
        spec = OperandSpec(position=(2, "$"), type=ComponentType.FILE)
        assert not spec.covers(1, 4)
        assert spec.covers(2, 4)
        assert spec.covers(4, 4)

    def test_duplicate_option_names_rejected(self):
        a = OptionSpec(names=("-n",), type=ComponentType.NUM)
        b = OptionSpec(names=("-n",), type=ComponentType.STR)
        with pytest.raises(SpecValidationError, match="duplicate"):
            XICLSpec(options=(a, b))


class TestSpecParser:
    def test_parses_paper_example(self):
        spec = parse_spec(ROUTE_SPEC, application="route")
        assert len(spec.options) == 2
        assert len(spec.operands) == 1
        n_opt = spec.option_for("-n")
        assert n_opt.type is ComponentType.NUM
        assert n_opt.default == "1"
        assert n_opt.has_arg
        echo = spec.option_for("--echo")
        assert echo is spec.option_for("-e")
        assert not echo.has_arg
        operand = spec.operands[0]
        assert operand.position == (1, "$")
        assert operand.attrs == ("mNodes", "mEdges")

    def test_comments_ignored(self):
        spec = parse_spec("# nothing but comments\n# more\n")
        assert len(spec.options) == 0

    def test_single_position(self):
        spec = parse_spec("operand {position=2; type=NUM; attr=VAL}")
        assert spec.operands[0].position == (2, 2)

    def test_has_arg_defaults_by_type(self):
        spec = parse_spec(
            "option {name=-a; type=NUM; attr=VAL}\n"
            "option {name=-b; type=BIN; attr=VAL}"
        )
        assert spec.option_for("-a").has_arg
        assert not spec.option_for("-b").has_arg

    def test_unknown_field_rejected(self):
        with pytest.raises(SpecSyntaxError, match="unknown field"):
            parse_spec("option {name=-a; wtf=1}")

    def test_unknown_type_rejected(self):
        with pytest.raises(SpecSyntaxError, match="unknown type"):
            parse_spec("option {name=-a; type=banana}")

    def test_malformed_field_rejected(self):
        with pytest.raises(SpecSyntaxError, match="malformed"):
            parse_spec("option {name}")

    def test_duplicate_field_rejected(self):
        with pytest.raises(SpecSyntaxError, match="duplicate field"):
            parse_spec("option {name=-a; name=-b}")

    def test_option_without_name_rejected(self):
        with pytest.raises(SpecSyntaxError, match="requires a name"):
            parse_spec("option {type=NUM}")

    def test_operand_without_position_rejected(self):
        with pytest.raises(SpecSyntaxError, match="requires a position"):
            parse_spec("operand {type=NUM}")

    def test_bad_position_rejected(self):
        with pytest.raises(SpecSyntaxError, match="bad position"):
            parse_spec("operand {position=x; type=NUM}")

    def test_residual_text_rejected(self):
        with pytest.raises(SpecSyntaxError, match="unrecognized"):
            parse_spec("option {name=-a; type=NUM}\ngarbage here")

    def test_bad_bool_rejected(self):
        with pytest.raises(SpecSyntaxError, match="y/n"):
            parse_spec("option {name=-a; type=NUM; has_arg=maybe}")

    def test_error_reports_line(self):
        with pytest.raises(SpecSyntaxError) as err:
            parse_spec("# line 1\n# line 2\noption {name=-a; bogus=1}")
        assert err.value.line == 3

    def test_all_attrs_union(self):
        spec = parse_spec(ROUTE_SPEC)
        assert set(spec.all_attrs()) == {"VAL", "mNodes", "mEdges"}
