"""Tests for self-recursive tail-call elimination."""

import math

import pytest

from repro.lang import compile_source
from repro.vm import (
    DEFAULT_CONFIG,
    Instr,
    Interpreter,
    JITCompiler,
    Op,
    StackOverflowError,
    run_program,
)
from repro.vm.opt.context import PassContext
from repro.vm.opt.ir import CodeBuffer
from repro.vm.opt.passes import eliminate_tail_calls

TAIL_FACT = """
fn fact(n, acc) { if (n <= 1) { return acc; } return fact(n - 1, acc * n); }
fn main() { return fact(400, 1); }
"""

NON_TAIL_FACT = """
fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
fn main() { return fact(10); }
"""


def run_pass(program, method_name):
    method = program.method(method_name)
    buf = CodeBuffer(method.code)
    ctx = PassContext(program=program, method=method, num_locals=method.num_locals)
    changed = eliminate_tail_calls(buf, ctx)
    buf.compact()
    return changed, buf, ctx


class TestDetection:
    def test_tail_call_rewritten(self):
        program = compile_source(TAIL_FACT)
        changed, buf, ctx = run_pass(program, "fact")
        assert changed
        assert all(ins.op != Op.CALL for ins in buf.instrs)
        assert ctx.stats["tail_call"] == 1

    def test_non_tail_call_untouched(self):
        # n * fact(n-1): the MUL after the call means live operands sit
        # below the argument — depth at CALL is 2, not 1.
        program = compile_source(NON_TAIL_FACT)
        changed, buf, __ = run_pass(program, "fact")
        assert not changed
        assert any(ins.op == Op.CALL for ins in buf.instrs)

    def test_call_to_other_method_untouched(self):
        program = compile_source(
            "fn g(x) { return x; } fn f(x) { return g(x); }"
            "fn main() { return f(1); }"
        )
        changed, __, __ = run_pass(program, "f")
        assert not changed


class TestSemantics:
    def test_deep_recursion_overflows_at_baseline(self):
        program = compile_source(TAIL_FACT)
        with pytest.raises(StackOverflowError):
            run_program(program)

    def test_level2_eliminates_overflow_and_matches_oracle(self):
        program = compile_source(TAIL_FACT)
        interp = Interpreter(program, first_invocation_hook=lambda m: 2)
        interp.run(())
        assert interp.result == math.factorial(400)

    def test_results_identical_small_depths(self):
        source = """
        fn count(n, acc) { if (n == 0) { return acc; } return count(n - 1, acc + n); }
        fn main() { return count(100, 0); }
        """
        program = compile_source(source)
        base, _ = run_program(program)
        interp = Interpreter(program, first_invocation_hook=lambda m: 2)
        interp.run(())
        assert interp.result == base == 5050

    def test_tail_call_with_branchy_body(self):
        source = """
        fn collatz(n, steps) {
          if (n == 1) { return steps; }
          if (n % 2 == 0) { return collatz(n / 2, steps + 1); }
          return collatz(3 * n + 1, steps + 1);
        }
        fn main() { return collatz(27, 0); }
        """
        program = compile_source(source)
        base, _ = run_program(program)
        assert base == 111
        changed, __, ctx = run_pass(program, "collatz")
        assert changed
        assert ctx.stats["tail_call"] == 2
        interp = Interpreter(program, first_invocation_hook=lambda m: 2)
        interp.run(())
        assert interp.result == 111

    def test_zero_arg_tail_call(self):
        # Degenerate but legal: an infinite self-loop via tail call would
        # hang; use a global-ish countdown through a parameterless chain
        # that terminates via randomness is unsafe — instead verify the
        # rewrite shape on hand-built code.
        from repro.vm import Method, Program

        code = (
            Instr(Op.CONST, 1),
            Instr(Op.JZ, 3),
            Instr(Op.RET),        # returns the 1? no — JZ consumed it
            Instr(Op.CALL, ("loop", 0)),
            Instr(Op.RET),
        )
        # pc2 RET underflows; build a correct variant instead:
        code = (
            Instr(Op.CONST, 1),   # depth 1
            Instr(Op.JNZ, 4),     # taken: depth 0
            Instr(Op.CALL, ("loop", 0)),
            Instr(Op.RET),
            Instr(Op.CONST, 9),
            Instr(Op.RET),
        )
        loop = Method(name="loop", num_params=0, num_locals=0, code=code)
        program = Program([loop], entry="loop")
        changed, buf, __ = run_pass(program, "loop")
        assert changed
        assert any(ins.op == Op.JMP and ins.arg == 0 for ins in buf.instrs)


class TestPerformance:
    def test_tco_reduces_cycles(self):
        source = """
        fn spin(n, acc) {
          if (n == 0) { return acc; }
          return spin(n - 1, acc + 1);
        }
        fn main() { return spin(200, 0); }
        """
        program = compile_source(source)
        jit = JITCompiler(program, DEFAULT_CONFIG)
        level0 = jit.compile("spin", 0)
        level2 = jit.compile("spin", 2)
        assert "tail_call" in level2.pass_stats
        # CALL (12 cycles) + RET (4) replaced by 2 STOREs + JMP (3 cycles)
        # per iteration; with dispatch gains the win is strict.
        base = Interpreter(program)
        base.run(())
        fast = Interpreter(program, first_invocation_hook=lambda m: 2)
        fast.run(())
        assert fast.profile.execution_cycles < base.profile.execution_cycles * 0.5
