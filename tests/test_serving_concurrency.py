"""Concurrency soundness for the serving fleet (docs/serving.md).

Three contracts, each the reason the ISSUE's serving layer is trustworthy:

1. **Bit-identity** — N tenants served concurrently produce, per tenant,
   exactly the outcome stream a serial replay of the same requests
   produces. Concurrency may only change wall-clock, never results.
2. **Atomic hot swap** — predictions racing a ``refit_all`` always see a
   complete model generation: either wholly-old or wholly-new, never a
   half-swapped forest.
3. **Backpressure** — the bounded per-tenant queue admits exactly its
   bound under flood; everything else is shed with a machine-readable
   429 and counted, and accepted work still completes correctly.
"""

import asyncio
import threading

import pytest

from repro.experiments.server_study import (
    build_tenant_apps,
    generate_fleet_requests,
    run_fleet_study,
)
from repro.serving import FleetServer, ModelRegistry, Tenant, build_fleet
from repro.vm import Interpreter

pytestmark = pytest.mark.serve

TRAIN = ["-m 1 -n 50", "-m 2 -n 1200", "-m 1 -n 1200", "-m 2 -n 50",
         "-m 1 -n 50", "-m 2 -n 1200"]


class TestBitIdentity:
    def test_concurrent_fleet_matches_serial_replay(self):
        result = run_fleet_study(
            seed=0, requests=120, tenants=3, refit_interval=10
        )
        assert result.identical_to_serial, result.mismatches[:5]
        assert result.swaps > 0          # hot swaps happened under load
        assert result.sheds > 0          # the overload burst shed traffic
        assert result.batches >= 1       # predict batching engaged
        assert result.burst_accepted + result.sheds == result.burst_submitted

    def test_request_stream_is_deterministic(self):
        first = generate_fleet_requests(7, 60, 3)
        second = generate_fleet_requests(7, 60, 3)
        assert first == second
        assert generate_fleet_requests(8, 60, 3) != first
        names = {app.name for app in build_tenant_apps(3)}
        assert {request["app"] for request in first} <= names


class TestHotSwapUnderLoad:
    def test_predictions_never_see_half_swapped_model(self, toy_app):
        registry = ModelRegistry(None)
        tenant = Tenant(toy_app, registry=registry, refit_interval=None)
        for i, cmd in enumerate(TRAIN):
            tenant.run(cmd, seed=i)
        tenant.swap()
        tokens = toy_app.split_cmdline(TRAIN[1])
        fvector = tenant.vm.translator.build_fvector(tokens)

        def snapshot():
            return tuple(sorted(
                (m, int(lbl))
                for m, lbl in tenant.vm.models.predict_all(fvector).items()
            ))

        generations = {snapshot()}
        observed = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                observed.append(snapshot())

        readers = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            seed = len(TRAIN)
            for _ in range(6):  # six swaps while readers race the flip
                for cmd in TRAIN:
                    tenant.run(cmd, seed=seed)
                    seed += 1
                tenant.swap()
                generations.add(snapshot())
        finally:
            stop.set()
            for thread in readers:
                thread.join()

        assert len(observed) > 50  # readers really raced the swaps
        torn = [s for s in observed if s not in generations]
        assert torn == []  # every read = one complete generation


class TestStaleClosures:
    """Regression: recompilation after a hot model swap (or any artifact
    round-trip through the shared JIT cache) must discard stale generated
    closures. ``CompiledCode.__getstate__`` strips the ``_closure*``
    memos, so a swapped-in artifact always rebuilds its function from
    (separately cached) source — it can never resurrect a function
    object generated before the invalidation."""

    def test_cache_roundtrip_discards_generated_closures(self, tmp_path):
        from repro.lang import compile_source
        from repro.vm import DEFAULT_CONFIG, JITCompiler
        from repro.vm.closures import ensure_closure
        from repro.vm.opt.artifact_cache import JITArtifactCache

        program = compile_source("fn main(n) { return n * 2 + 1; }")
        cache = JITArtifactCache(str(tmp_path))
        jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
        compiled = jit.compile("main", 2)
        fn = ensure_closure(compiled, program, cache)
        assert compiled.__dict__["_closure"] is fn

        # Simulate the post-swap tenant: the in-memory layer is gone
        # (fresh process / invalidation), only the disk envelope remains.
        key = jit._artifact_key("main", 2)
        cache._memory.clear()
        swapped = cache.get(key)
        assert swapped is not None and swapped is not compiled
        assert "_closure" not in swapped.__dict__
        assert "_closure_src" not in swapped.__dict__
        assert "_closure_unsupported" not in swapped.__dict__
        # The rebuilt closure is a fresh function over the same (cached)
        # source, and it still executes correctly.
        rebuilt = ensure_closure(swapped, program, cache)
        assert rebuilt is not fn
        assert (
            swapped.__dict__["_closure_src"]
            == compiled.__dict__["_closure_src"]
        )
        interp = Interpreter(program, engine="compiled")
        interp.run((20,))
        assert interp.result == 41

    def test_swapped_tenant_runs_bit_identical(self, toy_app, tmp_path):
        # End to end: two tenant generations sharing one disk-backed JIT
        # cache (the hot-swap topology) must produce identical outcomes
        # whichever engine the resident VM is configured with.
        def stream(engine):
            registry = ModelRegistry(None)
            tenant = Tenant(
                toy_app,
                registry=registry,
                refit_interval=None,
                engine=engine,
            )
            payloads = []
            for i, cmd in enumerate(TRAIN):
                payloads.append(tenant.run(cmd, seed=i))
            tenant.swap()
            for i, cmd in enumerate(TRAIN):
                payloads.append(tenant.run(cmd, seed=len(TRAIN) + i))
            return payloads

        auto = stream("auto")
        compiled = stream("compiled")
        reference = stream("reference")
        assert auto == compiled == reference


class TestBackpressure:
    def test_queue_bound_respected_and_sheds_counted(self, toy_app):
        bound, flood = 2, 10

        async def scenario():
            registry = ModelRegistry(None)
            server = FleetServer(
                build_fleet([toy_app], registry=registry,
                            refit_interval=None),
                registry,
                queue_bound=bound,
            )
            await server.start()
            # Flood without yielding: workers cannot drain mid-burst, so
            # admission is exactly the queue bound, deterministically.
            futures = [
                server.submit_nowait({
                    "op": "run", "app": "toy",
                    "cmdline": TRAIN[i % len(TRAIN)], "seed": i,
                })
                for i in range(flood)
            ]
            responses = await asyncio.gather(*futures)
            await server.stop(persist=False)
            return server, responses

        server, responses = asyncio.run(scenario())
        statuses = [response["status"] for response in responses]
        assert statuses.count(200) == bound
        assert statuses.count(429) == flood - bound
        # Sheds are immediate and machine-readable.
        shed = next(r for r in responses if r["status"] == 429)
        assert shed["queue_bound"] == bound
        assert shed["queue_depth"] == bound
        assert server.stats.shed == flood - bound
        assert server.stats.accepted == bound
        assert server.stats.served == bound
        # Accepted work completed normally despite the overload.
        for response in responses:
            if response["status"] == 200:
                assert "result" in response

    def test_sheds_never_touch_tenant_state(self, toy_app):
        """A serial replay of only the *accepted* requests matches —
        shedding is invisible to the learner."""
        bound = 2

        async def scenario():
            registry = ModelRegistry(None)
            server = FleetServer(
                build_fleet([toy_app], registry=registry,
                            refit_interval=None),
                registry,
                queue_bound=bound,
            )
            await server.start()
            futures = [
                server.submit_nowait({
                    "op": "run", "app": "toy",
                    "cmdline": TRAIN[i % len(TRAIN)], "seed": i,
                })
                for i in range(6)
            ]
            responses = await asyncio.gather(*futures)
            await server.stop(persist=False)
            return responses

        responses = asyncio.run(scenario())
        accepted = [
            (i, response) for i, response in enumerate(responses)
            if response["status"] == 200
        ]
        # Serial twin runs just the accepted prefix.
        twin = Tenant(toy_app, registry=ModelRegistry(None),
                      refit_interval=None)
        for i, response in accepted:
            expected = twin.run(TRAIN[i % len(TRAIN)], seed=i)
            got = {k: v for k, v in response.items()
                   if k in expected}
            assert got == expected
