"""Tests for the differential executor and the end-to-end fuzz loop.

The acceptance test at the bottom breaks an optimization pass on purpose
and requires the harness to catch the miscompile and shrink it to a
minimal reproducer — the whole point of the subsystem.
"""

import pytest

from repro.lang import compile_source
from repro.testing import (
    REFERENCE,
    default_variants,
    execute_variant,
    generate,
    load_corpus,
    replay_corpus,
    run_differential,
    run_fuzz,
)
from repro.vm.opt.passes.constant_folding import _FOLDERS
from repro.vm.program import Op


class TestVariantMatrix:
    def test_default_variants_cover_levels_and_passes(self):
        names = [v.name for v in default_variants()]
        assert names[:3] == ["L0", "L1", "L2"]
        assert "pass:constant_folding" in names
        assert "pass:tail_call" in names
        assert "pass:dce" in names
        assert len(names) == 9

    def test_outcome_tracks_output_and_heap(self):
        source = """
        fn main() {
          print(3);
          alloc(64);
          print(max(7, 2));
          return 0;
        }
        """
        program = compile_source(source, name="obs")
        reference = execute_variant(program, (), REFERENCE)
        assert reference.kind == "ok"
        assert len(reference.output) == 2
        assert reference.heap[1] >= 1  # allocation_count
        for variant in default_variants():
            assert execute_variant(program, (), variant) == reference

    def test_faulting_program_faults_identically_everywhere(self):
        # Constant folding deliberately leaves div-by-zero unfolded so
        # the fault stays a runtime fault under every configuration.
        program = compile_source("fn main() { return 1 / 0; }", name="div0")
        report = run_differential(program, ())
        assert report.reference.kind == "error"
        assert not report.divergences


class TestGeneratedBatchInvariant:
    def test_zero_divergences_across_batch(self):
        for i in range(30):
            case = generate(1, i)
            program = compile_source(case.source, name=f"d{i}")
            report = run_differential(program, case.args)
            assert not report.skipped, i
            assert not report.divergences, (
                i,
                [d.describe() for d in report.divergences],
            )


class TestBrokenPassAcceptance:
    """ISSUE acceptance: an intentionally-broken pass must be caught and
    minimized to a reproducer of at most 10 instructions."""

    @pytest.fixture
    def broken_sub(self, monkeypatch):
        monkeypatch.setitem(_FOLDERS, Op.SUB, lambda a, b: a - b + 1)

    def test_broken_fold_caught_and_minimized(self, broken_sub, tmp_path):
        report = run_fuzz(
            seed=0,
            iterations=20,
            jobs=1,  # inline: the monkeypatch must stay visible
            corpus_dir=str(tmp_path),
        )
        assert not report.ok
        finding = report.findings[0]
        assert "pass:constant_folding" in finding.divergent
        assert finding.instructions <= 10
        assert finding.reproducer is not None
        entries = load_corpus(tmp_path)
        assert entries and entries[0].meta["seed"] == 0

    def test_corpus_replays_clean_after_fix(self, tmp_path):
        with pytest.MonkeyPatch.context() as mp:
            mp.setitem(_FOLDERS, Op.SUB, lambda a, b: a - b + 1)
            report = run_fuzz(
                seed=0, iterations=20, jobs=1, corpus_dir=str(tmp_path)
            )
            assert report.findings
        # Patch undone — the "fix" landed; the stored reproducer must now
        # pass the whole matrix, which is exactly what tier-1 replay does.
        for entry, replay in replay_corpus(tmp_path):
            assert not replay.divergences, entry.name


class TestFuzzDriver:
    def test_clean_campaign_reports_ok(self):
        report = run_fuzz(seed=3, iterations=10, jobs=1)
        assert report.ok
        assert report.checked == 10
        assert "10/10" in report.describe()

    def test_time_budget_stops_early(self):
        report = run_fuzz(seed=0, iterations=500, jobs=1, time_budget=0.0)
        assert report.checked < 500
