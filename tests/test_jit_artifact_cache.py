"""Unit tests for the cross-run JIT artifact cache."""

import pickle

import pytest

from repro.lang import compile_source
from repro.vm import DEFAULT_CONFIG, Interpreter, JITArtifactCache, JITCompiler, VMConfig
from repro.vm.opt.artifact_cache import artifact_key, method_digest, program_digest

SRC = """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) { total = total + helper(i); i = i + 1; }
  return total;
}
fn helper(x) { return x * 2 + 1; }
"""

#: Same `main` bytecode as SRC, but `helper` differs — inlining pulls the
#: callee body into `main`, so artifacts must NOT be shared between the two.
SRC_OTHER_CALLEE = SRC.replace("x * 2 + 1", "x * 3 - 1")


@pytest.fixture
def program():
    return compile_source(SRC)


def test_memory_hit_and_miss_accounting(program):
    cache = JITArtifactCache()
    jit_a = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    first = jit_a.compile("main", 2)
    assert cache.stats()["misses"] == 1

    # A different compiler instance (a new "run") hits the shared cache.
    jit_b = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    second = jit_b.compile("main", 2)
    assert second is first
    assert cache.stats()["hits"] == 1

    # The per-run memo absorbs repeat compiles; cache stats don't move.
    jit_b.compile("main", 2)
    assert cache.stats()["hits"] == 1


def test_levels_get_distinct_entries(program):
    cache = JITArtifactCache()
    jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    assert jit.compile("main", 1).level == 1
    assert jit.compile("main", 2).level == 2
    assert cache.stats()["entries"] == 2


def test_config_digest_invalidates(program):
    cache = JITArtifactCache()
    JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache).compile("main", 2)
    other_config = VMConfig(sample_interval=DEFAULT_CONFIG.sample_interval * 2)
    JITCompiler(program, other_config, artifact_cache=cache).compile("main", 2)
    # Different config → different key → no cross-config sharing.
    assert cache.stats()["hits"] == 0
    assert cache.stats()["misses"] == 2


def test_tier_passes_invalidate(program):
    from repro.vm.opt.passes import peephole

    cache = JITArtifactCache()
    full = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    full.compile("main", 2)
    single = JITCompiler(
        program, DEFAULT_CONFIG, tier_passes={2: (peephole,)}, artifact_cache=cache
    )
    single.compile("main", 2)
    assert cache.stats()["hits"] == 0


def test_program_context_prevents_inlining_confusion():
    # `main` is byte-identical in both programs, but its callee differs;
    # a per-method digest alone would unsoundly share the inlined artifact.
    prog_a = compile_source(SRC)
    prog_b = compile_source(SRC_OTHER_CALLEE)
    assert method_digest(prog_a.method("main")) == method_digest(
        prog_b.method("main")
    )
    assert program_digest(prog_a) != program_digest(prog_b)

    cache = JITArtifactCache()
    a = JITCompiler(prog_a, DEFAULT_CONFIG, artifact_cache=cache).compile("main", 2)
    b = JITCompiler(prog_b, DEFAULT_CONFIG, artifact_cache=cache).compile("main", 2)
    assert cache.stats()["hits"] == 0
    assert a.code != b.code


def test_compile_cycles_charged_identically_on_hit(program):
    cache = JITArtifactCache()

    def run(level):
        jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
        interp = Interpreter(
            program, jit=jit, first_invocation_hook=lambda name: level
        )
        profile = interp.run((50,))
        return (
            profile.total_cycles,
            profile.compile_cycles,
            tuple(
                (e.method, e.level, e.cycles, e.at_clock)
                for e in profile.compile_events
            ),
        )

    cold = run(2)
    assert cache.stats()["misses"] > 0
    warm = run(2)
    assert cache.stats()["hits"] > 0
    # Bit-identical clocks and compile events whether artifacts were
    # compiled fresh or pulled from the cache.
    assert cold == warm


def test_disk_roundtrip(tmp_path, program):
    dir_ = tmp_path / "jit"
    cache_a = JITArtifactCache(dir_)
    first = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache_a).compile(
        "main", 2
    )
    # A brand-new cache (fresh process, same directory) hits via disk.
    cache_b = JITArtifactCache(dir_)
    second = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache_b).compile(
        "main", 2
    )
    assert cache_b.stats()["disk_hits"] == 1
    assert second is not first
    assert second == first
    assert second.compile_cycles == first.compile_cycles
    assert second.speed_factor == first.speed_factor


def test_disk_corruption_is_a_miss(tmp_path, program):
    dir_ = tmp_path / "jit"
    cache = JITArtifactCache(dir_)
    jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    compiled = jit.compile("main", 2)
    key = jit._artifact_key("main", 2)
    (dir_ / f"{key}.pkl").write_bytes(b"not a pickle")
    fresh = JITArtifactCache(dir_)
    assert fresh.get(key) is None
    assert fresh.stats()["misses"] == 1
    # And a recompile through the fresh cache still works.
    recompiled = JITCompiler(
        program, DEFAULT_CONFIG, artifact_cache=fresh
    ).compile("main", 2)
    assert recompiled == compiled


def test_artifact_key_is_order_sensitive():
    key_a = artifact_key("m", "p", 2, "c", ("peephole", "dce"))
    key_b = artifact_key("m", "p", 2, "c", ("dce", "peephole"))
    assert key_a != key_b


def test_sweep_cell_identical_with_cache_on_and_off(tmp_path):
    # Acceptance criterion: a Table I sweep cell's virtual-cycle results
    # are bit-identical with the JIT artifact cache off, cold, and warm.
    from repro.bench import get_benchmark
    from repro.experiments.parallel import (
        _ARTIFACT_CACHES,
        CellSpec,
        derive_sequence,
        execute_cell,
    )

    bench = get_benchmark("Compress")
    sequence = tuple(derive_sequence(bench, seed=0, n_runs=3))
    jit_dir = str(tmp_path / "jit")

    def run_cell(cache_dir):
        spec = CellSpec(
            benchmark=bench.name,
            scenarios=("default", "rep"),
            start=0,
            stop=3,
            seed=0,
            sequence=sequence,
            config=DEFAULT_CONFIG,
            gamma=None,
            threshold=None,
            tree_params=None,
            jit_cache_dir=cache_dir,
        )
        payload = execute_cell(spec)
        return {
            scenario: [
                (
                    outcome.profile.total_cycles,
                    outcome.profile.compile_cycles,
                    tuple(sorted(outcome.profile.samples.items())),
                )
                for outcome in outcomes
            ]
            for scenario, outcomes in payload["outcomes"].items()
        }

    off = run_cell(None)
    cold = run_cell(jit_dir)
    _ARTIFACT_CACHES.pop(jit_dir, None)  # simulate a fresh worker process
    warm = run_cell(jit_dir)
    stats = _ARTIFACT_CACHES.pop(jit_dir).stats()
    assert stats["disk_hits"] > 0
    assert off == cold == warm


def test_cell_cache_key_ignores_jit_cache_dir(tmp_path):
    # Artifact reuse never changes results, so it must not invalidate the
    # sweep's result cache.
    from repro.bench import get_benchmark
    from repro.experiments.parallel import CellSpec, derive_sequence

    bench = get_benchmark("Compress")
    sequence = tuple(derive_sequence(bench, seed=0, n_runs=2))

    def key(cache_dir):
        return CellSpec(
            benchmark=bench.name,
            scenarios=("default",),
            start=0,
            stop=2,
            seed=0,
            sequence=sequence,
            config=DEFAULT_CONFIG,
            gamma=None,
            threshold=None,
            tree_params=None,
            jit_cache_dir=cache_dir,
        ).cache_key()

    assert key(None) == key(str(tmp_path / "jit"))


def test_cached_artifact_pickles_without_decode_memo(tmp_path, program):
    from repro.vm.fastpath import ensure_decoded

    dir_ = tmp_path / "jit"
    cache = JITArtifactCache(dir_)
    jit = JITCompiler(program, DEFAULT_CONFIG, artifact_cache=cache)
    compiled = jit.compile("main", 2)
    ensure_decoded(compiled)  # attach the memo...
    key = jit._artifact_key("main", 2)
    # ...then force a fresh disk write and reload.
    raw = pickle.dumps(compiled)
    clone = pickle.loads(raw)
    assert "_decoded" not in clone.__dict__
    assert JITArtifactCache(dir_).get(key) is not None
