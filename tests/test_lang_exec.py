"""MiniLang end-to-end language semantics, validated by execution."""

import pytest

from repro.lang import compile_source
from repro.vm import run_program


def run(source, args=()):
    result, _ = run_program(compile_source(source), args=args)
    return result


class TestShortCircuit:
    def test_and_short_circuits(self):
        # The right operand would divide by zero if evaluated.
        source = """
        fn main() {
          var zero = 0;
          if (0 && (1 / zero)) { return 1; }
          return 2;
        }
        """
        assert run(source) == 2

    def test_or_short_circuits(self):
        source = """
        fn main() {
          var zero = 0;
          if (1 || (1 / zero)) { return 1; }
          return 2;
        }
        """
        assert run(source) == 1

    def test_logic_produces_binary_values(self):
        assert run("fn main() { return (5 && 3) + (0 || 7); }") == 2

    def test_mixed_logic(self):
        assert run("fn main() { return 1 && 0 || 1; }") == 1


class TestScoping:
    def test_shadowed_variable_restored(self):
        source = """
        fn main() {
          var x = 1;
          if (1) { var x = 99; x = x + 1; }
          return x;
        }
        """
        assert run(source) == 1

    def test_for_loop_variable_isolated(self):
        source = """
        fn main() {
          var s = 0;
          for (var i = 0; i < 3; i = i + 1) { s = s + i; }
          for (var i = 10; i < 12; i = i + 1) { s = s + i; }
          return s;
        }
        """
        assert run(source) == 0 + 1 + 2 + 10 + 11

    def test_bare_block_opens_scope(self):
        source = """
        fn main() {
          var x = 1;
          { var x = 40; x = x + 2; }
          { var y = x + 8; x = y; }
          return x;
        }
        """
        assert run(source) == 9


class TestLoops:
    def test_while_with_break(self):
        source = """
        fn main() {
          var i = 0;
          while (1) { if (i >= 7) { break; } i = i + 1; }
          return i;
        }
        """
        assert run(source) == 7

    def test_continue_skips_step_correctly_in_for(self):
        # continue must jump to the step, not the condition.
        source = """
        fn main() {
          var s = 0;
          for (var i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0) { continue; }
            s = s + i;
          }
          return s;
        }
        """
        assert run(source) == 1 + 3 + 5 + 7 + 9

    def test_nested_loop_break_targets_inner(self):
        source = """
        fn main() {
          var count = 0;
          for (var i = 0; i < 3; i = i + 1) {
            for (var j = 0; j < 10; j = j + 1) {
              if (j == 2) { break; }
              count = count + 1;
            }
          }
          return count;
        }
        """
        assert run(source) == 6


class TestFunctions:
    def test_implicit_return_zero(self):
        assert run("fn main() { var x = 5; }") == 0

    def test_void_style_call(self):
        source = """
        fn side(n) { burn(n); return n; }
        fn main() { side(5); return 1; }
        """
        assert run(source) == 1

    def test_arguments_evaluated_left_to_right(self):
        # min(a, b) with side-effecting order visible through burn costs is
        # not observable; use array mutation ordering instead.
        source = """
        fn set_and_get(a, i, v) { a[i] = v; return v; }
        fn main() {
          var a = array(2);
          var r = set_and_get(a, 0, 5) + set_and_get(a, 0, 7);
          return a[0] * 100 + r;
        }
        """
        assert run(source) == 7 * 100 + 12

    def test_deep_expression_nesting(self):
        expr = "1" + " + 1" * 200
        assert run(f"fn main() {{ return {expr}; }}") == 201


class TestBuiltinsFromLang:
    def test_math_builtins(self):
        assert run(
            "fn main() { return max(min(5, 3), abs(0 - 2)) + floor(2.9); }"
        ) == 3 + 2

    def test_rand_in_range(self):
        source = """
        fn main() {
          var ok = 1;
          for (var i = 0; i < 20; i = i + 1) {
            var r = rand();
            if (r < 0.0 || r >= 1.0) { ok = 0; }
          }
          return ok;
        }
        """
        assert run(source) == 1
