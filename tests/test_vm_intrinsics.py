"""Unit tests for intrinsic functions."""

import math

import pytest

from repro.vm import UnknownIntrinsicError
from repro.vm.errors import ExecutionError
from repro.vm.intrinsics import IntrinsicContext, lookup, registered_names


@pytest.fixture
def ctx():
    return IntrinsicContext()


def call(name, ctx, *args):
    return lookup(name)(ctx, args)


class TestBurn:
    def test_burn_accumulates(self, ctx):
        call("burn", ctx, 100)
        call("burn", ctx, 50)
        assert ctx.burned == 150.0

    def test_burn_returns_zero(self, ctx):
        assert call("burn", ctx, 10) == 0

    def test_burn_rejects_negative(self, ctx):
        with pytest.raises(ExecutionError):
            call("burn", ctx, -1)

    def test_burn_rejects_non_numbers(self, ctx):
        with pytest.raises(ExecutionError):
            call("burn", ctx, "lots")


class TestMath:
    def test_abs_min_max(self, ctx):
        assert call("abs", ctx, -4) == 4
        assert call("min", ctx, 2, 9) == 2
        assert call("max", ctx, 2, 9) == 9

    def test_sqrt(self, ctx):
        assert call("sqrt", ctx, 16) == 4.0
        with pytest.raises(ExecutionError):
            call("sqrt", ctx, -1)

    def test_floor(self, ctx):
        assert call("floor", ctx, 3.9) == 3

    def test_exp_log_inverse(self, ctx):
        assert call("log", ctx, call("exp", ctx, 2.0)) == pytest.approx(2.0)

    def test_log_rejects_non_positive(self, ctx):
        with pytest.raises(ExecutionError):
            call("log", ctx, 0)

    def test_exp_clamps_huge_exponents(self, ctx):
        assert call("exp", ctx, 10_000.0) == math.exp(700.0)

    def test_trig(self, ctx):
        assert call("sin", ctx, 0.0) == 0.0
        assert call("cos", ctx, 0.0) == 1.0

    def test_conversions(self, ctx):
        assert call("itof", ctx, 3) == 3.0
        assert call("ftoi", ctx, 3.7) == 3


class TestRandom:
    def test_rand_deterministic_per_seed(self):
        from random import Random

        a = IntrinsicContext(rng=Random(5))
        b = IntrinsicContext(rng=Random(5))
        assert [call("rand", a) for _ in range(5)] == [
            call("rand", b) for _ in range(5)
        ]

    def test_randint_range(self, ctx):
        values = {call("randint", ctx, 1, 3) for _ in range(50)}
        assert values <= {1, 2, 3}
        assert len(values) > 1


class TestRegistry:
    def test_print_captures_output(self, ctx):
        call("print", ctx, "hello")
        assert ctx.output == ["hello"]

    def test_unknown_intrinsic(self):
        with pytest.raises(UnknownIntrinsicError):
            lookup("no_such_thing")

    def test_registered_names_sorted_and_complete(self):
        names = registered_names()
        assert list(names) == sorted(names)
        assert {"burn", "print", "rand", "sqrt"} <= set(names)
