"""Tests for the experiment harness (small run counts for speed)."""

import pytest

from repro.bench import get_benchmark
from repro.experiments import BoxStats, run_experiment
from repro.experiments.figure8 import run_figure8, render as render_f8
from repro.experiments.figure9 import run_figure9, render as render_f9
from repro.experiments.figure10 import run_figure10, render as render_f10
from repro.experiments.overhead import run_overhead, render as render_ov
from repro.experiments.report import format_series, format_table, sparkline
from repro.experiments.sensitivity import (
    run_order_study,
    run_threshold_sweep,
    render_order,
    render_thresholds,
)
from repro.experiments.table1 import run_table1, render as render_t1


@pytest.fixture(scope="module")
def small_result():
    return run_experiment(get_benchmark("RayTracer"), seed=3, runs=10)


class TestRunner:
    def test_all_scenarios_run_same_sequence(self, small_result):
        assert len(small_result.default) == 10
        assert len(small_result.rep) == 10
        assert len(small_result.evolve) == 10
        cmds = lambda outs: [o.cmdline for o in outs]
        assert cmds(small_result.default) == cmds(small_result.evolve)
        assert cmds(small_result.default) == cmds(small_result.rep)

    def test_results_agree_across_scenarios(self, small_result):
        for d, r, e in zip(
            small_result.default, small_result.rep, small_result.evolve
        ):
            assert d.result == r.result == e.result

    def test_speedup_series_lengths(self, small_result):
        assert len(small_result.speedups("evolve")) == 10
        assert len(small_result.speedups("rep")) == 10

    def test_explicit_sequence_respected(self):
        bench = get_benchmark("Search")
        result = run_experiment(bench, seed=0, sequence=[0, 1, 0])
        assert result.sequence == [0, 1, 0]
        assert len(result.evolve) == 3

    def test_scenarios_subset(self):
        bench = get_benchmark("Search")
        result = run_experiment(
            bench, seed=0, runs=3, scenarios=("default", "evolve")
        )
        assert result.rep == []
        assert len(result.evolve) == 3


class TestBoxStats:
    def test_five_numbers(self):
        stats = BoxStats.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.minimum == 1.0
        assert stats.median == 3.0
        assert stats.maximum == 5.0
        assert stats.q1 == 2.0
        assert stats.q3 == 4.0

    def test_single_value(self):
        stats = BoxStats.of([2.5])
        assert stats.minimum == stats.maximum == stats.median == 2.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.of([])


class TestHarnessModules:
    def test_table1_rows(self):
        rows = run_table1(
            seed=1, runs_override=8, benchmarks=[get_benchmark("Search")]
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.program == "Search"
        assert row.time_max >= row.time_min > 0
        assert 0 <= row.mean_accuracy <= 1
        assert row.features_total >= row.features_used
        assert "Search" in render_t1(rows)

    def test_figure8_curves(self):
        curves = run_figure8("RayTracer", seed=1, runs=8)
        assert len(curves.confidence) == 8
        assert len(curves.evolve_speedup) == 8
        text = render_f8(curves)
        assert "RayTracer" in text and "conf" in text

    def test_figure9_curve_sorted(self):
        curve = run_figure9("Mtrt", seed=1, runs=14)
        times = [p.default_seconds for p in curve.points]
        assert times == sorted(times)
        assert "Mtrt" in render_f9(curve)
        assert len(curve.correlation_buckets(2)) <= 2

    def test_figure10_summary(self):
        summary = run_figure10(
            seed=1, runs_override=8, benchmarks=[get_benchmark("RayTracer")]
        )
        assert len(summary.rows) == 1
        assert summary.rows[0].evolve.maximum >= summary.rows[0].evolve.minimum
        assert "RayTracer" in render_f10(summary)

    def test_overhead_rows(self):
        rows = run_overhead(
            seed=1, runs_override=6, benchmarks=[get_benchmark("Search")]
        )
        assert rows[0].mean_fraction < 0.05
        assert "worst case" in render_ov(rows)

    def test_threshold_sweep(self):
        points = run_threshold_sweep(
            "RayTracer", thresholds=(0.5, 0.9), seed=1, runs=10
        )
        assert len(points) == 2
        # A stricter gate can never apply predictions more often.
        assert points[1].applied_runs <= points[0].applied_runs
        assert "TH_c" in render_thresholds("RayTracer", points)

    def test_order_study(self):
        study = run_order_study("Search", orders=2, seed=1, runs=8)
        assert study.program == "Search"
        assert study.rep_min_change >= 0
        assert "Input-order" in render_order(study)


class TestReportHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("t", {"x": [1.0, 2.0], "y": [3.0]})
        assert "run" in text and "1.000" in text

    def test_sparkline(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) != ""
