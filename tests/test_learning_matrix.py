"""Unit tests for the presorted matrix, its cache, and flattened trees."""

from random import Random

import pytest

from repro.learning import (
    ClassificationTree,
    Dataset,
    FlatTree,
    MatrixCache,
    TrainingMatrix,
    TreeParams,
    compile_forest,
)
from repro.learning.matrix import matrix_key
from repro.xicl import FeatureKind, FeatureVector


def vec(items):
    v = FeatureVector()
    for name, value in items:
        v.append_value(name, value)
    return v


def kv(**features):
    return vec(list(features.items()))


def mixed_dataset():
    ds = Dataset()
    ds.add(kv(x=5, c="red"), "a")
    ds.add(kv(x=1, c="blue"), "b")
    ds.add(kv(c="red"), "a")          # x missing
    ds.add(kv(x=3), "b")              # c missing
    ds.add(kv(x=1, c="green"), "a")   # duplicate x value
    return ds


class TestTrainingMatrix:
    def test_numeric_order_sorted_stable_and_skips_missing(self):
        matrix = TrainingMatrix.from_dataset(mixed_dataset())
        j = matrix.columns.index("x")
        order = matrix.numeric_order[j]
        # Rows 0,1,3,4 have x; sorted by value with the tie (rows 1 and 4,
        # both x=1) kept in row order.
        assert order == (1, 4, 3, 0)
        values = [matrix.values[i][j] for i in order]
        assert values == sorted(values)

    def test_category_order_repr_sorted_distinct(self):
        matrix = TrainingMatrix.from_dataset(mixed_dataset())
        j = matrix.columns.index("c")
        assert matrix.numeric_order[j] is None
        assert matrix.category_order[j] == tuple(
            sorted({"red", "blue", "green"}, key=repr)
        )

    def test_kinds_follow_dataset(self):
        matrix = TrainingMatrix.from_dataset(mixed_dataset())
        kinds = dict(zip(matrix.columns, matrix.kinds))
        assert kinds["x"] is FeatureKind.NUMERIC
        assert kinds["c"] is FeatureKind.CATEGORICAL

    def test_n_rows(self):
        assert TrainingMatrix.from_dataset(mixed_dataset()).n_rows == 5


class TestMatrixCache:
    def test_content_sharing_across_distinct_datasets(self):
        cache = MatrixCache()
        a, b = mixed_dataset(), mixed_dataset()
        assert cache.get(a) is cache.get(b)
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_label_changes_do_not_split_the_cache(self):
        # Content key covers features only: same X, different y → shared.
        cache = MatrixCache()
        a = Dataset()
        b = Dataset()
        for i in range(6):
            a.add(kv(x=i), "p")
            b.add(kv(x=i), "q" if i % 2 else "p")
        assert cache.get(a) is cache.get(b)

    def test_different_features_miss(self):
        cache = MatrixCache()
        a = mixed_dataset()
        b = mixed_dataset()
        b.add(kv(x=99), "z")
        assert cache.get(a) is not cache.get(b)
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = MatrixCache(capacity=2)
        datasets = []
        for base in range(3):
            ds = Dataset()
            ds.add(kv(x=base), "a")
            ds.add(kv(x=base + 10), "b")
            datasets.append(ds)
        first = cache.get(datasets[0])
        cache.get(datasets[1])
        cache.get(datasets[2])  # evicts datasets[0]'s entry
        assert len(cache) == 2
        assert cache.get(datasets[0]) is not first
        assert cache.misses == 4

    def test_recent_use_protects_from_eviction(self):
        cache = MatrixCache(capacity=2)
        datasets = []
        for base in range(3):
            ds = Dataset()
            ds.add(kv(x=base), "a")
            ds.add(kv(x=base + 10), "b")
            datasets.append(ds)
        first = cache.get(datasets[0])
        cache.get(datasets[1])
        assert cache.get(datasets[0]) is first  # refresh
        cache.get(datasets[2])  # evicts datasets[1], not datasets[0]
        assert cache.get(datasets[0]) is first

    def test_unkeyable_dataset_falls_back_uncached(self, monkeypatch):
        # Feature values the content key cannot hash must not break
        # refit — the presort simply is not shared.
        import repro.learning.matrix as matrix_mod

        cache = MatrixCache()

        def boom(dataset):
            raise TypeError("unhashable feature value")

        monkeypatch.setattr(matrix_mod, "matrix_key", boom)
        ds = mixed_dataset()
        matrix = cache.get(ds)
        assert isinstance(matrix, TrainingMatrix)
        assert cache.get(ds) is not matrix  # never cached
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MatrixCache(capacity=0)

    def test_eviction_counter(self):
        cache = MatrixCache(capacity=2)
        for base in range(5):
            ds = Dataset()
            ds.add(kv(x=base), "a")
            ds.add(kv(x=base + 10), "b")
            cache.get(ds)
        assert cache.evictions == 3
        assert cache.stats()["evictions"] == 3
        assert len(cache) == 2

    def test_eviction_under_contention(self):
        # Regression test: serving-layer tenants refit from worker
        # threads against one shared cache. Before the cache was locked,
        # the unsynchronized pop/reinsert/evict sequence could corrupt
        # the LRU dict mid-iteration. Hammer a tiny cache from several
        # threads and check every returned matrix is correct and the
        # counters reconcile.
        import threading

        cache = MatrixCache(capacity=2)
        datasets = []
        for base in range(8):
            ds = Dataset()
            for i in range(4):
                ds.add(kv(x=base * 100 + i), "a" if i % 2 else "b")
            datasets.append(ds)
        rounds = 60
        errors = []

        def hammer(offset):
            rng = Random(offset)
            try:
                for _ in range(rounds):
                    ds = datasets[rng.randrange(len(datasets))]
                    matrix = cache.get(ds)
                    if matrix.n_rows != 4:
                        raise AssertionError("wrong matrix returned")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 6 * rounds
        assert stats["evictions"] > 0
        assert len(cache) <= 2

    def test_pickle_roundtrip_drops_lock(self):
        # The forge prior pickles its builder (shared cache included);
        # the lock must not travel, and a loaded cache must still work.
        import pickle

        cache = MatrixCache(capacity=4)
        ds = mixed_dataset()
        cache.get(ds)
        loaded = pickle.loads(pickle.dumps(cache))
        assert loaded.stats() == cache.stats()
        assert loaded.get(mixed_dataset()).n_rows == 5
        assert loaded.hits == cache.hits + 1

    def test_clear(self):
        cache = MatrixCache()
        cache.get(mixed_dataset())
        cache.clear()
        assert len(cache) == 0

    def test_matrix_key_excludes_labels(self):
        a, b = mixed_dataset(), mixed_dataset()
        b._rows[0] = type(b._rows[0])(b._rows[0].values, "different-label")
        assert matrix_key(a) == matrix_key(b)


DEEP = TreeParams(max_depth=40, min_samples_split=2, min_samples_leaf=1)


def trained_tree(seed=3, n=80):
    rng = Random(seed)
    ds = Dataset()
    for _ in range(n):
        items = []
        if rng.random() > 0.1:
            items.append(("x", rng.randint(0, 9)))
        if rng.random() > 0.1:
            items.append(("c", rng.choice(["r", "g", "b"])))
        label = "hi" if sum(v for k, v in items if k == "x") > 4 else "lo"
        ds.add(vec(items), label)
    return ClassificationTree(DEEP).fit(ds), ds


class TestFlatTree:
    def test_matches_node_walk_on_training_rows(self):
        tree, ds = trained_tree()
        flat = FlatTree(tree.root, tree.fitted_columns)
        for row in ds.rows:
            assert flat.predict_values(row.values) == tree.predict_values(
                row.values
            )

    def test_matches_node_walk_on_random_queries(self):
        tree, _ = trained_tree()
        flat = FlatTree(tree.root, tree.fitted_columns)
        rng = Random(99)
        for _ in range(200):
            values = (
                rng.randint(-3, 12) if rng.random() > 0.3 else None,
                rng.choice(["r", "g", "b", "unseen"])
                if rng.random() > 0.3
                else None,
            )
            aligned = tuple(
                values[("x", "c").index(c)] if c in ("x", "c") else None
                for c in tree.fitted_columns
            )
            assert flat.predict_values(aligned) == tree.predict_values(aligned)

    def test_node_count_matches_tree(self):
        tree, _ = trained_tree()
        flat = FlatTree(tree.root, tree.fitted_columns)

        def count(node):
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        assert flat.n_nodes == count(tree.root)

    def test_single_leaf_tree(self):
        ds = Dataset()
        for i in range(5):
            ds.add(kv(x=i), "only")
        tree = ClassificationTree(DEEP).fit(ds)
        flat = FlatTree(tree.root, tree.fitted_columns)
        assert flat.n_nodes == 1
        assert flat.predict_values((None,)) == "only"


class TestFlatForest:
    def make_forest(self):
        trees = {}
        for seed, name in ((3, "alpha"), (11, "beta"), (17, "gamma")):
            trees[name], _ = trained_tree(seed=seed)
        return trees, compile_forest(trees)

    def test_predict_all_matches_per_tree_predict(self):
        trees, forest = self.make_forest()
        rng = Random(5)
        for _ in range(50):
            items = []
            if rng.random() > 0.3:
                items.append(("x", rng.randint(-2, 11)))
            if rng.random() > 0.3:
                items.append(("c", rng.choice(["r", "g", "b", "zz"])))
            query = vec(items)
            flat = forest.predict_all(query)
            assert set(flat) == set(trees)
            for name, tree in trees.items():
                assert flat[name] == tree.predict(query)

    def test_shared_column_universe(self):
        trees, forest = self.make_forest()
        assert set(forest.columns) == {
            c for t in trees.values() for c in t.fitted_columns
        }
        assert len(forest) == 3

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError):
            compile_forest({"m": ClassificationTree(DEEP)})

    def test_disjoint_feature_sets(self):
        # Trees over different columns still share one projection.
        a = Dataset()
        b = Dataset()
        for i in range(10):
            a.add(kv(p=i), "lo" if i < 5 else "hi")
            b.add(kv(q=i), "even" if i % 2 == 0 else "odd")
        trees = {
            "pa": ClassificationTree(DEEP).fit(a),
            "qb": ClassificationTree(DEEP).fit(b),
        }
        forest = compile_forest(trees)
        out = forest.predict_all(kv(p=2, q=3))
        assert out == {"pa": "lo", "qb": "odd"}
