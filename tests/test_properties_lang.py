"""Property-based tests: MiniLang arithmetic agrees with a Python oracle,
and the optimizer preserves semantics on randomly generated programs."""

from hypothesis import given, settings, strategies as st

from repro.lang import compile_source
from repro.vm import Interpreter, OPT_LEVELS, run_program

# -- random integer expression trees with a Python oracle -------------------

_INT = st.integers(min_value=-50, max_value=50)


def _exprs():
    """Strategy producing (minilang_text, python_text) expression pairs.

    Division/modulo right operands are offset away from zero so both
    languages evaluate totally. MiniLang int division is floor division,
    matching Python's ``//``.
    """

    def leaf(value):
        if value < 0:
            return (f"(0 - {-value})", f"({value})")
        return (str(value), str(value))

    def binop(children, op):
        left, right = children
        mini_op, py_op = op
        if mini_op in ("/", "%"):
            # Shift the divisor away from zero: (expr * 0 + k) is constant-
            # foldable noise; simplest is to wrap the right side.
            mini = f"({left[0]} {mini_op} ({right[0]} * 0 + 7))"
            py = f"({left[1]} {py_op} ({right[1]} * 0 + 7))"
        else:
            mini = f"({left[0]} {mini_op} {right[0]})"
            py = f"({left[1]} {py_op} {right[1]})"
        return (mini, py)

    ops = st.sampled_from(
        [("+", "+"), ("-", "-"), ("*", "*"), ("/", "//"), ("%", "%")]
    )
    return st.recursive(
        _INT.map(leaf),
        lambda children: st.tuples(st.tuples(children, children), ops).map(
            lambda pair: binop(pair[0], pair[1])
        ),
        max_leaves=12,
    )


@given(_exprs())
@settings(max_examples=120, deadline=None)
def test_expression_matches_python_oracle(pair):
    mini, py = pair
    program = compile_source(f"fn main() {{ return {mini}; }}")
    result, _ = run_program(program)
    assert result == eval(py)


@given(_exprs(), st.sampled_from(OPT_LEVELS))
@settings(max_examples=80, deadline=None)
def test_optimizer_preserves_expression_semantics(pair, level):
    mini, py = pair
    program = compile_source(f"fn main() {{ return {mini}; }}")
    interp = Interpreter(program, first_invocation_hook=lambda m: level)
    interp.run(())
    assert interp.result == eval(py)


# -- random structured programs: loops + helper calls -----------------------

@st.composite
def _loop_programs(draw):
    """A loop accumulating a polynomial of the index, via a helper call."""
    bound = draw(st.integers(min_value=0, max_value=25))
    coeff_a = draw(st.integers(min_value=-5, max_value=5))
    coeff_b = draw(st.integers(min_value=-5, max_value=5))
    start = draw(st.integers(min_value=-10, max_value=10))
    source = f"""
    fn poly(i) {{ return i * i * {_lit(coeff_a)} + i * {_lit(coeff_b)}; }}
    fn main() {{
      var s = {_lit(start)};
      for (var i = 0; i < {bound}; i = i + 1) {{ s = s + poly(i); }}
      return s;
    }}
    """
    expected = start + sum(coeff_a * i * i + coeff_b * i for i in range(bound))
    return source, expected


def _lit(value: int) -> str:
    return str(value) if value >= 0 else f"(0 - {-value})"


@given(_loop_programs(), st.sampled_from(OPT_LEVELS))
@settings(max_examples=60, deadline=None)
def test_optimizer_preserves_loop_semantics(case, level):
    source, expected = case
    program = compile_source(source)
    interp = Interpreter(program, first_invocation_hook=lambda m: level)
    interp.run(())
    assert interp.result == expected


@given(_loop_programs())
@settings(max_examples=30, deadline=None)
def test_virtual_clock_deterministic(case):
    source, _ = case
    program = compile_source(source)
    _, p1 = run_program(program)
    _, p2 = run_program(program)
    assert p1.total_cycles == p2.total_cycles
    assert p1.instructions_executed == p2.instructions_executed


@given(_loop_programs())
@settings(max_examples=30, deadline=None)
def test_higher_tiers_never_slower(case):
    """Execution (excluding compile time) must not regress at higher tiers."""
    source, _ = case
    program = compile_source(source)
    exec_cycles = []
    for level in OPT_LEVELS:
        interp = Interpreter(program, first_invocation_hook=lambda m: level)
        profile = interp.run(())
        exec_cycles.append(profile.execution_cycles)
    for slower, faster in zip(exec_cycles, exec_cycles[1:]):
        assert faster <= slower + 1e-9
