"""Interpreter semantics and accounting tests."""

import pytest

from repro.lang import compile_source
from repro.vm import (
    DEFAULT_CONFIG,
    ExecutionError,
    FuelExhaustedError,
    Interpreter,
    MethodBuilder,
    Program,
    StackOverflowError,
    VMConfig,
    run_program,
)


def run_src(source, args=(), **kwargs):
    return run_program(compile_source(source), args=args, **kwargs)


class TestArithmetic:
    def test_integer_ops(self):
        result, _ = run_src(
            "fn main() { return (7 + 3) * 2 - 5 % 3 + 9 / 2; }"
        )
        assert result == 20 - 2 + 4

    def test_float_division(self):
        result, _ = run_src("fn main() { return 7.0 / 2.0; }")
        assert result == pytest.approx(3.5)

    def test_int_division_floors(self):
        result, _ = run_src("fn main() { return 0 - (7 / 2); }")
        assert result == -3  # 7 // 2 == 3 computed before negation

    def test_negation_and_not(self):
        result, _ = run_src("fn main() { return -5 + !0 + !7; }")
        assert result == -4

    def test_comparisons_yield_binary_values(self):
        result, _ = run_src(
            "fn main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3)"
            " + (1 == 1) + (1 != 1); }"
        )
        assert result == 4

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="division by zero"):
            run_src("fn main() { var x = 0; return 1 / x; }")

    def test_modulo_by_zero_raises(self):
        with pytest.raises(ExecutionError, match="modulo by zero"):
            run_src("fn main() { var x = 0; return 1 % x; }")


class TestControlFlowAndCalls:
    def test_recursion(self):
        result, _ = run_src(
            "fn fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
            "fn main() { return fact(10); }"
        )
        assert result == 3628800

    def test_mutual_recursion(self):
        result, _ = run_src(
            """
            fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
            fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
            fn main() { return is_even(10) * 10 + is_odd(7); }
            """
        )
        assert result == 11

    def test_stack_overflow_guard(self):
        source = "fn loop(n) { return loop(n + 1); } fn main() { return loop(0); }"
        with pytest.raises(StackOverflowError):
            run_src(source)

    def test_fuel_guard(self):
        config = VMConfig(max_instructions=1000)
        source = "fn main() { var i = 0; while (1) { i = i + 1; } return i; }"
        with pytest.raises(FuelExhaustedError):
            run_src(source, config=config)

    def test_entry_arg_count_checked(self, loop_program):
        interp = Interpreter(loop_program)
        with pytest.raises(ExecutionError, match="expects 1 args"):
            interp.run(())


class TestArrays:
    def test_array_roundtrip(self):
        result, _ = run_src(
            """
            fn main() {
              var a = array(5);
              for (var i = 0; i < 5; i = i + 1) { a[i] = i * i; }
              var s = 0;
              for (var j = 0; j < len(a); j = j + 1) { s = s + a[j]; }
              return s;
            }
            """
        )
        assert result == 30

    def test_negative_array_size_raises(self):
        with pytest.raises(ExecutionError, match="NEWARR"):
            run_src("fn main() { var n = 0 - 3; var a = array(n); return 0; }")

    def test_out_of_bounds_raises(self):
        with pytest.raises(ExecutionError):
            run_src("fn main() { var a = array(2); return a[5]; }")


class TestAccounting:
    def test_clock_advances_monotonically(self, loop_program):
        _, profile = run_program(loop_program, args=(50,))
        assert profile.total_cycles > 0
        assert profile.compile_cycles > 0
        assert profile.execution_cycles > 0

    def test_baseline_work_equals_cycles(self, loop_program):
        # At level -1 the speed factor is 1.0, so work == cycles.
        _, profile = run_program(loop_program, args=(30,))
        assert sum(profile.method_work.values()) == pytest.approx(
            profile.execution_cycles
        )

    def test_per_method_cycles_sum_to_execution(self, loop_program):
        _, profile = run_program(loop_program, args=(25,))
        assert sum(profile.method_cycles.values()) == pytest.approx(
            profile.execution_cycles
        )

    def test_invocation_counts(self, loop_program):
        _, profile = run_program(loop_program, args=(17,))
        assert profile.invocations["main"] == 1
        assert profile.invocations["square"] == 17

    def test_determinism(self, loop_program):
        r1, p1 = run_program(loop_program, args=(40,), rng_seed=3)
        r2, p2 = run_program(loop_program, args=(40,), rng_seed=3)
        assert r1 == r2
        assert p1.total_cycles == p2.total_cycles
        assert p1.method_cycles == p2.method_cycles
        assert p1.samples == p2.samples

    def test_compile_events_recorded_per_method(self, loop_program):
        _, profile = run_program(loop_program, args=(5,))
        compiled = {event.method for event in profile.compile_events}
        assert compiled == {"main", "square"}
        assert all(event.level == -1 for event in profile.compile_events)

    def test_burn_scales_with_speed_factor(self, hot_program):
        base_interp = Interpreter(hot_program)
        base = base_interp.run((200,))
        fast_interp = Interpreter(
            hot_program, first_invocation_hook=lambda name: 2
        )
        fast = fast_interp.run((200,))
        assert base_interp.result == fast_interp.result
        assert fast.execution_cycles < base.execution_cycles * 0.6


class TestSamplingIntegration:
    def test_samples_attributed_to_hot_method(self, hot_program):
        _, profile = run_program(hot_program, args=(2000,))
        assert profile.total_samples > 5
        hottest = profile.hot_methods(top=1)[0][0]
        assert hottest == "kernel"

    def test_sample_fraction(self, hot_program):
        _, profile = run_program(hot_program, args=(2000,))
        assert profile.sample_fraction("kernel") > 0.5
        assert profile.sample_fraction("nonexistent") == 0.0


class TestRecompilation:
    def test_request_recompile_upgrades_future_calls(self, hot_program):
        interp = Interpreter(hot_program)
        interp.request_recompile("kernel", 1)  # queued before first call
        profile = interp.run((500,))
        # kernel gets baseline-compiled first; the queued request is stale
        # (level for an unseen method), so it is dropped.
        assert profile.final_levels["kernel"] == -1

    def test_first_invocation_hook_recompiles(self, hot_program):
        interp = Interpreter(
            hot_program,
            first_invocation_hook=lambda m: 2 if m == "kernel" else None,
        )
        profile = interp.run((500,))
        assert profile.final_levels["kernel"] == 2
        assert profile.final_levels["main"] == -1
        levels = [e.level for e in profile.compile_events if e.method == "kernel"]
        assert levels == [-1, 2]

    def test_downgrade_requests_ignored(self, hot_program):
        interp = Interpreter(
            hot_program, first_invocation_hook=lambda m: 2 if m == "kernel" else None
        )
        interp.request_recompile("kernel", 1)
        profile = interp.run((500,))
        assert profile.final_levels["kernel"] == 2

    def test_interpreter_single_use(self, loop_program):
        interp = Interpreter(loop_program)
        interp.run((3,))
        with pytest.raises(ExecutionError, match="single-use"):
            interp.run((3,))


class TestOutput:
    def test_print_captured_not_emitted(self, capsys):
        result, _ = run_src("fn main() { print(42); return 0; }")
        assert capsys.readouterr().out == ""

    def test_output_accessible_via_interpreter(self):
        prog = compile_source("fn main() { print(1); print(2); return 0; }")
        interp = Interpreter(prog)
        interp.run(())
        assert interp.output == ["1", "2"]
