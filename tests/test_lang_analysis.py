"""Unit tests for MiniLang semantic analysis."""

import pytest

from repro.lang import SemanticError, analyze, parse


def check(source, entry="main"):
    return analyze(parse(source), entry=entry)


class TestFunctionLevel:
    def test_signature_table_returned(self):
        sigs = check("fn f(a, b) { return 0; } fn main() { return f(1, 2); }")
        assert sigs == {"f": 2, "main": 0}

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError, match="duplicate function"):
            check("fn main() { return 0; } fn main() { return 1; }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(SemanticError, match="shadows a builtin"):
            check("fn burn(x) { return 0; } fn main() { return 0; }")

    def test_missing_entry_rejected(self):
        with pytest.raises(SemanticError, match="entry"):
            check("fn helper() { return 0; }")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            check("fn main(a, a) { return 0; }")


class TestVariables:
    def test_undefined_variable_rejected(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            check("fn main() { return ghost; }")

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("fn main() { x = 5; return 0; }")

    def test_duplicate_declaration_same_scope_rejected(self):
        with pytest.raises(SemanticError, match="duplicate declaration"):
            check("fn main() { var x = 1; var x = 2; return 0; }")

    def test_shadowing_in_nested_scope_allowed(self):
        check("fn main() { var x = 1; if (x) { var x = 2; } return x; }")

    def test_block_scope_expires(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            check("fn main() { if (1) { var y = 2; } return y; }")

    def test_for_init_visible_in_body_but_not_after(self):
        check("fn main() { for (var i = 0; i < 3; i = i + 1) { burn(i); } return 0; }")
        with pytest.raises(SemanticError, match="undefined variable"):
            check("fn main() { for (var i = 0; i < 3; i = i + 1) { } return i; }")

    def test_params_visible(self):
        check("fn main(n) { return n; }")


class TestCalls:
    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check("fn main() { return mystery(); }")

    def test_user_function_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 2 args"):
            check("fn f(a, b) { return 0; } fn main() { return f(1); }")

    def test_builtin_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 1 args"):
            check("fn main() { return burn(1, 2); }")

    def test_special_forms_checked(self):
        check("fn main() { var a = array(3); return len(a); }")
        with pytest.raises(SemanticError, match="expects 1 args"):
            check("fn main() { return array(); }")


class TestLoopControl:
    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError, match="break outside"):
            check("fn main() { break; return 0; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(SemanticError, match="continue outside"):
            check("fn main() { if (1) { continue; } return 0; }")

    def test_break_in_nested_loop_allowed(self):
        check(
            "fn main() { while (1) { for (;;) { break; } break; } return 0; }"
        )
