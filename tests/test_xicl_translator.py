"""Unit tests for the XICL translator, features, methods, filesystem."""

import pytest

from repro.xicl import (
    Feature,
    FeatureKind,
    FeatureVector,
    InMemoryFileSystem,
    MemoryFile,
    MetadataFeature,
    TranslationError,
    UnknownFeatureMethodError,
    XFMethodRegistry,
    XICLTranslator,
    parse_spec,
    xf_method,
)

ROUTE_SPEC = """
option  {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}
option  {name=-e:--echo; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=FILE; attr=mNodes:mEdges}
"""


@pytest.fixture
def route_translator():
    registry = XFMethodRegistry()
    registry.register(MetadataFeature("mNodes", "nodes"))
    registry.register(MetadataFeature("mEdges", "edges"))
    fs = InMemoryFileSystem()
    fs.add_stub("graph1", size_bytes=4000, nodes=100, edges=1000)
    fs.add_stub("graph2", size_bytes=900, nodes=10, edges=45)
    return XICLTranslator(parse_spec(ROUTE_SPEC), registry=registry, filesystem=fs)


class TestFeatureVector:
    def test_ordered_and_addressable(self):
        v = FeatureVector()
        v.append_value("b", 2)
        v.append_value("a", 1)
        assert v.names == ("b", "a")
        assert v["a"] == 1
        assert v.values() == (2, 1)

    def test_replacement_preserves_order(self):
        v = FeatureVector()
        v.append_value("a", 1)
        v.append_value("b", 2)
        v.append_value("a", 99)
        assert v.names == ("a", "b")
        assert v["a"] == 99

    def test_kind_inference(self):
        v = FeatureVector()
        v.append_value("n", 5)
        v.append_value("s", "red")
        assert v.kind_of("n") is FeatureKind.NUMERIC
        assert v.kind_of("s") is FeatureKind.CATEGORICAL

    def test_numeric_feature_type_enforced(self):
        with pytest.raises(TypeError):
            Feature("x", "oops", FeatureKind.NUMERIC)

    def test_equality(self):
        a = FeatureVector([Feature("x", 1, FeatureKind.NUMERIC)])
        b = FeatureVector([Feature("x", 1, FeatureKind.NUMERIC)])
        assert a == b

    def test_get_with_default(self):
        v = FeatureVector()
        assert v.get("missing", 7) == 7


class TestPaperExample:
    def test_route_example_vector(self, route_translator):
        fv = route_translator.build_fvector("-n 3 graph1")
        # Paper: (3, 0, 100, 1000) — plus our explicit operand count.
        assert fv["-n.VAL"] == 3
        assert fv["-e.VAL"] == 0
        assert fv["operands1_end.count"] == 1
        assert fv["operands1_end.mNodes"] == 100
        assert fv["operands1_end.mEdges"] == 1000

    def test_defaults_applied_when_absent(self, route_translator):
        fv = route_translator.build_fvector("graph1")
        assert fv["-n.VAL"] == 1

    def test_alias_recognized(self, route_translator):
        fv = route_translator.build_fvector("--echo graph1")
        assert fv["-e.VAL"] == 1

    def test_range_aggregation(self, route_translator):
        fv = route_translator.build_fvector("graph1 graph2")
        assert fv["operands1_end.count"] == 2
        assert fv["operands1_end.mNodes"] == 110
        assert fv["operands1_end.mEdges"] == 1045

    def test_vector_shape_stable_across_inputs(self, route_translator):
        names1 = route_translator.build_fvector("-n 3 graph1").names
        names2 = route_translator.build_fvector("--echo graph1 graph2").names
        assert names1 == names2


class TestScanning:
    def test_unknown_option_rejected(self, route_translator):
        with pytest.raises(TranslationError, match="unknown option"):
            route_translator.build_fvector("-z graph1")

    def test_missing_argument_rejected(self, route_translator):
        with pytest.raises(TranslationError, match="expects an argument"):
            route_translator.build_fvector("graph1 -n")

    def test_equals_form(self, route_translator):
        fv = route_translator.build_fvector("-n=5 graph1")
        assert fv["-n.VAL"] == 5

    def test_double_dash_terminates_options(self):
        spec = parse_spec(
            "option {name=-n; type=NUM; attr=VAL; default=1; has_arg=y}\n"
            "operand {position=1:$; type=STR; attr=VAL}"
        )
        tr = XICLTranslator(spec)
        fv = tr.build_fvector("-n 2 -- -n")
        assert fv["-n.VAL"] == 2
        assert fv["operands1_end.count"] == 1

    def test_negative_number_is_operand(self):
        spec = parse_spec("operand {position=1; type=NUM; attr=VAL}")
        fv = XICLTranslator(spec).build_fvector(["-5"])
        assert fv["operand1.VAL"] == -5

    def test_uncovered_operand_rejected(self):
        spec = parse_spec("operand {position=1; type=NUM; attr=VAL}")
        with pytest.raises(TranslationError, match="not covered"):
            XICLTranslator(spec).build_fvector("1 2")

    def test_missing_fixed_operand_yields_empty_value(self):
        spec = parse_spec("operand {position=1; type=STR; attr=LEN}")
        fv = XICLTranslator(spec).build_fvector([])
        assert fv["operand1.LEN"] == 0

    def test_repeated_option_last_wins(self, route_translator):
        fv = route_translator.build_fvector("-n 2 -n 9 graph1")
        assert fv["-n.VAL"] == 9


class TestExtractors:
    def test_size_extractor(self, route_translator):
        spec = parse_spec("operand {position=1; type=FILE; attr=SIZE}")
        tr = XICLTranslator(spec, filesystem=route_translator.filesystem)
        fv = tr.build_fvector("graph1")
        assert fv["operand1.SIZE"] == 4000

    def test_size_missing_file_rejected(self):
        spec = parse_spec("operand {position=1; type=FILE; attr=SIZE}")
        tr = XICLTranslator(spec, filesystem=InMemoryFileSystem())
        with pytest.raises(TranslationError, match="no such file"):
            tr.build_fvector("ghost.bin")

    def test_lines_words_from_content(self):
        fs = InMemoryFileSystem()
        fs.add_text("doc.txt", "one two\nthree\nfour five six")
        spec = parse_spec("operand {position=1; type=FILE; attr=LINES:WORDS}")
        fv = XICLTranslator(spec, filesystem=fs).build_fvector("doc.txt")
        assert fv["operand1.LINES"] == 3
        assert fv["operand1.WORDS"] == 6

    def test_lines_prefers_metadata(self):
        fs = InMemoryFileSystem()
        fs.add_stub("big.txt", size_bytes=10, lines=12345)
        spec = parse_spec("operand {position=1; type=FILE; attr=LINES}")
        fv = XICLTranslator(spec, filesystem=fs).build_fvector("big.txt")
        assert fv["operand1.LINES"] == 12345

    def test_metadata_feature_parses_content_fallback(self):
        fs = InMemoryFileSystem()
        fs.add_text("g.graph", "header\nnodes=42\nedges=99")
        registry = XFMethodRegistry()
        registry.register(MetadataFeature("mNodes", "nodes"))
        spec = parse_spec("operand {position=1; type=FILE; attr=mNodes}")
        fv = XICLTranslator(spec, registry=registry, filesystem=fs).build_fvector(
            "g.graph"
        )
        assert fv["operand1.mNodes"] == 42.0

    def test_val_parses_numbers(self):
        spec = parse_spec("operand {position=1; type=STR; attr=VAL}")
        tr = XICLTranslator(spec)
        assert tr.build_fvector(["12"])["operand1.VAL"] == 12
        assert tr.build_fvector(["1.5"])["operand1.VAL"] == 1.5
        assert tr.build_fvector(["abc"])["operand1.VAL"] == "abc"

    def test_function_registration(self):
        registry = XFMethodRegistry()

        @xf_method("mDouble", registry)
        def double(value, prefix, fs):
            v = FeatureVector()
            v.append_value(f"{prefix}.mDouble", int(value) * 2)
            return v

        spec = parse_spec("operand {position=1; type=NUM; attr=mDouble}")
        fv = XICLTranslator(spec, registry=registry).build_fvector(["21"])
        assert fv["operand1.mDouble"] == 42

    def test_unknown_method_rejected(self):
        spec = parse_spec("operand {position=1; type=NUM; attr=mMystery}")
        with pytest.raises(UnknownFeatureMethodError):
            XICLTranslator(spec).build_fvector(["1"])

    def test_dotted_path_import(self):
        # The Class.forName analogue: load an XFMethod by dotted path.
        registry = XFMethodRegistry()
        method = registry.get("repro.xicl.methods._Len")
        assert method.name == "LEN"

    def test_dotted_path_bad_import_rejected(self):
        registry = XFMethodRegistry()
        with pytest.raises(UnknownFeatureMethodError):
            registry.get("no.such.module.Thing")


class TestRuntimeChannel:
    def test_update_and_done(self, route_translator):
        fv = route_translator.build_fvector("graph1")
        route_translator.channel.update_v("mRuntime", 7)
        assert fv["mRuntime"] == 7
        seen = []
        route_translator.channel.on_done(lambda v: seen.append(v["mRuntime"]))
        route_translator.channel.done()
        route_translator.channel.done()
        assert seen == [7, 7]
        assert route_translator.channel.done_count == 2

    def test_update_many(self, route_translator):
        route_translator.build_fvector("graph1")
        route_translator.channel.update_many({"a": 1, "b": 2})
        assert route_translator.fvector["a"] == 1
        assert route_translator.fvector["b"] == 2

    def test_channel_rebinds_on_new_translation(self, route_translator):
        route_translator.build_fvector("graph1")
        route_translator.channel.update_v("x", 1)
        fv2 = route_translator.build_fvector("graph2")
        assert "x" not in fv2


class TestFileSystem:
    def test_memory_file_size_precedence(self):
        f = MemoryFile(content="abc", size_bytes=100)
        assert f.size == 100
        assert MemoryFile(content="abc").size == 3

    def test_read_without_content_rejected(self):
        fs = InMemoryFileSystem()
        fs.add_stub("x", size_bytes=10)
        with pytest.raises(TranslationError, match="materialized"):
            fs.read_text("x")

    def test_missing_file_rejected(self):
        fs = InMemoryFileSystem()
        with pytest.raises(TranslationError, match="no such file"):
            fs.size("ghost")

    def test_os_filesystem(self, tmp_path):
        from repro.xicl import OSFileSystem

        path = tmp_path / "data.txt"
        path.write_text("hello world")
        fs = OSFileSystem()
        assert fs.exists(str(path))
        assert fs.size(str(path)) == 11
        assert fs.read_text(str(path)) == "hello world"
        assert fs.metadata(str(path)) == {}
        assert not fs.exists(str(tmp_path / "ghost"))
