"""Unit tests for the program model, builder, and verifier."""

import pytest

from repro.vm import Instr, Method, MethodBuilder, Op, Program, VerificationError


def _method(name="m", code=(), params=0, locals_=None):
    return Method(
        name=name,
        num_params=params,
        num_locals=locals_ if locals_ is not None else params,
        code=tuple(code),
    )


class TestVerifier:
    def test_empty_code_rejected(self):
        with pytest.raises(VerificationError, match="empty"):
            _method(code=())

    def test_missing_ret_rejected(self):
        with pytest.raises(VerificationError, match="no RET"):
            _method(code=[Instr(Op.CONST, 1), Instr(Op.POP)])

    def test_jump_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="jump"):
            _method(code=[Instr(Op.JMP, 5), Instr(Op.RET)])

    def test_negative_jump_target_rejected(self):
        with pytest.raises(VerificationError, match="jump"):
            _method(code=[Instr(Op.JMP, -1), Instr(Op.RET)])

    def test_local_slot_out_of_range_rejected(self):
        with pytest.raises(VerificationError, match="slot"):
            _method(code=[Instr(Op.LOAD, 2), Instr(Op.RET)], params=1, locals_=1)

    def test_bad_call_operand_rejected(self):
        with pytest.raises(VerificationError, match="operand"):
            _method(code=[Instr(Op.CALL, "not-a-tuple"), Instr(Op.RET)])

    def test_negative_argc_rejected(self):
        with pytest.raises(VerificationError, match="operand"):
            _method(code=[Instr(Op.CALL, ("f", -1)), Instr(Op.RET)])

    def test_bad_slot_counts_rejected(self):
        with pytest.raises(VerificationError, match="slot counts"):
            Method(name="m", num_params=3, num_locals=1, code=(Instr(Op.RET),))

    def test_valid_method_accepted(self):
        method = _method(
            code=[Instr(Op.CONST, 1), Instr(Op.RET)], params=0, locals_=0
        )
        assert method.size == 2


class TestProgram:
    def test_duplicate_method_names_rejected(self):
        a = _method("m", [Instr(Op.CONST, 0), Instr(Op.RET)])
        b = _method("m", [Instr(Op.CONST, 1), Instr(Op.RET)])
        with pytest.raises(VerificationError, match="duplicate"):
            Program([a, b], entry="m")

    def test_missing_entry_rejected(self):
        a = _method("m", [Instr(Op.CONST, 0), Instr(Op.RET)])
        with pytest.raises(VerificationError, match="entry"):
            Program([a], entry="main")

    def test_call_to_unknown_method_rejected(self):
        a = _method("main", [Instr(Op.CALL, ("ghost", 0)), Instr(Op.RET)])
        with pytest.raises(VerificationError, match="unknown method"):
            Program([a], entry="main")

    def test_call_arity_mismatch_rejected(self):
        callee = _method("f", [Instr(Op.CONST, 0), Instr(Op.RET)], params=0)
        caller = _method(
            "main", [Instr(Op.CONST, 1), Instr(Op.CALL, ("f", 1)), Instr(Op.RET)]
        )
        with pytest.raises(VerificationError, match="expects"):
            Program([caller, callee], entry="main")

    def test_program_introspection(self, loop_program):
        assert "main" in loop_program
        assert "square" in loop_program
        assert "missing" not in loop_program
        assert len(loop_program) == 2
        assert set(loop_program.method_names) == {"main", "square"}
        assert loop_program.total_size() == sum(m.size for m in loop_program)


class TestMethodBuilder:
    def test_labels_resolve_to_indices(self):
        b = MethodBuilder("m")
        b.const(1).jnz("end").const(0).ret().label("end").const(2).ret()
        method = b.build()
        jump = method.code[1]
        assert jump.op == Op.JNZ
        assert jump.arg == 4

    def test_undefined_label_rejected(self):
        b = MethodBuilder("m").jmp("nowhere").ret()
        with pytest.raises(VerificationError, match="undefined label"):
            b.build()

    def test_duplicate_label_rejected(self):
        b = MethodBuilder("m").label("x")
        with pytest.raises(VerificationError, match="duplicate label"):
            b.label("x")

    def test_locals_inferred_from_max_slot(self):
        method = MethodBuilder("m", num_params=1).load(0).store(5).const(0).ret().build()
        assert method.num_locals == 6

    def test_explicit_locals_override(self):
        method = MethodBuilder("m").const(0).ret().build(num_locals=4)
        assert method.num_locals == 4


class TestStaticTraits:
    def test_loop_count_counts_backward_jumps(self):
        b = MethodBuilder("m", num_params=1)
        b.label("top").load(0).jz("end").load(0).const(1).sub().store(0)
        b.jmp("top").label("end").const(0).ret()
        method = b.build()
        assert method.loop_count() == 1

    def test_straightline_has_no_loops(self, identity_method):
        assert identity_method.loop_count() == 0

    def test_arithmetic_density_bounds(self, loop_program):
        for method in loop_program:
            density = method.arithmetic_density()
            assert 0.0 <= density <= 1.0
        assert loop_program.method("square").arithmetic_density() > 0
