"""The non-stationary scenario suite: determinism and engine parity.

The drift layer's foundation is that a schedule is a pure function of
``(spec, n_inputs, n_runs, seed)`` — everything downstream (parallel
bit-identity, chaos references, study reproducibility) leans on it.
"""

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_experiment
from repro.scenarios.drift import (
    DEFAULT_DRIFT_SPECS,
    SHIFT_KINDS,
    DriftSpec,
    drift_labels,
    drift_sequence,
    get_drift_spec,
    partition_inputs,
    shift_points,
)


class TestDriftSpec:
    def test_suite_covers_every_shift_kind(self):
        assert tuple(s.kind for s in DEFAULT_DRIFT_SPECS) == SHIFT_KINDS

    def test_get_drift_spec_is_case_insensitive(self):
        assert get_drift_spec("ABRUPT").kind == "abrupt"
        with pytest.raises(KeyError):
            get_drift_spec("sudden")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftSpec("seasonal")
        with pytest.raises(ValueError):
            DriftSpec("abrupt", changepoint=1.0)
        with pytest.raises(ValueError):
            DriftSpec("gradual", ramp_start=0.8, ramp_stop=0.2)
        with pytest.raises(ValueError):
            DriftSpec("cyclic", period=0)
        with pytest.raises(ValueError):
            DriftSpec("adversarial", first_segment=1)

    def test_describe_names_the_kind(self):
        for spec in DEFAULT_DRIFT_SPECS:
            assert spec.kind in spec.describe()


class TestDriftSequence:
    @pytest.mark.parametrize("kind", SHIFT_KINDS)
    def test_deterministic_in_all_arguments(self, kind):
        spec = get_drift_spec(kind)
        first = drift_sequence(spec, 16, 40, seed=7)
        again = drift_sequence(spec, 16, 40, seed=7)
        assert first == again
        assert drift_sequence(spec, 16, 40, seed=8) != first

    def test_kinds_use_distinct_rng_streams(self):
        sequences = {
            kind: tuple(drift_sequence(get_drift_spec(kind), 16, 40, seed=0))
            for kind in SHIFT_KINDS
        }
        assert len(set(sequences.values())) == len(SHIFT_KINDS)

    @pytest.mark.parametrize("kind", SHIFT_KINDS)
    def test_indices_stay_in_range(self, kind):
        sequence = drift_sequence(get_drift_spec(kind), 9, 50, seed=3)
        assert len(sequence) == 50
        assert all(0 <= index < 9 for index in sequence)

    @pytest.mark.parametrize("kind", SHIFT_KINDS)
    def test_labels_agree_with_partition(self, kind):
        spec = get_drift_spec(kind)
        n_inputs, n_runs, seed = 12, 60, 5
        regime_a, regime_b = partition_inputs(n_inputs)
        sequence = drift_sequence(spec, n_inputs, n_runs, seed)
        labels = drift_labels(spec, n_runs, seed)
        assert len(labels) == len(sequence)
        for index, label in zip(sequence, labels):
            assert index in (regime_a if label == "A" else regime_b)

    def test_abrupt_switches_exactly_at_changepoint(self):
        spec = DriftSpec("abrupt", changepoint=0.5)
        labels = drift_labels(spec, 20, seed=0)
        assert labels == ["A"] * 10 + ["B"] * 10
        assert shift_points(spec, 20) == [10]

    def test_cyclic_alternates_by_period(self):
        spec = DriftSpec("cyclic", period=4)
        labels = drift_labels(spec, 16, seed=0)
        assert labels == ["A"] * 4 + ["B"] * 4 + ["A"] * 4 + ["B"] * 4
        assert shift_points(spec, 16) == [4, 8, 12]

    def test_adversarial_segments_shrink(self):
        spec = DriftSpec("adversarial", first_segment=8)
        points = shift_points(spec, 30, seed=0)
        assert points[0] == 8
        gaps = [b - a for a, b in zip(points, points[1:])]
        assert gaps == sorted(gaps, reverse=True)
        assert min(gaps) >= 2

    def test_gradual_shift_points_are_the_ramp_edges(self):
        spec = DriftSpec("gradual", ramp_start=0.25, ramp_stop=0.75)
        assert shift_points(spec, 40) == [10, 30]

    def test_single_input_population_is_stationary(self):
        spec = get_drift_spec("abrupt")
        assert drift_sequence(spec, 1, 10, seed=0) == [0] * 10


class TestEngineParity:
    @pytest.mark.parametrize("kind", ("abrupt", "adversarial"))
    def test_serial_and_parallel_runs_are_bit_identical(self, kind):
        bench = get_benchmark("Search")
        spec = get_drift_spec(kind)
        serial = run_experiment(
            bench, seed=3, runs=10, scenarios=("default", "evolve"),
            drift=spec,
        )
        parallel = run_experiment(
            bench, seed=3, runs=10, scenarios=("default", "evolve"),
            drift=spec, jobs=2,
        )
        assert serial.sequence == parallel.sequence
        assert serial.confidences() == parallel.confidences()
        assert serial.accuracies() == parallel.accuracies()
        assert [out.total_cycles for out in serial.evolve] == [
            out.total_cycles for out in parallel.evolve
        ]
        assert [out.drift_methods for out in serial.evolve] == [
            out.drift_methods for out in parallel.evolve
        ]

    def test_drift_and_explicit_sequence_are_mutually_exclusive(self):
        bench = get_benchmark("Search")
        with pytest.raises(ValueError):
            run_experiment(
                bench, runs=4, drift=get_drift_spec("abrupt"),
                sequence=[0, 1, 0, 1],
            )
