"""Tests for CSV export of experiment artifacts."""

import csv
import io

import pytest

from repro.bench import get_benchmark
from repro.experiments import run_experiment
from repro.experiments.export import (
    figure8_csv,
    figure9_csv,
    figure10_csv,
    runs_csv,
    table1_csv,
)
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import run_figure9
from repro.experiments.figure10 import run_figure10
from repro.experiments.table1 import run_table1


def parse(text):
    return list(csv.DictReader(io.StringIO(text)))


@pytest.fixture(scope="module")
def small():
    return {
        "table1": run_table1(
            seed=2, runs_override=6, benchmarks=[get_benchmark("Search")]
        ),
        "figure8": run_figure8("Search", seed=2, runs=6),
        "figure9": run_figure9("Search", seed=2, runs=10),
        "figure10": run_figure10(
            seed=2, runs_override=6, benchmarks=[get_benchmark("Search")]
        ),
        "runs": run_experiment(get_benchmark("Search"), seed=2, runs=6),
    }


class TestCSVExports:
    def test_table1_rows_and_columns(self, small):
        rows = parse(table1_csv(small["table1"]))
        assert len(rows) == 1
        assert rows[0]["program"] == "Search"
        assert float(rows[0]["accuracy"]) <= 1.0

    def test_figure8_series_lengths(self, small):
        rows = parse(figure8_csv(small["figure8"]))
        assert len(rows) == 6
        assert {"confidence", "accuracy", "evolve_speedup", "rep_speedup"} <= set(
            rows[0]
        )

    def test_figure9_sorted_by_time(self, small):
        rows = parse(figure9_csv(small["figure9"]))
        times = [float(r["default_time_s"]) for r in rows]
        assert times == sorted(times)

    def test_figure10_two_rows_per_program(self, small):
        rows = parse(figure10_csv(small["figure10"]))
        assert len(rows) == 2
        assert {r["scenario"] for r in rows} == {"evolve", "rep"}
        for row in rows:
            assert (
                float(row["min"])
                <= float(row["median"])
                <= float(row["max"])
            )

    def test_runs_csv_carries_all_scenarios(self, small):
        rows = parse(runs_csv(small["runs"]))
        assert len(rows) == 6
        assert {"cmdline", "rep_speedup", "evolve_speedup", "applied"} <= set(
            rows[0]
        )

    def test_csv_is_round_trippable(self, small):
        text = table1_csv(small["table1"])
        assert parse(text)  # csv module accepts its own output
        assert text.endswith("\n")
