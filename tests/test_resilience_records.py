"""Crash-safety tests for evolvable-VM state persistence.

The contract (docs/robustness.md): ``load_state_file`` never raises. A
missing, torn, bit-flipped, or semantically invalid state file is
quarantined with a machine-readable reason and the VM boots with empty
records — the paper's low-confidence path, where the reactive adaptive
optimizer carries the run. A VM that failed to load must still run, and
run exactly like a freshly constructed one.
"""

import json

import pytest

from repro.core import (
    EvolvableVM,
    load_state_file,
    save_state,
    state_to_dict,
)
from repro.core.records import STATE_KIND
from repro.resilience.degradation import DegradationReport
from repro.resilience.envelope import decode_envelope
from repro.resilience.faults import FaultPlan, FaultyFS
from repro.resilience.quarantine import quarantine_dir

TRAIN = ["-m 1 -n 50", "-m 2 -n 1200", "-m 1 -n 1200", "-m 2 -n 50",
         "-m 1 -n 50", "-m 2 -n 1200"]


@pytest.fixture
def trained(toy_app):
    vm = EvolvableVM(toy_app)
    for i, cmd in enumerate(TRAIN):
        vm.run(cmd, rng_seed=i)
    return vm


@pytest.fixture
def state_path(trained, tmp_path):
    path = str(tmp_path / "state.json")
    assert save_state(trained, path)
    return path


def assert_cold_boot(toy_app, vm):
    """The degraded VM behaves exactly like a freshly constructed one."""
    assert vm.run_count == 0
    assert vm.confidence.value == EvolvableVM(toy_app).confidence.value
    fresh = EvolvableVM(toy_app).run(TRAIN[0], rng_seed=0)
    outcome = vm.run(TRAIN[0], rng_seed=0)
    assert outcome.result == fresh.result
    assert outcome.total_cycles == fresh.total_cycles
    assert not outcome.applied_prediction


class TestDegradationLedger:
    """Dedupe + monotonic sequencing of the degradation ledger.

    Repeated identical degradations (the same fault firing every run of
    a long campaign) must not grow the ledger unboundedly, while the
    counting APIs keep reporting total occurrences.
    """

    def test_identical_records_collapse_but_count(self):
        report = DegradationReport()
        for _ in range(50):
            report.record("sweep", "retry", "exception", detail="boom")
        assert len(report.events) == 1
        assert len(report) == 50
        assert report.count(component="sweep", action="retry") == 50
        assert report.occurrences(report.events[0]) == 50
        assert "sweep/retry×50" in report.describe()

    def test_distinct_records_get_monotonic_seq(self):
        report = DegradationReport()
        first = report.record("state", "quarantine", "bad-magic")
        report.record("state", "quarantine", "bad-magic")  # duplicate
        second = report.record("telemetry", "drop-event", "ENOSPC")
        third = report.record("state", "quarantine", "bad-crc")
        assert [e.seq for e in report.events] == [
            first.seq, second.seq, third.seq
        ]
        # Sequence numbers are arrival ordinals: the duplicate advanced
        # the clock, so later entries sit strictly after it.
        assert first.seq == 0
        assert first.seq < second.seq < third.seq
        assert len(report.events) == 3
        assert len(report) == 4

    def test_differing_detail_is_not_a_duplicate(self):
        report = DegradationReport()
        report.record("state", "store-failed", "OSError", detail="disk a")
        report.record("state", "store-failed", "OSError", detail="disk b")
        assert len(report.events) == 2
        assert report.count(component="state") == 2

    def test_extend_preserves_occurrence_counts(self):
        a = DegradationReport()
        for _ in range(3):
            a.record("sweep", "retry", "exception")
        b = DegradationReport()
        b.record("state", "quarantine", "bad-crc")
        b.extend(a)
        assert len(b.events) == 2
        assert len(b) == 4
        assert b.count(component="sweep", action="retry") == 3
        # Re-sequenced into the receiving report's monotonic order.
        assert b.events[0].seq < b.events[1].seq


class TestEnvelopeRoundTrip:
    def test_state_file_is_an_envelope(self, state_path):
        with open(state_path, "rb") as fh:
            payload = decode_envelope(fh.read(), STATE_KIND)
        assert json.loads(payload)["format"] == 1

    def test_round_trip_restores_learning(self, toy_app, trained, state_path):
        restored = EvolvableVM(toy_app)
        report = DegradationReport()
        assert load_state_file(restored, state_path, report=report)
        assert len(report) == 0
        assert restored.confidence.value == pytest.approx(
            trained.confidence.value
        )
        assert restored.run_count == trained.run_count
        assert restored.models.method_names == trained.models.method_names

    def test_legacy_plain_json_still_loads(self, toy_app, trained, tmp_path):
        # State files written before the envelope existed.
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(state_to_dict(trained)))
        restored = EvolvableVM(toy_app)
        assert load_state_file(restored, str(path))
        assert restored.run_count == trained.run_count


class TestLoadNeverRaises:
    def test_missing_file_is_cold_start(self, toy_app, tmp_path):
        vm = EvolvableVM(toy_app)
        report = DegradationReport()
        assert not load_state_file(vm, str(tmp_path / "none"), report=report)
        event = report.events[0]
        assert (event.component, event.action, event.reason) == (
            "state", "cold-start", "missing"
        )
        assert_cold_boot(toy_app, vm)

    @pytest.mark.parametrize(
        "corruptor,reason",
        [
            (lambda blob: blob[: len(blob) // 2], "truncated"),
            (lambda blob: blob + b"x", "length-mismatch"),
            (
                lambda blob: blob[:-10] + bytes([blob[-10] ^ 1]) + blob[-9:],
                "checksum-mismatch",
            ),
            (lambda blob: b"garbage header\npayload", "bad-magic"),
            (lambda blob: b"", "truncated-header"),
        ],
    )
    def test_corrupt_envelope_quarantines(
        self, toy_app, state_path, corruptor, reason
    ):
        with open(state_path, "rb") as fh:
            blob = fh.read()
        with open(state_path, "wb") as fh:
            fh.write(corruptor(blob))

        vm = EvolvableVM(toy_app)
        report = DegradationReport()
        assert not load_state_file(vm, state_path, report=report)
        assert report.count(component="state", action="quarantine") == 1
        assert report.events[0].reason == reason
        assert quarantine_dir(state_path).exists()
        assert_cold_boot(toy_app, vm)

    def test_valid_envelope_invalid_json_quarantines(
        self, toy_app, state_path
    ):
        from repro.resilience.envelope import write_envelope

        write_envelope(state_path, b"not json at all", kind=STATE_KIND)
        report = DegradationReport()
        vm = EvolvableVM(toy_app)
        assert not load_state_file(vm, state_path, report=report)
        assert report.events[0].reason == "invalid-json"

    def test_valid_json_invalid_state_quarantines(self, toy_app, state_path):
        from repro.resilience.envelope import write_json_envelope

        write_json_envelope(
            state_path, {"format": 1, "application": "other"}, kind=STATE_KIND
        )
        report = DegradationReport()
        vm = EvolvableVM(toy_app)
        assert not load_state_file(vm, state_path, report=report)
        assert report.events[0].reason == "invalid-state"
        # The failed load must not have half-restored anything.
        assert_cold_boot(toy_app, vm)

    def test_eio_read_is_cold_start_without_quarantine(
        self, toy_app, state_path
    ):
        fs = FaultyFS(FaultPlan(seed=0, io_error_read=1.0))
        report = DegradationReport()
        vm = EvolvableVM(toy_app)
        assert not load_state_file(vm, state_path, fs=fs, report=report)
        # The file itself may be fine — transient I/O error, no quarantine.
        assert report.count(action="quarantine") == 0
        assert report.count(component="state", action="cold-start") == 1


class TestSaveNeverFatal:
    def test_full_disk_reports_and_returns_false(self, trained, tmp_path):
        fs = FaultyFS(FaultPlan(seed=0, io_error_write=1.0))
        report = DegradationReport()
        path = str(tmp_path / "state.json")
        assert not save_state(trained, path, fs=fs, report=report)
        event = report.events[0]
        assert (event.component, event.action) == ("state", "store-failed")

    def test_torn_save_detected_on_next_load(self, toy_app, trained, tmp_path):
        fs = FaultyFS(FaultPlan(seed=2, torn_write=1.0))
        path = str(tmp_path / "state.json")
        assert save_state(trained, path, fs=fs)  # the tear is silent
        report = DegradationReport()
        vm = EvolvableVM(toy_app)
        assert not load_state_file(vm, path, report=report)
        assert report.count(component="state", action="quarantine") == 1
        assert_cold_boot(toy_app, vm)
