"""Unit tests for strategy types and the cost-benefit model."""

import pytest

from repro.aos import (
    CostBenefitModel,
    LevelStrategy,
    PairStrategy,
    RecompilePair,
)
from repro.vm import DEFAULT_CONFIG, JITCompiler, run_program


class TestLevelStrategy:
    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            LevelStrategy({"m": 5})

    def test_lookup(self):
        strategy = LevelStrategy({"a": 2, "b": -1})
        assert strategy.level_for("a") == 2
        assert strategy.level_for("missing") is None
        assert strategy.methods() == ("a", "b")
        assert len(strategy) == 2

    def test_agreement_treats_absent_as_baseline(self):
        a = LevelStrategy({"m": 2, "n": -1})
        b = LevelStrategy({"m": 2})
        agreement = a.agreement(b)
        assert agreement == {"m": True, "n": True}

    def test_agreement_disagrees_on_level(self):
        a = LevelStrategy({"m": 2})
        b = LevelStrategy({"m": 1})
        assert a.agreement(b) == {"m": False}


class TestPairStrategy:
    def test_thresholds_must_increase(self):
        with pytest.raises(ValueError):
            PairStrategy({"m": (RecompilePair(5, 0), RecompilePair(3, 2))})

    def test_levels_must_increase(self):
        with pytest.raises(ValueError):
            PairStrategy({"m": (RecompilePair(1, 2), RecompilePair(5, 0))})

    def test_at_sample_positive(self):
        with pytest.raises(ValueError):
            RecompilePair(0, 1)

    def test_final_levels(self):
        strategy = PairStrategy(
            {"m": (RecompilePair(1, 0), RecompilePair(10, 2)), "n": ()}
        )
        assert strategy.final_levels().levels == {"m": 2}

    def test_plan_lookup(self):
        strategy = PairStrategy({"m": (RecompilePair(2, 1),)})
        assert strategy.plan_for("m")[0].level == 1
        assert strategy.plan_for("other") == ()


class TestCostBenefitOnline:
    @pytest.fixture
    def model(self, hot_program):
        jit = JITCompiler(hot_program, DEFAULT_CONFIG)
        return CostBenefitModel(jit, DEFAULT_CONFIG.sample_interval)

    def test_cold_method_not_recompiled(self, model):
        assert model.choose_recompile_level("kernel", -1, 1) in (None, 0, 1, 2)

    def test_hot_method_recompiled_upward(self, model):
        level = model.choose_recompile_level("kernel", -1, 200)
        assert level is not None and level > -1

    def test_hotter_methods_get_higher_levels(self, model):
        levels = [
            model.choose_recompile_level("kernel", -1, samples) or -1
            for samples in (1, 30, 3000)
        ]
        assert levels == sorted(levels)

    def test_never_suggests_downgrade(self, model):
        level = model.choose_recompile_level("kernel", 2, 100_000)
        assert level is None


class TestIdealStrategy:
    @pytest.fixture
    def model(self, hot_program):
        jit = JITCompiler(hot_program, DEFAULT_CONFIG)
        return CostBenefitModel(jit, DEFAULT_CONFIG.sample_interval)

    def test_tiny_work_stays_baseline(self, model):
        assert model.ideal_level("kernel", 100.0) == -1

    def test_huge_work_reaches_top_level(self, model):
        assert model.ideal_level("kernel", 1e9) == 2

    def test_ideal_monotone_in_work(self, model):
        levels = [
            model.ideal_level("kernel", w)
            for w in (1e2, 1e4, 1e5, 1e6, 1e7, 1e9)
        ]
        assert levels == sorted(levels)

    def test_ideal_strategy_covers_invoked_methods(self, hot_program, model):
        _, profile = run_program(hot_program, args=(300,))
        strategy = model.ideal_strategy(profile)
        assert set(strategy.levels) == {"main", "kernel"}

    def test_ideal_minimizes_total_cost(self, model):
        """Brute-force check of the argmin over a work sweep."""
        jit = model.jit
        for work in (1e3, 5e4, 2e5, 4e6):
            best = model.ideal_level("kernel", work)
            costs = {
                level: (
                    (jit.compile_cost("kernel", level) if level != -1 else 0.0)
                    + work * jit.speed_factor("kernel", level)
                )
                for level in (-1, 0, 1, 2)
            }
            assert costs[best] == min(costs.values())
