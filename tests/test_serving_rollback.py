"""Model versioning with automatic rollback (docs/robustness.md).

Every swapped-in generation serves a probation: its first window of
learned runs must defend the pre-swap accuracy baseline or the tenant
restores the last generation that passed — transactionally in memory,
crash-safely on disk (the envelope's atomic publish means a crash
mid-rollback leaves a whole old-or-new state file, never a torn one).
Repeated rollbacks trip a watchdog that quarantines the state artifact
and forces a re-train from the recent window. Every decision lands in
the degradation ledger and, through the server, in telemetry.
"""

import asyncio
import json

import pytest

from repro.core import EvolvableVM
from repro.core.records import state_to_dict
from repro.experiments.telemetry import TelemetryLog, validate_event
from repro.resilience.faults import FaultPlan, FaultyFS
from repro.serving import FleetServer, ModelRegistry, Tenant

TRAIN = ["-m 1 -n 50", "-m 2 -n 1200", "-m 1 -n 1200", "-m 2 -n 50",
         "-m 1 -n 50", "-m 2 -n 1200"]


def _tenant(toy_app, registry, **kwargs):
    kwargs.setdefault("refit_interval", None)
    kwargs.setdefault("probation_window", 2)
    kwargs.setdefault("probation_margin", 1.0)
    kwargs.setdefault("max_rollbacks", 99)
    return Tenant(toy_app, registry=registry, **kwargs)


def _train(tenant, n=len(TRAIN)):
    for index in range(n):
        tenant.run(TRAIN[index % len(TRAIN)], seed=index)


def _close_probation(tenant, seed0=100):
    """Run learned runs until the active probation window closes."""
    records = []
    for index in range(tenant.probation_window):
        payload = tenant.run(TRAIN[index % len(TRAIN)], seed=seed0 + index)
        records.append(payload["rollback"])
    return records


class TestProbation:
    def test_passing_probation_sets_rollback_target(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = _tenant(toy_app, registry)
        assert tenant._last_good is None  # cold boot: nothing trustworthy
        _train(tenant)
        swap = tenant.swap()
        assert swap["probation"] is True
        assert tenant.stats()["on_probation"] is True
        records = _close_probation(tenant)
        assert records == [None, None]  # margin 1.0: always defends
        assert tenant._last_good is not None
        assert tenant.stats()["on_probation"] is False
        assert tenant.rollbacks_total == 0

    def test_disabled_probation_never_arms(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = _tenant(toy_app, registry, probation_window=None)
        _train(tenant)
        assert tenant.swap()["probation"] is False
        assert tenant.stats()["on_probation"] is False


class TestRollback:
    def _flunked(self, toy_app, registry, **kwargs):
        """A tenant one failed probation deep: trained, one generation
        passed probation (the rollback target), then a fresh swap whose
        baseline is doctored unreachably high."""
        tenant = _tenant(toy_app, registry, **kwargs)
        _train(tenant)
        tenant.swap()
        _close_probation(tenant)  # generation 1 becomes last-good
        tenant.swap()
        tenant._probation["baseline"] = 3.0  # mean accuracy <= 1 < 3 - margin
        return tenant

    def test_failed_probation_restores_last_good(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = self._flunked(toy_app, registry)
        last_good = json.loads(json.dumps(tenant._last_good))
        records = _close_probation(tenant, seed0=200)
        record = records[-1]
        assert record is not None
        assert record["from_generation"] == 2
        assert record["to_generation"] == 3  # a rollback is a deployment
        assert record["watchdog"] is False
        assert tenant.rollbacks_total == 1
        assert registry.rollbacks["toy"] == 1
        # The VM is the last-good generation again, bit for bit.
        restored = state_to_dict(tenant.vm)
        assert restored["confidence"] == last_good["confidence"]
        assert restored["run_count"] == last_good["run_count"]
        assert registry.report.count(
            component="serving", action="rollback") == 1

    def test_rollback_state_survives_restart(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = self._flunked(toy_app, registry)
        _close_probation(tenant, seed0=200)
        rolled_back = state_to_dict(tenant.vm)
        fresh = EvolvableVM(toy_app)
        registry2 = ModelRegistry(tmp_path / "reg")
        assert registry2.load_into(fresh) is True
        assert state_to_dict(fresh)["run_count"] == rolled_back["run_count"]
        assert state_to_dict(fresh)["confidence"] == (
            rolled_back["confidence"]
        )

    def test_cold_tenant_flunk_keeps_model(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = _tenant(toy_app, registry)
        _train(tenant)
        tenant.swap()  # first generation ever: no last-good yet
        tenant._probation["baseline"] = 3.0
        record = _close_probation(tenant)[-1]
        assert record == {
            "from_generation": 1,
            "to_generation": None,
            "watchdog": False,
        }
        assert tenant.rollbacks_total == 0
        assert registry.report.count(
            component="serving", action="rollback-skipped") == 1
        # The flunked model keeps serving (better than wiping learning).
        assert tenant.run(TRAIN[0], seed=999)["result"] is not None

    def test_crash_mid_rollback_leaves_whole_state(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = self._flunked(toy_app, registry)
        on_disk_before = registry.state_path("toy").read_bytes()
        # Disk dies before the rollback's persist: the envelope's atomic
        # publish fails whole, so the prior artifact is untouched.
        registry.fs = FaultyFS(FaultPlan(io_error_write=1.0))
        record = _close_probation(tenant, seed0=200)[-1]
        assert record is not None and record["to_generation"] == 3
        assert registry.report.count(
            component="state", action="store-failed") >= 1
        assert registry.state_path("toy").read_bytes() == on_disk_before
        # The surviving artifact is a whole generation: it restores.
        fresh = EvolvableVM(toy_app)
        registry2 = ModelRegistry(tmp_path / "reg")
        assert registry2.load_into(fresh) is True
        assert registry2.report.count(action="quarantine") == 0


class TestWatchdog:
    def test_repeated_rollbacks_force_retrain(self, toy_app, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        tenant = _tenant(toy_app, registry, max_rollbacks=1)
        _train(tenant)
        tenant.swap()
        _close_probation(tenant)  # pass: rollback target armed
        generation = tenant.generation
        tenant.swap()
        tenant._probation["baseline"] = 3.0
        record = _close_probation(tenant, seed0=200)[-1]
        assert record["watchdog"] is True
        assert tenant.retrains_total == 1
        assert tenant.rollbacks_total == 1
        # Rollback deployment + forced-retrain deployment: two bumps.
        assert tenant.generation == generation + 3
        # The stale last-good is demoted; the re-train must re-earn it.
        assert tenant._last_good is None
        assert tenant.stats()["on_probation"] is True
        report = registry.report
        assert report.count(component="serving", action="rollback") == 1
        assert report.count(
            component="serving", action="forced-retrain") == 1
        assert report.count(action="quarantine") == 1
        quarantined = list((tmp_path / "reg" / ".quarantine").iterdir())
        names = sorted(p.name for p in quarantined)
        assert any(n.endswith(".state") for n in names)
        assert any(n.endswith(".reason.json") for n in names)


class TestServerSurface:
    def test_rollback_reaches_stats_and_telemetry(self, toy_app, tmp_path):
        log_path = tmp_path / "serve.jsonl"

        async def scenario():
            registry = ModelRegistry(tmp_path / "reg")
            tenant = _tenant(toy_app, registry)
            telemetry = TelemetryLog(log_path)
            server = FleetServer([tenant], registry, telemetry=telemetry)
            await server.start()
            try:
                for index, cmd in enumerate(TRAIN):
                    await server.submit(
                        {"op": "run", "app": "toy", "cmdline": cmd,
                         "seed": index}
                    )
                await server.submit({"op": "swap", "app": "toy"})
                for index in range(2):
                    await server.submit(
                        {"op": "run", "app": "toy",
                         "cmdline": TRAIN[index], "seed": 100 + index}
                    )
                await server.submit({"op": "swap", "app": "toy"})
                tenant._probation["baseline"] = 3.0
                last = None
                for index in range(2):
                    last = await server.submit(
                        {"op": "run", "app": "toy",
                         "cmdline": TRAIN[index], "seed": 200 + index}
                    )
                return last, server.stats.snapshot()
            finally:
                await server.stop()
                telemetry.close()

        response, stats = asyncio.run(scenario())
        assert response["status"] == 200
        assert response["rollback"]["to_generation"] == 3
        assert stats["rollbacks"] == 1
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        rollbacks = [e for e in events if e["event"] == "serve_rollback"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["app"] == "toy"
        assert rollbacks[0]["from_generation"] == 2
        assert rollbacks[0]["to_generation"] == 3
        assert rollbacks[0]["watchdog"] is False
        for event in events:
            assert validate_event(event) == [], event
