"""Shared fixtures: small programs and applications used across test files."""

from __future__ import annotations

import pytest

from repro.core import Application
from repro.lang import compile_source
from repro.vm import MethodBuilder, Program
from repro.xicl import parse_spec


@pytest.fixture
def loop_program() -> Program:
    """sum of squares 0..n-1 via a helper call — exercises calls + loops."""
    source = """
    fn square(x) { return x * x; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = s + square(i); }
      return s;
    }
    """
    return compile_source(source, name="loop")


@pytest.fixture
def hot_program() -> Program:
    """A burn-heavy kernel called many times — recompilation pays off."""
    source = """
    fn kernel(x) { burn(2000); return x + 1; }
    fn main(n) {
      var s = 0;
      for (var i = 0; i < n; i = i + 1) { s = kernel(s); }
      return s;
    }
    """
    return compile_source(source, name="hot")


@pytest.fixture
def identity_method():
    return MethodBuilder("ident", num_params=1).load(0).ret().build()


@pytest.fixture
def toy_app() -> Application:
    """A two-kernel input-sensitive application with an XICL spec."""
    source = """
    fn light(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { burn(250); s = s + i; } return s; }
    fn heavy(n) { var s = 0; for (var i = 0; i < n; i = i + 1) { burn(800); s = s + i * i; } return s; }
    fn main(mode, n) {
      if (mode == 1) { return light(n); }
      return heavy(n);
    }
    """
    program = compile_source(source, name="toy")
    spec = parse_spec(
        """
        option {name=-m; type=NUM; attr=VAL; default=1; has_arg=y}
        option {name=-n; type=NUM; attr=VAL; default=100; has_arg=y}
        """
    )

    def launcher(tokens, fvector, fs):
        return (int(fvector["-m.VAL"]), int(fvector["-n.VAL"]))

    return Application(name="toy", program=program, spec=spec, launcher=launcher)
