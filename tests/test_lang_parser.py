"""Unit tests for the MiniLang parser."""

import pytest

from repro.lang import ParseError, parse
from repro.lang import ast


def parse_fn(body, params=""):
    module = parse(f"fn main({params}) {{ {body} }}")
    return module.function("main")


def only_stmt(body, params=""):
    statements = parse_fn(body, params).body.statements
    assert len(statements) == 1
    return statements[0]


class TestDeclarations:
    def test_function_with_params(self):
        fn = parse("fn add(a, b) { return a + b; }").function("add")
        assert fn.params == ("a", "b")

    def test_multiple_functions(self):
        module = parse("fn a() { return 1; } fn b() { return 2; }")
        assert [f.name for f in module.functions] == ["a", "b"]

    def test_var_decl(self):
        stmt = only_stmt("var x = 5;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"
        assert isinstance(stmt.init, ast.IntLit)

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse("fn main() { var x = 5 }")

    def test_unterminated_block_rejected(self):
        with pytest.raises(ParseError, match="unterminated|expected"):
            parse("fn main() { return 1;")


class TestStatements:
    def test_if_else_chain(self):
        stmt = only_stmt("if (1) { return 1; } else if (2) { return 2; } else { return 3; }")
        assert isinstance(stmt, ast.If)
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.else_body is not None

    def test_while(self):
        stmt = only_stmt("while (x < 3) { x = x + 1; }", params="x")
        assert isinstance(stmt, ast.While)

    def test_for_full(self):
        stmt = only_stmt("for (var i = 0; i < 10; i = i + 1) { burn(1); }")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_all_parts_optional(self):
        stmt = only_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        stmt = only_stmt("while (1) { if (1) { break; } continue; }")
        inner = stmt.body.statements
        assert isinstance(inner[0].then_body.statements[0], ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_index_assignment(self):
        stmt = only_stmt("a[i + 1] = 5;", params="a, i")
        assert isinstance(stmt, ast.IndexAssign)

    def test_expression_statement(self):
        stmt = only_stmt("burn(10);")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_return_without_value(self):
        stmt = only_stmt("return;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None

    def test_bare_block(self):
        stmt = only_stmt("{ var x = 1; burn(x); }")
        assert isinstance(stmt, ast.Block)
        assert len(stmt.statements) == 2

    def test_nested_bare_blocks(self):
        stmt = only_stmt("{ { burn(1); } }")
        assert isinstance(stmt, ast.Block)
        assert isinstance(stmt.statements[0], ast.Block)


class TestExpressions:
    def expr(self, text, params="a, b, c"):
        stmt = only_stmt(f"return {text};", params=params)
        return stmt.value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        e = self.expr("a < b && b < c")
        assert e.op == "&&"
        assert e.left.op == "<"

    def test_parentheses_override(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_left_associativity(self):
        e = self.expr("a - b - c")
        assert e.op == "-"
        assert e.left.op == "-"
        assert isinstance(e.right, ast.Name)

    def test_unary_chains(self):
        e = self.expr("--a")
        assert isinstance(e, ast.Unary)
        assert isinstance(e.operand, ast.Unary)

    def test_not_operator(self):
        e = self.expr("!a")
        assert e.op == "!"

    def test_call_args(self):
        e = self.expr("min(a, b + 1)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_nested_indexing(self):
        e = self.expr("a[b[c]]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.index, ast.Index)

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as err:
            parse("fn main() {\n  return + ;\n}")
        assert err.value.line == 2
