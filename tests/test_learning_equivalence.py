"""Engine-equivalence suite for the learning layer.

The fast trainer (shared presort + sweep-line split search) must be
**bit-identical** to the reference builder: same splits, same thresholds,
same tie-breaks, same float gains, same missing-value routing, same
pruning outcomes — over a fixed corpus of edge-case datasets and ≥50
seeded random datasets with mixed numeric/categorical/missing features.
This is the learning-layer counterpart of the VM's
``test_engine_equivalence.py``.
"""

from random import Random

import pytest

from repro.learning import (
    ClassificationTree,
    Dataset,
    Row,
    TrainingMatrix,
    TreeParams,
    cross_validated_accuracy,
)
from repro.xicl import FeatureVector

N_RANDOM_DATASETS = 50

DEEP = TreeParams(max_depth=40, min_samples_split=2, min_samples_leaf=1)


def vec(items):
    v = FeatureVector()
    for name, value in items:
        v.append_value(name, value)
    return v


def kv(**features):
    return vec(list(features.items()))


def random_pairs(seed: int, n: int = 90):
    """Mixed numeric/categorical features, ~7% missing per feature,
    labels correlated with the features plus noise."""
    rng = Random(seed)
    cats = ["red", "green", "blue", "odd one"]
    pairs = []
    for _ in range(n):
        items = []
        if rng.random() > 0.07:
            items.append(("n_int", rng.randint(0, 12)))
        if rng.random() > 0.07:
            items.append(("n_float", rng.uniform(-4.0, 4.0)))
        if rng.random() > 0.07:
            items.append(("cat", rng.choice(cats)))
        if rng.random() > 0.07:
            items.append(("n_dup", rng.choice([1, 1, 2, 3, 3])))
        signal = sum(1 for name, value in items if name == "n_int" and value > 6)
        label = ["a", "b", "c"][(signal + rng.randint(0, 2)) % 3]
        pairs.append((vec(items), label))
    return pairs


def random_dataset(seed: int, n: int = 90) -> Dataset:
    return Dataset.from_pairs(random_pairs(seed, n))


def assert_nodes_identical(a, b, path="root"):
    """Recursive structural equality, including bitwise-equal gains."""
    assert (a is None) == (b is None), path
    if a is None:
        return
    assert a.label == b.label, f"{path}: label"
    assert a.counts == b.counts, f"{path}: counts"
    assert a.size == b.size, f"{path}: size"
    assert (a.split is None) == (b.split is None), f"{path}: leafness"
    if a.split is not None:
        assert a.split.column == b.split.column, f"{path}: split column"
        assert a.split.column_index == b.split.column_index, path
        assert a.split.kind == b.split.kind, f"{path}: split kind"
        assert a.split.threshold == b.split.threshold, f"{path}: threshold"
        assert a.split.gain == b.split.gain, (
            f"{path}: gain not bitwise equal "
            f"({a.split.gain!r} != {b.split.gain!r})"
        )
    assert_nodes_identical(a.left, b.left, path + "/y")
    assert_nodes_identical(a.right, b.right, path + "/n")


def fit_both(dataset, params=DEEP):
    ref = ClassificationTree(params, engine="reference").fit(dataset)
    fast = ClassificationTree(params, engine="fast").fit(dataset)
    return ref, fast


# -- corpus: hand-picked edge cases -----------------------------------------

def corpus_datasets():
    # Pure numeric signal.
    grid = Dataset()
    for x in range(11):
        for y in range(3):
            grid.add(kv(x=x, y=y), "low" if x <= 5 else "high")
    yield "grid", grid

    # Categorical only.
    colors = Dataset()
    for color, label in [("red", 1), ("red", 1), ("blue", 2), ("green", 2)]:
        for _ in range(3):
            colors.add(kv(color=color), label)
    yield "colors", colors

    # Single row / pure labels.
    pure = Dataset()
    for x in range(10):
        pure.add(kv(x=x), "only")
    yield "pure", pure

    # Tie-break stress: two features carrying identical signal — the
    # first column must win in both engines.
    ties = Dataset()
    for x in range(12):
        ties.add(kv(a=x, b=x), "lo" if x < 6 else "hi")
    yield "ties", ties

    # Duplicated values (groups larger than one) + missing values.
    dups = Dataset()
    rng = Random(7)
    for i in range(60):
        items = []
        if i % 9 != 0:
            items.append(("v", rng.choice([1, 1, 1, 2, 5, 5])))
        items.append(("c", rng.choice(["p", "q"])))
        dups.add(vec(items), "x" if i % 3 else "y")
    yield "dups-missing", dups

    # Adjacent floats: midpoint (a+b)/2 can round onto b.
    close = Dataset()
    a = 1.0
    b = float.fromhex("0x1.0000000000001p+0")  # next float up from 1.0
    for i in range(8):
        close.add(kv(v=a if i % 2 else b), "s" if i % 2 else "t")
    for i in range(8):
        close.add(kv(v=2.0 + i), "s" if i < 4 else "t")
    yield "adjacent-floats", close

    # Mixed-kind wide dataset with label noise.
    noisy = Dataset()
    rng = Random(13)
    for _ in range(100):
        noisy.add(
            kv(
                x=rng.uniform(0, 100),
                n=rng.uniform(0, 100),
                c=rng.choice(["u", "v", "w"]),
            ),
            ("low" if rng.random() < 0.12 else "high")
            if rng.random() < 0.5
            else "low",
        )
    yield "noisy", noisy


@pytest.mark.parametrize(
    "name,dataset", list(corpus_datasets()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_corpus_bit_identical(name, dataset):
    ref, fast = fit_both(dataset)
    assert_nodes_identical(ref.root, fast.root)
    assert ref.render() == fast.render()
    assert ref.used_features() == fast.used_features()


# -- seeded random datasets --------------------------------------------------

@pytest.mark.parametrize("seed", range(N_RANDOM_DATASETS))
def test_random_datasets_bit_identical(seed):
    dataset = random_dataset(seed)
    ref, fast = fit_both(dataset)
    assert_nodes_identical(ref.root, fast.root)

    # Missing-value routing at prediction time: identical answers,
    # including vectors with absent features.
    rng = Random(seed + 10_000)
    for _ in range(25):
        items = []
        if rng.random() > 0.4:
            items.append(("n_int", rng.randint(-2, 14)))
        if rng.random() > 0.4:
            items.append(("n_float", rng.uniform(-6.0, 6.0)))
        if rng.random() > 0.4:
            items.append(("cat", rng.choice(["red", "blue", "nope"])))
        query = vec(items)
        assert ref.predict(query) == fast.predict(query)


@pytest.mark.parametrize("seed", range(0, N_RANDOM_DATASETS, 5))
def test_random_datasets_default_params_identical(seed):
    # The production hyper-parameters (depth cap, split minima) hit the
    # early-stop paths; they must agree too.
    ref, fast = fit_both(random_dataset(seed), TreeParams())
    assert_nodes_identical(ref.root, fast.root)


@pytest.mark.parametrize("seed", range(0, N_RANDOM_DATASETS, 5))
def test_pruning_identical(seed):
    dataset = random_dataset(seed)
    ref, fast = fit_both(dataset)
    validation = [
        Row(dataset.vector_values(v), label)
        for v, label in random_pairs(seed + 500, 60)
    ]
    assert ref.prune_with(list(validation)) == fast.prune_with(list(validation))
    assert_nodes_identical(ref.root, fast.root)


@pytest.mark.parametrize("seed", range(0, N_RANDOM_DATASETS, 5))
def test_fold_subset_fits_identical(seed):
    """fit_indices over a shared full-dataset matrix == subset fits."""
    dataset = random_dataset(seed)
    n = len(dataset)
    matrix = TrainingMatrix.from_dataset(dataset)
    for offset in range(3):
        indices = [i for i in range(n) if i % 3 != offset]
        ref = ClassificationTree(DEEP, engine="reference").fit_indices(
            dataset, indices
        )
        fast = ClassificationTree(DEEP, engine="fast").fit_indices(
            dataset, indices, matrix=matrix
        )
        assert_nodes_identical(ref.root, fast.root)
        # And against the pre-existing subset-dataset path.
        subset = ClassificationTree(DEEP, engine="reference").fit(
            dataset.subset(indices)
        )
        assert subset.render() == fast.render()


@pytest.mark.parametrize("seed", range(0, N_RANDOM_DATASETS, 10))
def test_cross_validation_identical(seed):
    dataset = random_dataset(seed)
    assert cross_validated_accuracy(
        dataset, DEEP, engine="reference"
    ) == cross_validated_accuracy(dataset, DEEP, engine="fast")
