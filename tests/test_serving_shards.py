"""Sharded multi-process serving: partition, router, death, identity.

Four contracts (docs/serving.md, "Sharding and batching"):

1. **Deterministic partition** — :func:`shard_of` is a pure function of
   the tenant name (sha256, never the salted ``hash()``), so a respawned
   worker reconstructs exactly its predecessor's fleet.
2. **Router semantics** — the :class:`ShardRouter` duck-types the
   :class:`FleetServer` surface: schema 400s, tenant 404s, merged fleet
   stats, ordered per-tenant submission.
3. **Death is degradation, never a hang** — a killed worker fails its
   in-flight requests with 500s, lands a degradation record, and its
   replacement serves the same tenants from the envelope.
4. **Bit-identity at every shard count** — the sharded study replays one
   stream at 1/2 shards (and through a forced kill) and diffs every
   tenant's response stream against serial replay.
"""

import asyncio

import pytest

from repro.experiments.server_study import (
    build_tenant_apps,
    run_sharded_study,
)
from repro.experiments.telemetry import serve_event, validate_event
from repro.serving import FleetServer, ModelRegistry, ShardRouter, build_fleet, shard_of
from repro.serving.protocol import SHARD_CONTROL_OPS

pytestmark = pytest.mark.serve


class TestShardOf:
    def test_deterministic_and_in_range(self):
        names = [f"svc-{i}" for i in range(50)]
        for shards in (1, 2, 3, 4, 7):
            for name in names:
                first = shard_of(name, shards)
                assert first == shard_of(name, shards)
                assert 0 <= first < max(1, shards)

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0
        assert shard_of("anything", 0) == 0

    def test_not_process_salted(self):
        # Pinned values: if these ever change, respawned workers would
        # partition differently than their predecessors — state loss.
        assert shard_of("search-svc", 2) == 1
        assert shard_of("render-svc", 2) == 0
        assert shard_of("stats-svc", 4) == shard_of("stats-svc", 4)

    def test_every_shard_reachable_at_fleet_scale(self):
        names = [f"tenant-{i:03d}" for i in range(200)]
        owners = {shard_of(name, 4) for name in names}
        assert owners == {0, 1, 2, 3}


class TestShardTelemetryEvents:
    def test_serve_batch_event_validates(self):
        event = serve_event(
            "serve_batch", app="search-svc", size=7, queue_depth=3
        )
        assert validate_event(event) == []

    def test_serve_shard_event_validates(self):
        event = serve_event(
            "serve_shard",
            shard=1,
            action="respawn",
            tenants=["search-svc"],
            detail="cold-started from the envelope after worker death",
        )
        assert validate_event(event) == []

    def test_control_ops_never_valid_public_requests(self):
        from repro.serving.protocol import validate_request

        for op in SHARD_CONTROL_OPS:
            assert validate_request({"op": op})


class TestShardRouter:
    def test_router_surface_and_merged_stats(self):
        async def scenario():
            router = ShardRouter(
                build_tenant_apps, (3,), shards=2, registry_dir=None,
                refit_interval=None,
            )
            await router.start()
            bad = await router.submit({"op": "nope"})
            unknown = await router.submit({
                "op": "predict", "app": "ghost",
                "cmdline": "-e search -b 512",
            })
            responses = [
                await router.submit({
                    "op": "run", "app": "search-svc",
                    "cmdline": "-e search -b 512", "seed": i,
                })
                for i in range(3)
            ]
            ok = await router.submit({
                "op": "predict", "app": "stats-svc",
                "cmdline": "-e stats -b 2048",
            })
            stats = await router.submit({"op": "stats"})
            final = await router.stop()
            return bad, unknown, responses, ok, stats, final

        bad, unknown, responses, ok, stats, final = asyncio.run(scenario())
        assert bad["status"] == 400
        assert unknown["status"] == 404
        assert set(unknown["known_tenants"]) == {
            app.name for app in build_tenant_apps(3)
        }
        assert all(r["status"] == 200 for r in responses)
        assert ok["status"] == 200 and "levels" in ok
        # Fleet stats merge the per-shard servers.
        assert stats["status"] == 200
        assert len(stats["shards"]) == 2
        assert all(shard["alive"] for shard in stats["shards"])
        owned = [name for shard in stats["shards"] for name in shard["tenants"]]
        assert sorted(owned) == sorted(
            app.name for app in build_tenant_apps(3)
        )
        assert stats["server"]["accepted"] >= 4
        assert set(stats["server"]["batch_sizes"]) == {"count", "max", "mean"}
        # Shutdown returns the merged final payload with latencies.
        assert final["server"]["served"] >= 4
        assert final["server"]["latencies_ms"]

    def test_kill_respawn_serves_same_tenants(self, tmp_path):
        async def scenario():
            router = ShardRouter(
                build_tenant_apps, (4,), shards=2,
                registry_dir=str(tmp_path), refit_interval=None,
            )
            await router.start()
            victim_app = "search-svc"
            victim = shard_of(victim_app, 2)
            for i in range(3):
                response = await router.submit({
                    "op": "run", "app": victim_app,
                    "cmdline": "-e search -b 512", "seed": i,
                })
                assert response["status"] == 200
            await router.sync()
            killed_tenants = router.kill_shard(victim)
            assert victim_app in killed_tenants
            await router.wait_respawn(victim)
            after = await router.submit({
                "op": "predict", "app": victim_app,
                "cmdline": "-e search -b 512",
            })
            await router.stop()
            return router, after

        router, after = asyncio.run(scenario())
        # The replacement answers for the same tenants; the death landed
        # a degradation record, not a hang or a silent retry.
        assert after["status"] == 200
        assert router._shards[shard_of("search-svc", 2)].respawns == 1
        events = [
            event for event in router.report.events
            if event.action == "shard-respawn"
        ]
        assert len(events) == 1
        assert "cold-started from the envelope" in events[0].detail


class TestDeterministic429Ordering:
    def test_flooded_predicts_shed_by_submission_order(self, toy_app):
        """Satellite contract: under a full queue the batched predict
        path sheds deterministically — admission is exactly the first
        ``queue_bound`` submissions, in order, every time."""
        bound, flood = 3, 12

        def flood_once():
            async def scenario():
                registry = ModelRegistry(None)
                server = FleetServer(
                    build_fleet([toy_app], registry=registry,
                                refit_interval=None),
                    registry,
                    queue_bound=bound,
                )
                await server.start()
                # Train enough that predicts exercise real models.
                for i in range(4):
                    await server.submit({
                        "op": "run", "app": "toy",
                        "cmdline": f"-m {1 + i % 2} -n {50 + 1150 * (i % 2)}",
                        "seed": i,
                    })
                futures = [
                    server.submit_nowait({
                        "op": "predict", "app": "toy",
                        "cmdline": f"-m 1 -n {100 + i}", "id": i,
                    })
                    for i in range(flood)
                ]
                responses = await asyncio.gather(*futures)
                await server.stop(persist=False)
                return server, responses

            return asyncio.run(scenario())

        server, first = flood_once()
        _, second = flood_once()
        statuses = [response["status"] for response in first]
        # Order is deterministic: the first `bound` submissions are the
        # accepted ones; everything after sheds. No interleaving.
        assert statuses == [200] * bound + [429] * (flood - bound)
        assert [r["status"] for r in second] == statuses
        assert [r["id"] for r in first] == list(range(flood))
        # The accepted run drained as one batched kernel hop.
        assert server.stats.shed == flood - bound
        assert server.stats.batch_hops >= 1
        assert server.stats.batch_size_max <= server.batch_max
        dist = server.stats.to_dict()["batch_sizes"]
        assert dist["count"] == server.stats.batch_hops
        assert dist["max"] == server.stats.batch_size_max
        assert dist["mean"] > 0


class TestShardedStudy:
    def test_bit_identical_at_every_count_and_through_kill(self, tmp_path):
        result = run_sharded_study(
            seed=3, requests=80, tenants=4, shard_counts=(1, 2),
            refit_interval=10,
        )
        assert result.points and [p["shards"] for p in result.points] == [1, 2]
        for point in result.points:
            assert point["identical"], point["mismatches"][:3]
        assert result.kill_shards == 2
        assert result.kill_respawns >= 1
        assert result.kill_degradations >= 1
        assert result.kill_identical, result.kill_mismatches[:3]
        assert result.all_identical
