"""Unit tests for the instruction set definitions."""

import pytest

from repro.vm import BASE_COST, BASE_COST_TABLE, Instr, Op
from repro.vm.instructions import (
    BINARY_OPS,
    JUMP_OPS,
    PURE_OPS,
    UNARY_OPS,
    stack_effect,
)


def test_every_opcode_has_a_base_cost():
    assert len(BASE_COST) == len(Op)
    for op in Op:
        assert op in BASE_COST_TABLE, f"{op.name} missing from BASE_COST_TABLE"
        assert BASE_COST[op] >= 1


def test_base_cost_list_matches_table():
    # The interpreter indexes the flat list by int opcode; it must stay in
    # lockstep with the canonical per-opcode table.
    for op in Op:
        assert BASE_COST[int(op)] == BASE_COST_TABLE[op]


def test_base_costs_reflect_relative_latency():
    assert BASE_COST[Op.CALL] > BASE_COST[Op.ADD] > BASE_COST[Op.CONST] - 1
    assert BASE_COST[Op.DIV] > BASE_COST[Op.MUL] > BASE_COST[Op.ADD] - 1


def test_jump_ops_set():
    assert JUMP_OPS == {Op.JMP, Op.JZ, Op.JNZ}


def test_binary_ops_stack_effect():
    for op in BINARY_OPS:
        assert stack_effect(Instr(op)) == (2, 1)


def test_unary_ops_stack_effect():
    for op in UNARY_OPS:
        assert stack_effect(Instr(op)) == (1, 1)


@pytest.mark.parametrize(
    "instr,expected",
    [
        (Instr(Op.CONST, 5), (0, 1)),
        (Instr(Op.LOAD, 0), (0, 1)),
        (Instr(Op.STORE, 0), (1, 0)),
        (Instr(Op.POP), (1, 0)),
        (Instr(Op.DUP), (1, 2)),
        (Instr(Op.SWAP), (2, 2)),
        (Instr(Op.JMP, 0), (0, 0)),
        (Instr(Op.JZ, 0), (1, 0)),
        (Instr(Op.JNZ, 0), (1, 0)),
        (Instr(Op.RET), (1, 0)),
        (Instr(Op.NEWARR), (1, 1)),
        (Instr(Op.ALOAD), (2, 1)),
        (Instr(Op.ASTORE), (3, 0)),
        (Instr(Op.ALEN), (1, 1)),
        (Instr(Op.NOP), (0, 0)),
    ],
)
def test_stack_effects(instr, expected):
    assert stack_effect(instr) == expected


def test_call_stack_effect_uses_argc():
    assert stack_effect(Instr(Op.CALL, ("f", 3))) == (3, 1)
    assert stack_effect(Instr(Op.INTRIN, ("burn", 1))) == (1, 1)
    assert stack_effect(Instr(Op.CALL, ("g", 0))) == (0, 1)


def test_pure_ops_have_no_side_effects():
    # Pure ops must not include stores, calls, or array mutation.
    assert Op.STORE not in PURE_OPS
    assert Op.CALL not in PURE_OPS
    assert Op.ASTORE not in PURE_OPS
    assert Op.INTRIN not in PURE_OPS
    assert Op.CONST in PURE_OPS


def test_instr_repr():
    assert repr(Instr(Op.CONST, 7)) == "CONST 7"
    assert repr(Instr(Op.RET)) == "RET"
