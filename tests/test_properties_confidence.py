"""Property-based tests for the confidence tracker and strategy predictor.

The paper's update rule ``conf ← (1 − γ)·conf + γ·acc`` is a convex
combination, which gives three properties worth pinning for *all*
inputs, not just the examples the unit tests pick: the value never
leaves [0, 1], every update lands between the old value and the observed
accuracy, and under a constant accuracy stream the value approaches that
accuracy monotonically. The predictor tests pin the TH_c gate: below
threshold it must decline without consulting the models at all.
"""

import math

from hypothesis import given, strategies as st

import pytest

from repro.aos.strategy import LevelStrategy
from repro.core.confidence import ConfidenceTracker, DriftMonitor, PageHinkley
from repro.core.predictor import OverheadModel, StrategyPredictor
from repro.xicl.features import FeatureVector

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

#: Adversarial accuracy streams: arbitrary in-range values, biased by
#: hypothesis toward the boundary cases (all-zero collapses, 0/1
#: flapping) that stress the decay arithmetic hardest.
adversarial = st.lists(
    st.one_of(st.sampled_from([0.0, 1.0]), unit), max_size=60
)

#: Extreme decay rates: essentially-frozen through instantly-forgetting.
extreme_gamma = st.one_of(
    st.sampled_from([1e-12, 1e-6, 0.5, 1.0 - 1e-12, 1.0]),
    st.floats(min_value=1e-12, max_value=1.0, allow_nan=False),
)


class TestConfidenceProperties:
    @given(gamma=unit, accuracies=st.lists(unit, max_size=30))
    def test_value_stays_in_unit_interval(self, gamma, accuracies):
        tracker = ConfidenceTracker(gamma=gamma)
        for accuracy in accuracies:
            value = tracker.update(accuracy)
            assert 0.0 <= value <= 1.0

    @given(gamma=unit, start=unit, accuracy=unit)
    def test_update_is_a_convex_step_toward_accuracy(
        self, gamma, start, accuracy
    ):
        tracker = ConfidenceTracker(gamma=gamma, value=start)
        value = tracker.update(accuracy)
        lo, hi = min(start, accuracy), max(start, accuracy)
        assert lo - 1e-12 <= value <= hi + 1e-12

    @given(accuracy=unit, steps=st.integers(min_value=1, max_value=25))
    def test_constant_stream_converges_monotonically(self, accuracy, steps):
        # Paper default γ = 0.7: distance to the target accuracy shrinks
        # by the factor (1 − γ) every update, so it never increases.
        tracker = ConfidenceTracker(gamma=0.7)
        distance = abs(accuracy - tracker.value)
        for _ in range(steps):
            tracker.update(accuracy)
            new_distance = abs(accuracy - tracker.value)
            assert new_distance <= distance + 1e-12
            distance = new_distance

    @given(accuracies=st.lists(unit, min_size=1, max_size=20))
    def test_history_tracks_every_update(self, accuracies):
        tracker = ConfidenceTracker()
        for accuracy in accuracies:
            tracker.update(accuracy)
        assert len(tracker.history) == len(accuracies)
        assert tracker.history[-1] == tracker.value

    @given(
        accuracy=st.one_of(
            st.floats(max_value=-1e-9, allow_nan=False),
            st.floats(min_value=1.0 + 1e-9, allow_nan=False),
        )
    )
    def test_out_of_range_accuracy_rejected(self, accuracy):
        tracker = ConfidenceTracker()
        before = tracker.value
        with pytest.raises(ValueError):
            tracker.update(accuracy)
        assert tracker.value == before

    def test_out_of_range_gamma_rejected(self):
        with pytest.raises(ValueError):
            ConfidenceTracker(gamma=1.5)
        with pytest.raises(ValueError):
            ConfidenceTracker(threshold=-0.1)

    @given(value=unit, threshold=unit)
    def test_gate_is_strictly_above_threshold(self, value, threshold):
        tracker = ConfidenceTracker(threshold=threshold, value=value)
        assert tracker.confident == (value > threshold)


class TestAdversarialDecay:
    """Decay behavior under adversarial accuracy sequences.

    The drift layer leans on the decayed average staying numerically
    sane no matter what stream reality serves up: 0/1 flapping, long
    collapses, and decay rates at both extremes must never produce
    NaN/overflow, and recovery after a collapse must be monotone.
    """

    @given(gamma=extreme_gamma, accuracies=adversarial)
    def test_no_nan_or_overflow_at_extreme_decay_rates(
        self, gamma, accuracies
    ):
        tracker = ConfidenceTracker(gamma=gamma)
        for accuracy in accuracies:
            value = tracker.update(accuracy)
            assert math.isfinite(value)
            assert 0.0 <= value <= 1.0

    @given(gamma=extreme_gamma, prefix=adversarial)
    def test_recovery_after_collapse_is_monotone(self, gamma, prefix):
        # Whatever adversarial history came before, a perfect-accuracy
        # stream afterwards must pull confidence up monotonically —
        # recovery cannot oscillate.
        tracker = ConfidenceTracker(gamma=gamma)
        for accuracy in prefix:
            tracker.update(accuracy)
        previous = tracker.value
        for _ in range(20):
            value = tracker.update(1.0)
            assert value >= previous - 1e-12
            previous = value

    @given(prefix=adversarial, accuracy=unit)
    def test_gamma_one_forgets_instantly(self, prefix, accuracy):
        tracker = ConfidenceTracker(gamma=1.0)
        for value in prefix:
            tracker.update(value)
        assert tracker.update(accuracy) == accuracy

    @given(gamma=st.floats(min_value=1e-12, max_value=1.0, allow_nan=False),
           start=unit, accuracy=unit)
    def test_single_step_bounded_by_gamma(self, gamma, start, accuracy):
        tracker = ConfidenceTracker(gamma=gamma, value=start)
        value = tracker.update(accuracy)
        assert abs(value - start) <= gamma * abs(accuracy - start) + 1e-12


class TestPageHinkleyProperties:
    @given(level=unit, steps=st.integers(min_value=1, max_value=80))
    def test_constant_stream_never_fires(self, level, steps):
        detector = PageHinkley()
        assert not any(detector.update(level) for _ in range(steps))

    @given(stream=adversarial)
    def test_state_stays_finite_and_deficit_nonnegative(self, stream):
        detector = PageHinkley()
        for value in stream:
            detector.update(value)
            assert math.isfinite(detector.mean)
            assert math.isfinite(detector.cum)
            assert detector.cum >= 0.0

    @given(high_runs=st.integers(min_value=5, max_value=30))
    def test_collapse_always_fires_and_rearms(self, high_runs):
        detector = PageHinkley()
        assert not any(detector.update(0.9) for _ in range(high_runs))
        fired_at = None
        for index in range(40):
            if detector.update(0.0):
                fired_at = index
                break
        assert fired_at is not None
        # Re-armed at the post-shift level: deficit cleared, mean anchored.
        assert detector.cum == 0.0
        assert detector.mean == 0.0
        assert detector.n == 1
        # The new regime is its own baseline — no immediate re-fire.
        assert not any(detector.update(0.0) for _ in range(20))


class TestDriftMonitorProperties:
    @given(
        accs=st.dictionaries(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            unit,
            min_size=1,
            max_size=4,
        ),
        rounds=st.integers(min_value=1, max_value=10),
    )
    def test_observation_is_order_independent(self, accs, rounds):
        forward = DriftMonitor()
        backward = DriftMonitor()
        reversed_accs = dict(reversed(list(accs.items())))
        for _ in range(rounds):
            assert forward.observe(accs) == backward.observe(reversed_accs)
        assert forward.snapshot() == backward.snapshot()

    @given(stream=st.lists(unit, min_size=1, max_size=40))
    def test_smoothed_values_stay_in_unit_interval(self, stream):
        monitor = DriftMonitor()
        for accuracy in stream:
            monitor.observe({"m": accuracy})
            value = monitor.confidence_for("m")
            assert math.isfinite(value)
            assert 0.0 <= value <= 1.0

    def test_reset_clears_state_but_keeps_audit_counters(self):
        monitor = DriftMonitor()
        for _ in range(10):
            monitor.observe({"m": 0.9})
        for _ in range(30):
            monitor.observe({"m": 0.0})
        assert monitor.detections >= 1
        detections = monitor.detections
        events = list(monitor.events)
        monitor.reset()
        assert monitor.snapshot() == {}
        assert monitor.confidence_for("m") is None
        assert monitor.detections == detections
        assert monitor.events == events

    def test_out_of_range_accuracy_rejected(self):
        monitor = DriftMonitor()
        with pytest.raises(ValueError):
            monitor.observe({"m": 1.5})


class _StubModels:
    """Stands in for ModelBuilder: fixed model count, canned prediction."""

    def __init__(self, strategy: LevelStrategy, size: int = 1):
        self.strategy = strategy
        self.size = size
        self.predict_calls = 0

    def __len__(self) -> int:
        return self.size

    def predict(self, fvector) -> LevelStrategy:
        self.predict_calls += 1
        return self.strategy


class TestPredictorGate:
    FVECTOR = FeatureVector()

    def _predictor(self, value: float, models: _StubModels):
        confidence = ConfidenceTracker(threshold=0.7, value=value)
        return StrategyPredictor(models, confidence)

    @given(value=unit)
    def test_below_threshold_never_touches_models(self, value):
        models = _StubModels(LevelStrategy({"m": 2}))
        predictor = self._predictor(value, models)
        strategy, cycles = predictor.maybe_predict(self.FVECTOR)
        if value <= 0.7:
            assert strategy is None and cycles == 0.0
            assert models.predict_calls == 0
        else:
            assert strategy is not None
            assert models.predict_calls == 1

    def test_confident_but_no_models_declines(self):
        predictor = self._predictor(0.9, _StubModels(LevelStrategy({}), size=0))
        assert predictor.maybe_predict(self.FVECTOR) == (None, 0.0)

    def test_confident_but_empty_strategy_declines(self):
        predictor = self._predictor(0.9, _StubModels(LevelStrategy({})))
        assert predictor.maybe_predict(self.FVECTOR) == (None, 0.0)

    def test_prediction_cost_scales_with_strategy_size(self):
        strategy = LevelStrategy({"a": 1, "b": 2, "c": 0})
        predictor = self._predictor(0.9, _StubModels(strategy))
        predicted, cycles = predictor.maybe_predict(self.FVECTOR)
        assert predicted is strategy
        assert cycles == OverheadModel().per_predicted_method_cycles * 3

    def test_posterior_predict_ignores_the_gate(self):
        strategy = LevelStrategy({"m": 1})
        models = _StubModels(strategy)
        predictor = self._predictor(0.0, models)  # gate firmly closed
        assert predictor.posterior_predict(self.FVECTOR) is strategy
        assert models.predict_calls == 1
