"""Tests for profile reports."""

import pytest

from repro.aos import AdaptiveController
from repro.vm import Interpreter, run_program
from repro.vm.report import compare_profiles, compile_timeline, profile_report


@pytest.fixture
def profiles(hot_program):
    _, base = run_program(hot_program, args=(800,))
    interp = Interpreter(hot_program)
    AdaptiveController(interp)
    adaptive = interp.run((800,))
    return base, adaptive


class TestProfileReport:
    def test_mentions_hot_method_and_totals(self, profiles):
        base, __ = profiles
        text = profile_report(base)
        assert "kernel" in text
        assert "samples" in text
        assert "instructions" in text

    def test_top_limit_respected(self, profiles):
        base, __ = profiles
        text = profile_report(base, top=1)
        assert "kernel" in text
        assert "main" not in text.splitlines()[-1]

    def test_gc_line_present_when_allocating(self):
        from repro.lang import compile_source

        program = compile_source(
            "fn main() { for (var i = 0; i < 500; i = i + 1) { alloc(9000); } return 0; }"
        )
        _, profile = run_program(program)
        text = profile_report(profile)
        assert "gc[semispace]" in text
        assert "collections" in text


class TestCompileTimeline:
    def test_events_in_order(self, profiles):
        __, adaptive = profiles
        text = compile_timeline(adaptive)
        assert "kernel" in text
        # baseline compile appears before the optimizing recompilation
        lines = [line for line in text.splitlines() if "kernel" in line]
        assert len(lines) >= 2


class TestCompareProfiles:
    def test_ratio_and_levels(self, profiles):
        base, adaptive = profiles
        text = compare_profiles(base, adaptive, "default", "adaptive")
        assert "ratio" in text
        assert "kernel" in text
        assert "default" in text and "adaptive" in text

    def test_ratio_reflects_speedup(self, profiles):
        base, adaptive = profiles
        text = compare_profiles(base, adaptive)
        ratio = float(text.splitlines()[0].split("ratio ")[1].rstrip(")"))
        assert ratio > 1.0
