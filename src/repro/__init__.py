"""repro — Cross-Input Learning and Discriminative Prediction in Evolvable
Virtual Machines (CGO 2009), reproduced as a self-contained Python library.

Subpackages:

- :mod:`repro.vm` — the VM substrate (bytecode, interpreter, tiered JIT,
  virtual clock, timer sampler).
- :mod:`repro.lang` — MiniLang, a small imperative language compiled to the
  VM's bytecode; the benchmark programs are written in it.
- :mod:`repro.aos` — the adaptive optimization system: Jikes-style reactive
  cost-benefit controller and the Rep (repository-based) baseline.
- :mod:`repro.xicl` — the extensible input characterization language and
  its translator.
- :mod:`repro.learning` — classification trees, cross-validation, and the
  incremental model machinery.
- :mod:`repro.core` — the paper's contribution: the evolvable VM with
  discriminative, confidence-guarded cross-input prediction.
- :mod:`repro.bench` — the 11 benchmark workloads with input generators and
  XICL specs.
- :mod:`repro.experiments` — harness reproducing every table and figure.
"""

__version__ = "1.0.0"
