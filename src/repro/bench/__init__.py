"""Benchmark workloads: the paper's 11 programs with input models."""

from .base import BenchInput, Benchmark, feature_int
from .suite import (
    BENCHMARK_CLASSES,
    INPUT_SENSITIVE_GROUP,
    all_benchmarks,
    get_benchmark,
)

__all__ = [
    "BENCHMARK_CLASSES",
    "BenchInput",
    "Benchmark",
    "INPUT_SENSITIVE_GROUP",
    "all_benchmarks",
    "feature_int",
    "get_benchmark",
]
