"""The benchmark suite registry (Table I order)."""

from __future__ import annotations

from .base import Benchmark
from .programs import (
    AntlrBenchmark,
    BloatBenchmark,
    CompressBenchmark,
    DbBenchmark,
    EulerBenchmark,
    FopBenchmark,
    MolDynBenchmark,
    MonteCarloBenchmark,
    MtrtBenchmark,
    RayTracerBenchmark,
    SearchBenchmark,
)

#: Table I row order.
BENCHMARK_CLASSES: tuple[type[Benchmark], ...] = (
    MtrtBenchmark,
    CompressBenchmark,
    DbBenchmark,
    AntlrBenchmark,
    BloatBenchmark,
    FopBenchmark,
    EulerBenchmark,
    MolDynBenchmark,
    MonteCarloBenchmark,
    SearchBenchmark,
    RayTracerBenchmark,
)


def all_benchmarks() -> list[Benchmark]:
    """Fresh instances of every benchmark, in Table I order."""
    return [cls() for cls in BENCHMARK_CLASSES]


def get_benchmark(name: str) -> Benchmark:
    """Look one benchmark up by its (case-insensitive) Table I name."""
    for cls in BENCHMARK_CLASSES:
        if cls.name.lower() == name.lower():
            return cls()
    known = ", ".join(cls.name for cls in BENCHMARK_CLASSES)
    raise KeyError(f"unknown benchmark {name!r} (known: {known})")


#: The paper's strongly input-sensitive group (§V-B.1.b).
INPUT_SENSITIVE_GROUP = ("Mtrt", "Compress", "Euler", "MolDyn", "RayTracer")
