"""Wall-clock benchmark for the forge dataset factory.

The forge (:mod:`repro.learning.forge`) is the repository's bulk
producer of training rows: generated programs are labeled once per
input by the forked-run labeler and streamed into shards that train the
cross-program prior. This module times the two halves that dominate a
forge run:

1. **Fork speedup** — the forked-run labeler
   (:func:`~repro.learning.forge.labeler.label_forked`) against the
   independent-runs baseline
   (:func:`~repro.learning.forge.labeler.label_naive`) over a seeded
   program sample, asserting the labels are bit-identical
   (:func:`~repro.learning.forge.labeler.labels_equal`) — the same
   machine-independent speedup-ratio shape as the engine gates.
2. **Pipeline throughput** — a small end-to-end
   :func:`~repro.learning.forge.pipeline.run_forge` (generate →
   fork-label → shard → train), in labeled rows per second generated
   and trained.

Results land in the ``datagen`` section of ``BENCH_vm.json`` (schema
v5); CI's regression gate compares the fork speedup against the
checked-in baseline. Baselines recorded before v5 have no ``datagen``
section and are tolerated — the gate simply skips.
"""

from __future__ import annotations

import tempfile
import time

from ..learning.forge.labeler import (
    FORGE_CONFIG,
    label_forked,
    label_naive,
    labels_equal,
)
from ..learning.forge.pipeline import input_args, run_forge
from ..testing.differential import compile_module
from ..testing.generator import generate
from ..vm.opt.jit import JITCompiler

#: (programs, inputs per program) for the fork-vs-naive timing. Twelve
#: inputs per program is the deep-run shape: the forked labeler's
#: advantage comes from amortizing baseline snapshots, codegen, and the
#: shadow plan across a program's whole input batch, so the speedup
#: grows with the batch (at 1–2 inputs per program the two paths are
#: close; per-program variance also needs ≥ ~12 programs to average
#: out).
_FORK_SIZES = {"quick": (12, 12), "full": (24, 12)}

#: (programs, inputs per program) for the end-to-end pipeline timing.
_PIPE_SIZES = {"quick": (30, 4), "full": (100, 6)}


def bench_fork(quick: bool = False, seed: int = 0) -> dict:
    """Time forked vs. independent-runs labeling on one program sample.

    Each path gets its own per-program :class:`JITCompiler` (neither
    warms the other); the forked path also reuses its per-program plan
    cache across inputs, exactly as the pipeline worker does.
    """
    programs, inputs = _FORK_SIZES["quick" if quick else "full"]
    naive_wall = 0.0
    forked_wall = 0.0
    pairs = 0
    identical = True
    for index in range(programs):
        gp = generate(seed, index)
        program = compile_module(gp.module)
        arg_sets = [
            input_args(seed, index, k, gp.args) for k in range(inputs)
        ]

        start = time.perf_counter()
        naive = [
            label_naive(program, args, config=FORGE_CONFIG)
            for args in arg_sets
        ]
        naive_wall += time.perf_counter() - start

        jit = JITCompiler(program, FORGE_CONFIG)
        plan_cache: dict = {}
        start = time.perf_counter()
        forked = [
            label_forked(
                program,
                args,
                config=FORGE_CONFIG,
                jit=jit,
                plan_cache=plan_cache,
            )
            for args in arg_sets
        ]
        forked_wall += time.perf_counter() - start

        pairs += len(arg_sets)
        for a, b in zip(naive, forked):
            if not labels_equal(a, b):  # pragma: no cover
                identical = False
    return {
        "programs": programs,
        "pairs": pairs,
        "naive_wall_s": naive_wall,
        "forked_wall_s": forked_wall,
        "speedup": naive_wall / forked_wall,
        "identical_labels": identical,
    }


def bench_pipeline(quick: bool = False, seed: int = 0) -> dict:
    """Time one end-to-end forge run (rows generated + prior trained)."""
    programs, inputs = _PIPE_SIZES["quick" if quick else "full"]
    with tempfile.TemporaryDirectory() as tmp:
        stats, _prior = run_forge(
            tmp,
            programs=programs,
            inputs_per_program=inputs,
            seed=seed,
            jobs=1,
        )
    return {
        "programs": stats.programs,
        "inputs_per_program": stats.inputs_per_program,
        "rows": stats.rows,
        "shards": stats.shards,
        "max_resident_rows": stats.max_resident_rows,
        "label_wall_s": stats.label_s,
        "train_wall_s": stats.train_s,
        "rows_per_s_generated": stats.rows_per_s_generated,
        "rows_per_s_trained": stats.rows_per_s_trained,
        "trained": stats.trained,
    }


def bench_datagen(quick: bool = False) -> dict:
    """The ``datagen`` section of the bench report."""
    return {
        "fork": bench_fork(quick=quick),
        "pipeline": bench_pipeline(quick=quick),
    }


def format_datagen(section: dict) -> list[str]:
    fork = section["fork"]
    pipe = section["pipeline"]
    return [
        (
            f"datagen fork: {fork['pairs']} pair(s), naive "
            f"{fork['naive_wall_s']:.2f}s vs forked "
            f"{fork['forked_wall_s']:.2f}s ({fork['speedup']:.2f}x, "
            f"labels {'identical' if fork['identical_labels'] else 'DIVERGED'})"
        ),
        (
            f"datagen pipeline: {pipe['rows']} row(s) in "
            f"{pipe['shards']} shard(s), "
            f"{pipe['rows_per_s_generated']:.0f} rows/s generated, "
            f"{pipe['rows_per_s_trained']:.0f} rows/s trained"
        ),
    ]
