"""Euler (Java Grande euler model).

A structured-grid computational-fluid-dynamics kernel: time-steps the
Euler equations over an N×4N grid until a fixed iteration budget. The
single input value (grid scale N) drives a quadratic running-time range —
one of the strongly input-sensitive programs in Figure 10.

Command line: ``euler N``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Euler solver model on an n x 4n grid.
fn init_grid(n) {
  burn(n * n * 2);
  return n * 4 * n;
}

fn compute_flux(n) {
  // Per-sweep flux evaluation over the grid.
  burn(n * n * 11);
  return 0;
}

fn update_cells(n) {
  burn(n * n * 6);
  return 0;
}

fn apply_boundary(n) {
  burn(n * 48);
  return 0;
}

fn residual(n) {
  burn(n * n * 2);
  return n;
}

fn smooth(n) {
  burn(n * n * 3);
  return 0;
}

fn main(n, iters) {
  init_grid(n);
  var it = 0;
  var res = 0;
  while (it < iters) {
    compute_flux(n);
    update_cells(n);
    apply_boundary(n);
    if (it % 4 == 0) { smooth(n); }
    if (it % 8 == 0) { res = residual(n); }
    it = it + 1;
  }
  return res;
}
"""

SPEC = """
# euler N
operand {position=1; type=NUM; attr=VAL}
"""


class EulerBenchmark(Benchmark):
    name = "Euler"
    suite = "grande"
    n_inputs = 10
    runs = 30
    input_sensitive = True
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        sizes = [24, 33, 42, 52, 64, 78, 96, 120, 150, 190]
        rng.shuffle(sizes)
        return [BenchInput(cmdline=str(n)) for n in sizes]

    def launch_args(self, fvector: FeatureVector) -> tuple:
        n = feature_int(fvector, "operand1.VAL", 64)
        iters = 60
        return (n, iters)
