"""MonteCarlo (Java Grande montecarlo model).

A financial Monte-Carlo simulation: generates many stochastic price paths
and aggregates their statistics. The input population spans a deliberately
narrow path-count range (the real benchmark's data sizes are close
together), so ideal optimization levels barely vary across inputs — one of
the programs where Rep and Evolve should behave similarly.

Command line: ``montecarlo N``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Monte-Carlo path simulation model: n paths, fixed path length.
fn init_tasks(n) {
  burn(n / 2 + 400);
  return n;
}

fn ratemc_step() {
  burn(95);
  return 0;
}

fn simulate_path(length) {
  var t = 0;
  while (t < length) {
    ratemc_step();
    t = t + 440;
  }
  burn(length * 25);
  return length;
}

fn accumulate(value) {
  burn(18);
  return value;
}

fn reduce_stats(n) {
  burn(n * 3 + 600);
  return n;
}

fn main(n, length) {
  init_tasks(n);
  var p = 0;
  while (p < n) {
    accumulate(simulate_path(length));
    p = p + 1;
  }
  return reduce_stats(n);
}
"""

SPEC = """
# montecarlo N
operand {position=1; type=NUM; attr=VAL}
"""


class MonteCarloBenchmark(Benchmark):
    name = "MonteCarlo"
    suite = "grande"
    n_inputs = 8
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        # Narrow range: ~2x spread only.
        sizes = [700, 800, 900, 1000, 1100, 1200, 1300, 1400]
        rng.shuffle(sizes)
        return [BenchInput(cmdline=str(n)) for n in sizes]

    def launch_args(self, fvector: FeatureVector) -> tuple:
        n = feature_int(fvector, "operand1.VAL", 1000)
        length = 1200
        return (n, length)
