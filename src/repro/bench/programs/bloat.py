"""Bloat (DaCapo bloat model).

A Java-bytecode optimizer: loads a class, builds a CFG, and runs one of
several optimization pipelines selected on the command line (SSA-based
optimization, peephole, or inlining analysis). The paper's programmer-
defined feature is the class's lines of code; the operation type is the
categorical feature deciding which pass kernels get hot.

Command line: ``bloat -op {ssa|peep|inline} [-verify] CLASSFILE``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ...xicl.methods import MetadataFeature, XFMethodRegistry
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Bytecode optimizer model. loc = lines of code of the input class.
fn load_class(loc) {
  burn(160 * loc / 10 + 1200);
  return loc;
}

fn build_cfg(loc) {
  var blocks = loc / 6 + 1;
  var b = 0;
  while (b < blocks) { burn(240); b = b + 1; }
  return blocks;
}

fn dominators(blocks) {
  burn(34 * blocks * 3);
  return blocks;
}

fn ssa_convert(blocks) {
  var b = 0;
  while (b < blocks) { burn(520); b = b + 1; }
  return blocks;
}

fn ssa_optimize(blocks) {
  var b = 0;
  while (b < blocks) { burn(780); b = b + 1; }
  return blocks;
}

fn peephole_scan(loc) {
  var window = 0;
  while (window < loc) { burn(95); window = window + 4; }
  return window;
}

fn inline_analysis(blocks) {
  burn(210 * blocks + 2500);
  return blocks;
}

fn dce_pass(blocks) {
  burn(130 * blocks);
  return blocks;
}

fn verify_class(loc) {
  burn(60 * loc / 4 + 800);
  return 0;
}

fn write_class(loc) {
  burn(45 * loc / 8 + 600);
  return 0;
}

fn main(loc, op, verify) {
  load_class(loc);
  var blocks = build_cfg(loc);
  dominators(blocks);
  if (op == 0) {
    ssa_convert(blocks);
    ssa_optimize(blocks);
    dce_pass(blocks);
  } else {
    if (op == 1) {
      peephole_scan(loc);
      dce_pass(blocks);
    } else {
      inline_analysis(blocks);
      ssa_convert(blocks);
    }
  }
  if (verify == 1) { verify_class(loc); }
  write_class(loc);
  return blocks;
}
"""

SPEC = """
# bloat -op OPERATION [-verify] CLASSFILE
option  {name=-op; type=STR; attr=VAL; default=ssa; has_arg=y}
option  {name=-verify; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1; type=FILE; attr=SIZE:mLoc}
"""

_OPS = ("ssa", "peep", "inline")


class BloatBenchmark(Benchmark):
    name = "Bloat"
    suite = "dacapo"
    n_inputs = 10
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def make_registry(self) -> XFMethodRegistry:
        registry = XFMethodRegistry()
        registry.register(MetadataFeature("mLoc", "loc"))
        return registry

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        for index in range(self.n_inputs):
            loc = rng.choice([800, 2000, 5000, 12_000, 30_000])
            op = rng.choice(_OPS)
            verify = rng.random() < 0.3
            path = f"data/bloat/Class{index:02d}.class"
            flags = f"-op {op}" + (" -verify" if verify else "")
            inputs.append(
                BenchInput(
                    cmdline=f"{flags} {path}",
                    files={
                        path: MemoryFile(size_bytes=loc * 32, extra={"loc": loc})
                    },
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        loc = feature_int(fvector, "operand1.mLoc", 2000)
        op = _OPS.index(str(fvector.get("-op.VAL", "ssa")))
        verify = feature_int(fvector, "-verify.VAL", 0)
        return (loc, op, verify)
