"""The 11 benchmark workload programs (Table I)."""

from .antlr import AntlrBenchmark
from .bloat import BloatBenchmark
from .compress import CompressBenchmark
from .db import DbBenchmark
from .euler import EulerBenchmark
from .fop import FopBenchmark
from .moldyn import MolDynBenchmark
from .montecarlo import MonteCarloBenchmark
from .mtrt import MtrtBenchmark
from .raytracer import RayTracerBenchmark
from .search import SearchBenchmark

__all__ = [
    "AntlrBenchmark",
    "BloatBenchmark",
    "CompressBenchmark",
    "DbBenchmark",
    "EulerBenchmark",
    "FopBenchmark",
    "MolDynBenchmark",
    "MonteCarloBenchmark",
    "MtrtBenchmark",
    "RayTracerBenchmark",
    "SearchBenchmark",
]
