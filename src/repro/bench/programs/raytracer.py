"""RayTracer (Java Grande raytracer model).

A scene renderer over an N×N canvas of a fixed 64-sphere scene. The
single input value (canvas size) drives a quadratic running-time spread;
it is the second program (with Mtrt) whose temporal learning curves the
paper plots in Figure 8.

Command line: ``raytracer N``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Java Grande style ray tracer: fixed scene, canvas n x n.
fn create_scene() {
  burn(5200);
  return 64;
}

fn intersect(spheres) {
  burn(9 * spheres);
  return 1;
}

fn shade_hit(spheres) {
  intersect(spheres);
  burn(240);
  return 1;
}

fn trace_pixel(spheres) {
  intersect(spheres);
  shade_hit(spheres);
  burn(130);
  return 1;
}

fn render_row(n, spheres) {
  // One row of pixels: a few representative traced pixels plus the
  // row's aggregate kernel cost.
  trace_pixel(spheres);
  trace_pixel(spheres);
  burn(n * 95);
  return n;
}

fn checksum_image(n) {
  burn(n * n / 30 + 300);
  return n;
}

fn main(n) {
  var spheres = create_scene();
  var row = 0;
  var pixels = 0;
  while (row < n) {
    pixels = pixels + render_row(n, spheres);
    row = row + 1;
  }
  checksum_image(n);
  return pixels;
}
"""

SPEC = """
# raytracer N
operand {position=1; type=NUM; attr=VAL}
"""


class RayTracerBenchmark(Benchmark):
    name = "RayTracer"
    suite = "grande"
    n_inputs = 10
    runs = 30
    input_sensitive = True
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        sizes = [60, 90, 130, 180, 240, 320, 420, 540, 680, 840]
        rng.shuffle(sizes)
        return [BenchInput(cmdline=str(n)) for n in sizes]

    def launch_args(self, fvector: FeatureVector) -> tuple:
        n = feature_int(fvector, "operand1.VAL", 180)
        return (n,)
