"""Antlr (DaCapo antlr model).

A parser generator: reads a grammar, builds an NFA per rule, determinizes
it, runs grammar analysis, and emits code for a target language. The
paper's programmer-defined feature is the number of rules; output format
and target language (both categorical) shift which emitter methods are
hot — the categorical/quantitative mix XICL is designed to express.

Command line: ``antlr -o FORMAT -lang LANG [-trace] [-diag] GRAMMAR``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ...xicl.methods import MetadataFeature, XFMethodRegistry
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Parser generator model. rules = grammar size; lang/fmt select emitters.
fn read_grammar(rules) {
  burn(700 * rules / 4 + 1500);
  return rules;
}

fn build_nfa(rules) {
  var r = 0;
  while (r < rules) {
    burn(950);
    r = r + 1;
  }
  return r;
}

fn determinize(rules) {
  // Subset construction: superlinear in rules.
  var r = 0;
  while (r < rules) {
    burn(70 * (r / 8 + 4));
    r = r + 1;
  }
  return r;
}

fn analyze_rule(lookahead) {
  burn(420 * lookahead);
  return lookahead;
}

fn grammar_analysis(rules, lookahead) {
  var r = 0;
  while (r < rules) {
    analyze_rule(lookahead);
    r = r + 1;
  }
  return r;
}

fn emit_java(rules) {
  var r = 0;
  while (r < rules) { burn(1300); r = r + 1; }
  return r;
}

fn emit_cpp(rules) {
  var r = 0;
  while (r < rules) { burn(1700); r = r + 1; }
  return r;
}

fn emit_html_report(rules) {
  burn(300 * rules + 900);
  return rules;
}

fn trace_tables(rules) {
  burn(520 * rules);
  return 0;
}

fn main(rules, lang, fmt, trace) {
  read_grammar(rules);
  build_nfa(rules);
  determinize(rules);
  grammar_analysis(rules, 2 + lang);
  if (fmt == 0) {
    if (lang == 0) { emit_java(rules); } else { emit_cpp(rules); }
  } else {
    emit_html_report(rules);
  }
  if (trace == 1) { trace_tables(rules); }
  return rules;
}
"""

SPEC = """
# antlr -o FORMAT -lang LANG [-trace] [-diag] GRAMMAR
option  {name=-o:--output; type=STR; attr=VAL; default=code; has_arg=y}
option  {name=-lang; type=STR; attr=VAL; default=java; has_arg=y}
option  {name=-trace; type=BIN; attr=VAL; default=0; has_arg=n}
option  {name=-diag; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1; type=FILE; attr=SIZE:mRules}
"""

_LANGS = ("java", "cpp")
_FORMATS = ("code", "html")


class AntlrBenchmark(Benchmark):
    name = "Antlr"
    suite = "dacapo"
    n_inputs = 15
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def make_registry(self) -> XFMethodRegistry:
        registry = XFMethodRegistry()
        registry.register(MetadataFeature("mRules", "rules"))
        return registry

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        for index in range(self.n_inputs):
            rules = rng.choice([40, 90, 180, 350, 700, 1200])
            lang = rng.choice(_LANGS)
            fmt = rng.choice(_FORMATS) if rng.random() < 0.4 else "code"
            trace = rng.random() < 0.2
            path = f"data/antlr/grammar{index:02d}.g"
            flags = f"-o {fmt} -lang {lang}" + (" -trace" if trace else "")
            inputs.append(
                BenchInput(
                    cmdline=f"{flags} {path}",
                    files={
                        path: MemoryFile(
                            size_bytes=rules * 90, extra={"rules": rules}
                        )
                    },
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        rules = feature_int(fvector, "operand1.mRules", 100)
        lang = 0 if fvector.get("-lang.VAL", "java") == "java" else 1
        fmt = 0 if fvector.get("-o.VAL", "code") == "code" else 1
        trace = feature_int(fvector, "-trace.VAL", 0)
        return (rules, lang, fmt, trace)
