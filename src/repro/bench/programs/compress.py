"""Compress (SPECjvm98 _201_compress model).

An LZW-style file compressor: the input file is processed chunk by chunk
through a dictionary-building compress kernel, then verified by a
decompress pass (as the real benchmark does). Running time is dominated by
file size, which spans ~50 KB to ~8 MB across the input population — the
wide running-time range behind Figure 9(b)'s diminishing-returns tail.

Command line: ``compress [-l LEVEL] [-v] FILE``; the deciding feature is
the file's byte size (Table I: "file size").
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// LZW-ish compressor model. Work units: ~cycles per processed byte.
fn read_chunk(chunk_bytes) {
  burn(chunk_bytes / 4);
  return chunk_bytes;
}

fn hash_probe(key) {
  burn(12);
  return key % 4093;
}

fn compress_chunk(chunk_bytes, level) {
  // Dictionary build + code emission; cost grows with level.
  var codes = 0;
  var step = 2048;
  var pos = 0;
  while (pos < chunk_bytes) {
    hash_probe(pos);
    burn(step * (2 + level));
    codes = codes + 1;
    pos = pos + step;
  }
  return codes;
}

fn flush_table(level) {
  burn(800 + 300 * level);
  return 0;
}

fn decompress_chunk(chunk_bytes) {
  burn(chunk_bytes);
  return chunk_bytes;
}

fn checksum(total_bytes) {
  burn(total_bytes / 16);
  return total_bytes % 65521;
}

fn report(verbose, codes) {
  if (verbose == 1) {
    print(codes);
    burn(500);
  }
  return 0;
}

fn main(file_bytes, level, verbose) {
  var chunk = 32768;
  var done = 0;
  var codes = 0;
  while (done < file_bytes) {
    var now = min(chunk, file_bytes - done);
    read_chunk(now);
    codes = codes + compress_chunk(now, level);
    done = done + now;
  }
  flush_table(level);
  // Verification pass, as in the SPEC harness.
  done = 0;
  while (done < file_bytes) {
    var now2 = min(chunk, file_bytes - done);
    decompress_chunk(now2);
    done = done + now2;
  }
  var sum = checksum(file_bytes);
  report(verbose, codes);
  return sum;
}
"""

SPEC = """
# compress [-l LEVEL] [-v] FILE
option  {name=-l; type=NUM; attr=VAL; default=6; has_arg=y}
option  {name=-v:--verbose; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1; type=FILE; attr=SIZE}
"""


class CompressBenchmark(Benchmark):
    name = "Compress"
    suite = "jvm98"
    n_inputs = 19
    runs = 70
    input_sensitive = True
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        # Log-spread of file sizes: 50 KB .. 8 MB.
        for index in range(self.n_inputs):
            scale = index / (self.n_inputs - 1)
            size = int(50_000 * (160 ** scale) * rng.uniform(0.85, 1.15))
            level = rng.choice([1, 3, 6, 9])
            verbose = rng.random() < 0.2
            path = f"data/compress/input{index:02d}.bin"
            flags = f"-l {level}" + (" -v" if verbose else "")
            inputs.append(
                BenchInput(
                    cmdline=f"{flags} {path}",
                    files={path: MemoryFile(size_bytes=size)},
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        # Scale file bytes into burn-units so the virtual time lands in
        # roughly 0.5..80 virtual seconds across the size range.
        file_bytes = feature_int(fvector, "operand1.SIZE", 100_000)
        level = feature_int(fvector, "-l.VAL", 6)
        verbose = feature_int(fvector, "-v.VAL", 0)
        return (file_bytes, level, verbose)
