"""Fop (DaCapo fop model).

An XSL-FO formatter: parses a formatting-objects document, measures text,
lays out pages, and renders either PDF or PostScript. Table I's features:
the input file's line count and the output format.

Command line: ``fop -fmt {pdf|ps} [-c] [-q] FOFILE``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// XSL-FO formatter model. lines = input document line count.
fn parse_fo(lines) {
  var l = 0;
  while (l < lines) { burn(170); l = l + 8; }
  return lines;
}

fn measure_text(lines) {
  var l = 0;
  while (l < lines) { burn(120); l = l + 6; }
  return lines;
}

fn layout_line(complexity) {
  burn(260 + 40 * complexity);
  return 1;
}

fn layout_pages(lines, complexity) {
  var page_lines = 45;
  var l = 0;
  var pages = 0;
  while (l < lines) {
    layout_line(complexity);
    l = l + page_lines;
    pages = pages + 1;
    burn(900 * page_lines / 10);
  }
  return pages;
}

fn render_pdf(pages) {
  var p = 0;
  while (p < pages) { burn(5200); p = p + 1; }
  return pages;
}

fn render_ps(pages) {
  var p = 0;
  while (p < pages) { burn(3100); p = p + 1; }
  return pages;
}

fn compress_output(pages) {
  burn(2400 * pages / 2);
  return 0;
}

fn main(lines, fmt, compressed, quality) {
  parse_fo(lines);
  measure_text(lines);
  var pages = layout_pages(lines, quality);
  if (fmt == 0) { render_pdf(pages); } else { render_ps(pages); }
  if (compressed == 1) { compress_output(pages); }
  return pages;
}
"""

SPEC = """
# fop -fmt FORMAT [-c] [-q QUALITY] FOFILE
option  {name=-fmt; type=STR; attr=VAL; default=pdf; has_arg=y}
option  {name=-c:--compress; type=BIN; attr=VAL; default=0; has_arg=n}
option  {name=-q:--quality; type=NUM; attr=VAL; default=1; has_arg=y}
operand {position=1; type=FILE; attr=SIZE:LINES}
"""


class FopBenchmark(Benchmark):
    name = "Fop"
    suite = "dacapo"
    n_inputs = 12
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        for index in range(self.n_inputs):
            lines = rng.choice([600, 1500, 4000, 9000, 20_000])
            fmt = rng.choice(["pdf", "ps"])
            compress = rng.random() < 0.35
            quality = rng.choice([1, 2, 4])
            path = f"data/fop/doc{index:02d}.fo"
            flags = f"-fmt {fmt} -q {quality}" + (" -c" if compress else "")
            inputs.append(
                BenchInput(
                    cmdline=f"{flags} {path}",
                    files={
                        path: MemoryFile(size_bytes=lines * 52, extra={"lines": lines})
                    },
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        lines = feature_int(fvector, "operand1.LINES", 1500)
        fmt = 0 if fvector.get("-fmt.VAL", "pdf") == "pdf" else 1
        compress = feature_int(fvector, "-c.VAL", 0)
        quality = feature_int(fvector, "-q.VAL", 1)
        return (lines, fmt, compress, quality)
