"""MolDyn (Java Grande moldyn model).

A molecular-dynamics simulation: N particles interact pairwise (O(N²)
force evaluation) over a fixed number of Verlet-integration timesteps.
The particle count is the single input value; force evaluation dominates
larger systems — the strongly input-sensitive profile Figure 10 groups it
under.

Command line: ``moldyn N``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Molecular dynamics model: n particles, pairwise forces.
fn init_particles(n) {
  burn(n * 30);
  return n;
}

fn forces(n) {
  // O(n^2) pairwise interactions, folded per-particle.
  var i = 0;
  while (i < n) {
    burn(n * 3);
    i = i + 16;
  }
  return 0;
}

fn integrate(n) {
  burn(n * 14);
  return 0;
}

fn scale_temperature(n) {
  burn(n * 5 + 200);
  return 0;
}

fn kinetic_energy(n) {
  burn(n * 7);
  return n;
}

fn main(n, steps) {
  init_particles(n);
  var s = 0;
  var e = 0;
  while (s < steps) {
    forces(n);
    integrate(n);
    if (s % 10 == 0) { scale_temperature(n); }
    if (s % 5 == 0) { e = kinetic_energy(n); }
    s = s + 1;
  }
  return e;
}
"""

SPEC = """
# moldyn N
operand {position=1; type=NUM; attr=VAL}
"""


class MolDynBenchmark(Benchmark):
    name = "MolDyn"
    suite = "grande"
    n_inputs = 8
    runs = 30
    input_sensitive = True
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        sizes = [256, 400, 640, 1000, 1600, 2500, 4000, 6000]
        rng.shuffle(sizes)
        return [BenchInput(cmdline=str(n)) for n in sizes]

    def launch_args(self, fvector: FeatureVector) -> tuple:
        n = feature_int(fvector, "operand1.VAL", 640)
        steps = 50
        return (n, steps)
