"""Db (SPECjvm98 _209_db model).

An in-memory address database executing a script of queries: lookups,
range selects, sorts, and updates. The two programmer-defined features the
paper lists for Db — the sizes of the database and of the query script —
drive the workload: lookups scale with ``log(db)``, sorts with
``db·log(db)``, and the script length multiplies everything.

Command line: ``db [-s] DBFILE QUERYFILE``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ...xicl.methods import MetadataFeature, XFMethodRegistry
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// In-memory database model. db_size in records, queries in statements.
fn load_db(db_size) {
  var loaded = 0;
  while (loaded < db_size) {
    burn(2200);                 // parse + index one batch of records
    loaded = loaded + 1000;
  }
  return loaded;
}

fn parse_query(kind) {
  burn(160 + kind * 25);
  return kind;
}

fn index_lookup(db_size) {
  // Binary-search-ish: log cost.
  var steps = 1;
  var span = db_size;
  while (span > 1) { span = span / 2; steps = steps + 1; }
  burn(55 * steps);
  return steps;
}

fn range_select(db_size) {
  burn(db_size / 6);
  return db_size / 6;
}

fn sort_records(db_size) {
  // n log n over the selected records.
  var logn = 1;
  var span = db_size;
  while (span > 1) { span = span / 2; logn = logn + 1; }
  burn(db_size * logn / 10);
  return logn;
}

fn update_record(db_size) {
  index_lookup(db_size);
  burn(180);
  return 1;
}

fn format_rows(count) {
  burn(count / 2 + 120);
  return count;
}

fn main(db_size, queries, shuffle) {
  load_db(db_size);
  var q = 0;
  var out = 0;
  while (q < queries) {
    var kind = q % 10;
    parse_query(kind);
    if (kind < 5) {
      index_lookup(db_size);
    } else {
      if (kind < 7) {
        out = out + range_select(db_size);
      } else {
        if (kind < 9) {
          update_record(db_size);
        } else {
          sort_records(db_size);
        }
      }
    }
    q = q + 1;
  }
  if (shuffle == 1) { sort_records(db_size); }
  format_rows(out);
  return out;
}
"""

SPEC = """
# db [-s] DBFILE QUERYFILE
option  {name=-s:--shuffle; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1; type=FILE; attr=SIZE:mRecords}
operand {position=2; type=FILE; attr=SIZE:mStatements}
"""


class DbBenchmark(Benchmark):
    name = "Db"
    suite = "jvm98"
    n_inputs = 10
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def make_registry(self) -> XFMethodRegistry:
        registry = XFMethodRegistry()
        # The paper's programmer-defined features for Db: the sizes of the
        # database and of the query script (parsed counts, not byte sizes).
        registry.register(MetadataFeature("mRecords", "records"))
        registry.register(MetadataFeature("mStatements", "statements"))
        return registry

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        for index in range(self.n_inputs):
            records = rng.choice([20_000, 40_000, 80_000, 160_000])
            statements = rng.choice([400, 800, 1600])
            shuffle = rng.random() < 0.3
            db_path = f"data/db/db{index:02d}.dat"
            q_path = f"data/db/script{index:02d}.sql"
            cmd = ("-s " if shuffle else "") + f"{db_path} {q_path}"
            inputs.append(
                BenchInput(
                    cmdline=cmd,
                    files={
                        db_path: MemoryFile(
                            size_bytes=records * 64, extra={"records": records}
                        ),
                        q_path: MemoryFile(
                            size_bytes=statements * 40,
                            extra={"statements": statements},
                        ),
                    },
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        records = feature_int(fvector, "operand1.mRecords", 20_000)
        statements = feature_int(fvector, "operand2.mStatements", 400)
        shuffle = feature_int(fvector, "-s.VAL", 0)
        return (records, statements, shuffle)
