"""Mtrt (SPECjvm98 _227_mtrt model).

A two-worker ray tracer rendering a scene file: rays per pixel traverse a
bounding hierarchy, intersect spheres/polygons, and shade with recursive
reflection up to a depth bound. Canvas size and reflection depth (the
"input values" of Table I) multiply into a wide running-time range —
Figure 8(a)/9(a)'s subject.

Command line: ``mtrt -size N -depth D [-aa] SCENE``.
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ...xicl.filesystem import MemoryFile
from ...xicl.methods import MetadataFeature, XFMethodRegistry
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Ray tracer model. Canvas is size x size; rays recurse to depth.
fn parse_scene(objects) {
  burn(900 * objects / 10 + 2000);
  return objects;
}

fn build_bvh(objects) {
  var logn = 1;
  var span = objects;
  while (span > 1) { span = span / 2; logn = logn + 1; }
  burn(objects * logn * 6);
  return logn;
}

fn intersect_sphere(objects) {
  burn(26 + objects / 8);
  return 1;
}

fn intersect_poly(objects) {
  burn(44 + objects / 5);
  return 1;
}

fn shade(depth, objects) {
  // Recursive reflection: geometric work in depth.
  if (depth <= 0) { return 1; }
  intersect_sphere(objects);
  if (depth % 2 == 0) { intersect_poly(objects); }
  burn(60);
  return 1 + shade(depth - 1, objects);
}

fn trace_block(rows, size, depth, objects, aa) {
  // Trace a block of rows; per-pixel cost folded into burn, per-row
  // shading sampled through real calls so the kernel mix is honest.
  var r = 0;
  var rays = 0;
  while (r < rows) {
    shade(depth, objects);
    burn(size * (14 + 6 * depth) * (1 + aa));
    rays = rays + size;
    r = r + 1;
  }
  return rays;
}

fn write_image(size) {
  burn(size * size / 40 + 500);
  return 0;
}

fn main(size, depth, objects, aa) {
  parse_scene(objects);
  build_bvh(objects);
  // Two render workers, as in the multithreaded original.
  var half = size / 2;
  var rays1 = trace_block(half, size, depth, objects, aa);
  var rays2 = trace_block(size - half, size, depth, objects, aa);
  write_image(size);
  return rays1 + rays2;
}
"""

SPEC = """
# mtrt -size N -depth D [-aa] SCENE
option  {name=-size; type=NUM; attr=VAL; default=200; has_arg=y}
option  {name=-depth; type=NUM; attr=VAL; default=3; has_arg=y}
option  {name=-aa; type=BIN; attr=VAL; default=0; has_arg=n}
operand {position=1; type=FILE; attr=SIZE:mObjects}
"""


class MtrtBenchmark(Benchmark):
    name = "Mtrt"
    suite = "jvm98"
    n_inputs = 20
    runs = 70
    input_sensitive = True
    source = SOURCE
    spec_text = SPEC

    def make_registry(self) -> XFMethodRegistry:
        registry = XFMethodRegistry()
        registry.register(MetadataFeature("mObjects", "objects"))
        return registry

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        inputs: list[BenchInput] = []
        for index in range(self.n_inputs):
            size = rng.choice([36, 60, 100, 160, 240, 360, 520, 680])
            depth = rng.choice([1, 2, 3, 5, 7])
            objects = rng.choice([20, 60, 150, 400])
            aa = rng.random() < 0.25
            path = f"data/mtrt/scene{index:02d}.mdl"
            flags = f"-size {size} -depth {depth}" + (" -aa" if aa else "")
            inputs.append(
                BenchInput(
                    cmdline=f"{flags} {path}",
                    files={
                        path: MemoryFile(
                            size_bytes=objects * 120, extra={"objects": objects}
                        )
                    },
                )
            )
        return inputs

    def launch_args(self, fvector: FeatureVector) -> tuple:
        size = feature_int(fvector, "-size.VAL", 200)
        depth = feature_int(fvector, "-depth.VAL", 3)
        objects = feature_int(fvector, "operand1.mObjects", 60)
        aa = feature_int(fvector, "-aa.VAL", 0)
        return (size, depth, objects, aa)
