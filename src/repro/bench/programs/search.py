"""Search (Java Grande search model).

An alpha-beta game-tree search solving a connect-4-style position given as
a move string. Table I's feature is the *length of the input string*: a
longer prefix of forced moves leaves a shallower remaining tree, so the
string length controls search effort. The paper could only collect a few
legal inputs for Search; we mirror that with a 4-position population.

Command line: ``search POSITION`` (a move string).
"""

from __future__ import annotations

from random import Random

from ...xicl.features import FeatureVector
from ..base import BenchInput, Benchmark, feature_int

SOURCE = """
// Alpha-beta search model: depth derived from remaining free plies.
fn parse_position(length) {
  burn(80 * length + 300);
  return length;
}

fn evaluate() {
  burn(4200);
  return 1;
}

fn generate_moves() {
  burn(650);
  return 7;
}

fn order_moves() {
  burn(70);
  return 0;
}

fn alphabeta(depth, width) {
  if (depth <= 0) { return evaluate(); }
  generate_moves();
  order_moves();
  var visited = 0;
  var child = 0;
  while (child < width) {
    visited = visited + alphabeta(depth - 1, width);
    child = child + 1;
  }
  burn(40);
  return visited;
}

fn probe_tt() {
  burn(30);
  return 0;
}

fn main(prefix_len, depth, width) {
  parse_position(prefix_len);
  probe_tt();
  return alphabeta(depth, width);
}
"""

SPEC = """
# search POSITION
operand {position=1; type=STR; attr=VAL:LEN}
"""

#: The four benchmark positions: move prefixes of decreasing length.
_POSITIONS = (
    "444333555522226666",   # long forced prefix → shallow search
    "4433556622",
    "443355",
    "44",                   # near-empty board → deep search
)


class SearchBenchmark(Benchmark):
    name = "Search"
    suite = "grande"
    n_inputs = 4
    runs = 30
    input_sensitive = False
    source = SOURCE
    spec_text = SPEC

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        positions = list(_POSITIONS)
        rng.shuffle(positions)
        return [BenchInput(cmdline=pos) for pos in positions]

    def launch_args(self, fvector: FeatureVector) -> tuple:
        prefix_len = feature_int(fvector, "operand1.LEN", 8)
        # Remaining search depth shrinks with the played prefix.
        depth = 7 - min(4, prefix_len // 5)
        width = 3
        return (prefix_len, depth, width)
