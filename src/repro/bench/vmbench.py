"""Wall-clock benchmark suite for the VM execution engines.

Everything else in this repository measures *virtual* cycles; this module
measures *host* wall-clock, answering one question: how much real time does
the fast-path engine (:mod:`repro.vm.fastpath`) save over the reference
interpreter? It times three things:

1. **Interpreter throughput** — three workloads (arithmetic loop, array
   sweep, call-heavy) on all three engines (reference loop, fast path,
   closure-compiled tier) at baseline and at opt level 2, reporting
   instructions/second plus the fast/reference and compiled/reference
   speedups.
2. **A Table I sweep cell** — one benchmark's scenario cell through
   :func:`repro.experiments.parallel.execute_cell`, cold vs. warm JIT
   artifact cache, asserting the virtual-cycle outcomes are identical.
3. **Fuzz iterations** — differential fuzz throughput, since the fuzz
   harness is the other big wall-clock consumer in CI.
4. **The learning layer** (:mod:`repro.bench.learnbench`) — offline model
   construction throughput, the fast/reference training speedup (trees
   checked identical), and flattened predict-all latency.
5. **The serving layer** (:mod:`repro.bench.servebench`) — sustained
   concurrent mixed-tenant traffic through the fleet server: request
   latency percentiles (p50/p95/p99), throughput, hot swaps, sheds, and
   the bit-identical-to-serial invariant; plus (schema v6) the batched
   inference kernel's speedup over per-row predicts and multi-process
   shard-scaling throughput, both checked bit-identical.
6. **The data forge** (:mod:`repro.bench.forgebench`) — the forked-run
   labeler's speedup over independent-runs labeling (labels asserted
   bit-identical) and end-to-end dataset-factory throughput in labeled
   rows per second.

Results are emitted as a schema-checked ``BENCH_vm.json``. CI's regression
gate compares the engine/reference **speedup ratios** (VM workloads,
compiled-tier geomean, and learning geomean) against a checked-in baseline
(``benchmarks/BENCH_baseline.json``) rather than absolute
instructions/second, which would vary with runner hardware. Baselines
recorded before a section existed (e.g. schema v3 has no compiled-tier
numbers) are tolerated — the corresponding gate simply skips.
"""

from __future__ import annotations

import json
import math
import platform
import time

from ..lang import compile_source
from ..vm import Interpreter

BENCH_SCHEMA_VERSION = 6

#: Workload sources: small MiniLang kernels exercising the three hot shapes
#: the fast engine targets (fused arithmetic loops, array traffic, calls).
WORKLOADS: dict[str, str] = {
    "arith_loop": """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    total = total + i * 3 - (i % 7);
    i = i + 1;
  }
  return total;
}
""",
    "array_sweep": """
fn main(n) {
  var a = array(64);
  var i = 0;
  while (i < n) {
    a[(i % 64)] = a[(i % 64)] + i;
    i = i + 1;
  }
  return a[7];
}
""",
    "call_heavy": """
fn main(n) {
  var total = 0;
  var i = 0;
  while (i < n) {
    total = total + step(i);
    i = i + 1;
  }
  return total;
}
fn step(x) {
  return x * 2 + 1;
}
""",
}

#: Loop trip counts per workload: (quick, full).
_ITERS = {
    "arith_loop": (40_000, 200_000),
    "array_sweep": (30_000, 150_000),
    "call_heavy": (25_000, 120_000),
}

#: Opt levels measured per workload (None = leave everything at baseline).
_LEVELS: tuple[int | None, ...] = (None, 2)


def _time_run(program, n: int, engine: str, level: int | None) -> tuple[float, int, object]:
    hook = (lambda _name: level) if level is not None else None
    interp = Interpreter(
        program, first_invocation_hook=hook, engine=engine
    )
    start = time.perf_counter()
    profile = interp.run((n,))
    wall = time.perf_counter() - start
    return wall, profile.instructions_executed, interp.result


def bench_workloads(quick: bool = False, repeats: int = 3) -> list[dict]:
    """Time every workload on all three engines; best-of-*repeats* each."""
    rows: list[dict] = []
    for name, source in WORKLOADS.items():
        program = compile_source(source)
        n = _ITERS[name][0 if quick else 1]
        for level in _LEVELS:
            best: dict[str, float] = {}
            instructions = 0
            results: dict[str, object] = {}
            for engine in ("reference", "fast", "compiled"):
                walls = []
                for _ in range(repeats):
                    wall, instructions, result = _time_run(
                        program, n, engine, level
                    )
                    walls.append(wall)
                    results[engine] = result
                best[engine] = min(walls)
            for engine in ("fast", "compiled"):
                if results["reference"] != results[engine]:  # pragma: no cover
                    raise AssertionError(
                        f"engine divergence in workload {name!r}: "
                        f"{results['reference']!r} != {results[engine]!r} "
                        f"({engine})"
                    )
            ref_ips = instructions / best["reference"]
            fast_ips = instructions / best["fast"]
            compiled_ips = instructions / best["compiled"]
            rows.append(
                {
                    "name": name,
                    "level": level,
                    "instructions": instructions,
                    "reference_wall_s": best["reference"],
                    "fast_wall_s": best["fast"],
                    "compiled_wall_s": best["compiled"],
                    "reference_ips": ref_ips,
                    "fast_ips": fast_ips,
                    "compiled_ips": compiled_ips,
                    "speedup": fast_ips / ref_ips,
                    "speedup_compiled": compiled_ips / ref_ips,
                }
            )
    return rows


def bench_sweep_cell(quick: bool = False, cache_dir=None) -> dict:
    """Time one Table I sweep cell cold vs. warm JIT artifact cache.

    The cell's virtual-cycle outcomes must be bit-identical with the cache
    off, cold, and warm — this function asserts it (the acceptance
    criterion for cache soundness) and reports wall times plus cache stats.
    """
    import tempfile

    from .suite import get_benchmark
    from ..experiments.parallel import (
        CellSpec,
        _ARTIFACT_CACHES,
        derive_sequence,
        execute_cell,
    )
    from ..vm.config import DEFAULT_CONFIG

    bench = get_benchmark("Compress")
    runs = 2 if quick else 6
    sequence = tuple(derive_sequence(bench, seed=0, n_runs=runs))

    def spec(jit_cache_dir):
        return CellSpec(
            benchmark=bench.name,
            scenarios=("default",),
            start=0,
            stop=runs,
            seed=0,
            sequence=sequence,
            config=DEFAULT_CONFIG,
            gamma=None,
            threshold=None,
            tree_params=None,
            jit_cache_dir=jit_cache_dir,
        )

    def cycles(payload) -> list[float]:
        return [
            outcome.profile.total_cycles
            for outcome in payload["outcomes"]["default"]
        ]

    with tempfile.TemporaryDirectory() as tmp:
        jit_dir = str(cache_dir) if cache_dir is not None else tmp
        start = time.perf_counter()
        uncached = execute_cell(spec(None))
        wall_off = time.perf_counter() - start

        _ARTIFACT_CACHES.pop(jit_dir, None)
        start = time.perf_counter()
        cold = execute_cell(spec(jit_dir))
        wall_cold = time.perf_counter() - start

        # Drop the in-memory layer so the warm pass exercises disk hits the
        # way a fresh sweep worker process would.
        _ARTIFACT_CACHES.pop(jit_dir, None)
        start = time.perf_counter()
        warm = execute_cell(spec(jit_dir))
        wall_warm = time.perf_counter() - start
        stats = _ARTIFACT_CACHES[jit_dir].stats()
        _ARTIFACT_CACHES.pop(jit_dir, None)

    if not (cycles(uncached) == cycles(cold) == cycles(warm)):  # pragma: no cover
        raise AssertionError(
            "JIT artifact cache changed virtual-cycle results"
        )
    return {
        "benchmark": bench.name,
        "runs": runs,
        "wall_s_cache_off": wall_off,
        "wall_s_cache_cold": wall_cold,
        "wall_s_cache_warm": wall_warm,
        "cache_stats": stats,
        "identical_cycles": True,
    }


def bench_fuzz(quick: bool = False) -> dict:
    """Time a short differential fuzz burst (single process)."""
    from ..testing import run_fuzz

    iterations = 5 if quick else 25
    start = time.perf_counter()
    report = run_fuzz(seed=0, iterations=iterations, jobs=1)
    wall = time.perf_counter() - start
    return {
        "iterations": iterations,
        "wall_s": wall,
        "iterations_per_s": iterations / wall,
        "ok": report.ok,
    }


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_report(quick: bool = False) -> dict:
    """Run the full suite and assemble the ``BENCH_vm.json`` payload."""
    from .forgebench import bench_datagen
    from .learnbench import bench_learning
    from .servebench import bench_serving

    workloads = bench_workloads(quick=quick)
    speedups = [row["speedup"] for row in workloads]
    compiled_speedups = [row["speedup_compiled"] for row in workloads]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "workloads": workloads,
        "speedup": {
            "geomean": geomean(speedups),
            "min": min(speedups),
            "max": max(speedups),
        },
        "speedup_compiled": {
            "geomean": geomean(compiled_speedups),
            "min": min(compiled_speedups),
            "max": max(compiled_speedups),
        },
        "sweep_cell": bench_sweep_cell(quick=quick),
        "fuzz": bench_fuzz(quick=quick),
        "learning": bench_learning(quick=quick),
        "serving": bench_serving(quick=quick),
        "datagen": bench_datagen(quick=quick),
    }


def validate_bench_report(report: dict) -> None:
    """Schema-check a bench report; raises ``ValueError`` on violations."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"{where}: missing key {key!r}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}: {key!r} must be {kind}, got {type(mapping[key])}"
            )

    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    need(report, "schema_version", int, "report")
    if report["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {report['schema_version']!r}"
        )
    need(report, "quick", bool, "report")
    need(report, "host", dict, "report")
    need(report, "workloads", list, "report")
    if not report["workloads"]:
        raise ValueError("report: workloads must be non-empty")
    for i, row in enumerate(report["workloads"]):
        where = f"workloads[{i}]"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: must be a dict")
        need(row, "name", str, where)
        need(row, "instructions", int, where)
        for key in (
            "reference_wall_s",
            "fast_wall_s",
            "compiled_wall_s",
            "reference_ips",
            "fast_ips",
            "compiled_ips",
            "speedup",
            "speedup_compiled",
        ):
            need(row, key, (int, float), where)
            if row[key] <= 0:
                raise ValueError(f"{where}: {key!r} must be positive")
    need(report, "speedup", dict, "report")
    for key in ("geomean", "min", "max"):
        need(report["speedup"], key, (int, float), "speedup")
    need(report, "speedup_compiled", dict, "report")
    for key in ("geomean", "min", "max"):
        need(report["speedup_compiled"], key, (int, float), "speedup_compiled")
        if report["speedup_compiled"][key] <= 0:
            raise ValueError(f"speedup_compiled: {key!r} must be positive")
    need(report, "sweep_cell", dict, "report")
    need(report["sweep_cell"], "identical_cycles", bool, "sweep_cell")
    if report["sweep_cell"]["identical_cycles"] is not True:
        raise ValueError("sweep_cell: cache must not change results")
    need(report, "fuzz", dict, "report")
    need(report["fuzz"], "ok", bool, "fuzz")
    need(report, "learning", dict, "report")
    learning = report["learning"]
    need(learning, "training", dict, "learning")
    for key in ("methods", "runs", "training_rows"):
        need(learning["training"], key, int, "learning.training")
        if learning["training"][key] <= 0:
            raise ValueError(f"learning.training: {key!r} must be positive")
    for key in ("wall_s", "rows_per_s"):
        need(learning["training"], key, (int, float), "learning.training")
        if learning["training"][key] <= 0:
            raise ValueError(f"learning.training: {key!r} must be positive")
    need(learning, "speedup", dict, "learning")
    for key in ("geomean", "min", "max"):
        need(learning["speedup"], key, (int, float), "learning.speedup")
        if learning["speedup"][key] <= 0:
            raise ValueError(f"learning.speedup: {key!r} must be positive")
    need(learning["speedup"], "identical_trees", bool, "learning.speedup")
    if learning["speedup"]["identical_trees"] is not True:
        raise ValueError(
            "learning.speedup: engines must produce identical trees"
        )
    need(learning, "predict", dict, "learning")
    for key in ("wall_s", "per_call_us"):
        need(learning["predict"], key, (int, float), "learning.predict")
        if learning["predict"][key] <= 0:
            raise ValueError(f"learning.predict: {key!r} must be positive")
    need(learning["predict"], "trees", int, "learning.predict")
    need(report, "serving", dict, "report")
    serving = report["serving"]
    for key in ("requests", "tenants", "swaps", "sheds", "batches"):
        need(serving, key, int, "serving")
    if serving["requests"] <= 0:
        raise ValueError("serving: 'requests' must be positive")
    for key in ("wall_s", "serial_wall_s", "rps", "overhead_ratio"):
        need(serving, key, (int, float), "serving")
        if serving[key] <= 0:
            raise ValueError(f"serving: {key!r} must be positive")
    need(serving, "latency_ms", dict, "serving")
    for key in ("p50", "p95", "p99", "mean"):
        need(serving["latency_ms"], key, (int, float), "serving.latency_ms")
        if serving["latency_ms"][key] < 0:
            raise ValueError(f"serving.latency_ms: {key!r} must be >= 0")
    need(serving, "identical_to_serial", bool, "serving")
    if serving["identical_to_serial"] is not True:
        raise ValueError(
            "serving: per-tenant results must be bit-identical to serial "
            "replay"
        )
    need(serving, "batch_kernel", dict, "serving")
    kernel = serving["batch_kernel"]
    need(kernel, "trees", int, "serving.batch_kernel")
    need(kernel, "rows", list, "serving.batch_kernel")
    if not kernel["rows"]:
        raise ValueError("serving.batch_kernel: rows must be non-empty")
    for i, row in enumerate(kernel["rows"]):
        where = f"serving.batch_kernel.rows[{i}]"
        need(row, "batch_size", int, where)
        for key in ("per_row_us", "batch_us", "speedup"):
            need(row, key, (int, float), where)
            if row[key] <= 0:
                raise ValueError(f"{where}: {key!r} must be positive")
    need(kernel, "speedup", dict, "serving.batch_kernel")
    for key in ("geomean", "min", "max"):
        need(kernel["speedup"], key, (int, float), "serving.batch_kernel.speedup")
        if kernel["speedup"][key] <= 0:
            raise ValueError(
                f"serving.batch_kernel.speedup: {key!r} must be positive"
            )
    need(kernel, "identical", bool, "serving.batch_kernel")
    if kernel["identical"] is not True:
        raise ValueError(
            "serving.batch_kernel: batched predictions must be "
            "bit-identical to per-row predict_all"
        )
    need(serving, "shard_scaling", dict, "serving")
    scaling = serving["shard_scaling"]
    for key in ("requests", "tenants"):
        need(scaling, key, int, "serving.shard_scaling")
        if scaling[key] <= 0:
            raise ValueError(
                f"serving.shard_scaling: {key!r} must be positive"
            )
    need(scaling, "points", list, "serving.shard_scaling")
    if not scaling["points"]:
        raise ValueError("serving.shard_scaling: points must be non-empty")
    for i, point in enumerate(scaling["points"]):
        where = f"serving.shard_scaling.points[{i}]"
        need(point, "shards", int, where)
        for key in ("wall_s", "rps"):
            need(point, key, (int, float), where)
            if point[key] <= 0:
                raise ValueError(f"{where}: {key!r} must be positive")
    need(scaling, "identical_to_serial", bool, "serving.shard_scaling")
    if scaling["identical_to_serial"] is not True:
        raise ValueError(
            "serving.shard_scaling: sharded results must be bit-identical "
            "to serial replay"
        )
    need(report, "datagen", dict, "report")
    datagen = report["datagen"]
    need(datagen, "fork", dict, "datagen")
    fork = datagen["fork"]
    for key in ("programs", "pairs"):
        need(fork, key, int, "datagen.fork")
        if fork[key] <= 0:
            raise ValueError(f"datagen.fork: {key!r} must be positive")
    for key in ("naive_wall_s", "forked_wall_s", "speedup"):
        need(fork, key, (int, float), "datagen.fork")
        if fork[key] <= 0:
            raise ValueError(f"datagen.fork: {key!r} must be positive")
    need(fork, "identical_labels", bool, "datagen.fork")
    if fork["identical_labels"] is not True:
        raise ValueError(
            "datagen.fork: forked labels must be bit-identical to naive"
        )
    need(datagen, "pipeline", dict, "datagen")
    pipeline = datagen["pipeline"]
    for key in ("programs", "rows", "shards"):
        need(pipeline, key, int, "datagen.pipeline")
        if pipeline[key] <= 0:
            raise ValueError(f"datagen.pipeline: {key!r} must be positive")
    for key in ("rows_per_s_generated",):
        need(pipeline, key, (int, float), "datagen.pipeline")
        if pipeline[key] <= 0:
            raise ValueError(f"datagen.pipeline: {key!r} must be positive")


def compare_to_baseline(
    report: dict, baseline: dict, max_regression: float = 0.20
) -> list[str]:
    """Regression check against a recorded baseline report.

    Compares the machine-independent fast/reference speedup ratios (the
    geomean and each workload) — not absolute instructions/second, which
    depend on runner hardware. Returns a list of human-readable failures
    (empty when within tolerance).
    """
    failures: list[str] = []
    floor = 1.0 - max_regression
    base_geo = baseline["speedup"]["geomean"]
    new_geo = report["speedup"]["geomean"]
    if new_geo < base_geo * floor:
        failures.append(
            f"geomean speedup regressed: {new_geo:.2f}x vs baseline "
            f"{base_geo:.2f}x (floor {base_geo * floor:.2f}x)"
        )
    base_rows = {
        (row["name"], row["level"]): row for row in baseline["workloads"]
    }
    for row in report["workloads"]:
        base = base_rows.get((row["name"], row["level"]))
        if base is None:
            continue
        if row["speedup"] < base["speedup"] * floor:
            failures.append(
                f"{row['name']} (level {row['level']}): speedup "
                f"{row['speedup']:.2f}x vs baseline {base['speedup']:.2f}x"
            )
    # Compiled-tier gate: geomean of compiled/reference speedups. Baselines
    # recorded before schema v4 have no compiled numbers and are tolerated
    # — the gate simply skips.
    base_compiled = baseline.get("speedup_compiled")
    if base_compiled is not None and "speedup_compiled" in report:
        base_geo = base_compiled["geomean"]
        new_geo = report["speedup_compiled"]["geomean"]
        if new_geo < base_geo * floor:
            failures.append(
                f"compiled speedup geomean regressed: {new_geo:.2f}x vs "
                f"baseline {base_geo:.2f}x (floor {base_geo * floor:.2f}x)"
            )
    base_learning = baseline.get("learning")
    if base_learning is not None:
        base_geo = base_learning["speedup"]["geomean"]
        new_geo = report["learning"]["speedup"]["geomean"]
        if new_geo < base_geo * floor:
            failures.append(
                f"learning speedup geomean regressed: {new_geo:.2f}x vs "
                f"baseline {base_geo:.2f}x (floor {base_geo * floor:.2f}x)"
            )
    # Serving gate: concurrent-over-serial wall ratio for the same stream
    # (lower is better; both sides measured on this runner, so the ratio
    # is machine-independent). Baselines recorded before schema v3 have
    # no serving section and are tolerated — the gate simply skips.
    base_serving = baseline.get("serving")
    if base_serving is not None and "serving" in report:
        base_ratio = base_serving["overhead_ratio"]
        new_ratio = report["serving"]["overhead_ratio"]
        if new_ratio > base_ratio * (1.0 + max_regression):
            failures.append(
                f"serving overhead ratio regressed: {new_ratio:.2f} vs "
                f"baseline {base_ratio:.2f} "
                f"(ceiling {base_ratio * (1.0 + max_regression):.2f})"
            )
    # Batch-kernel gate: the batched inference kernel's speedup geomean
    # over per-row predicts (both sides timed on the same forest and
    # query matrix on this runner, so the ratio is machine-independent).
    # Baselines recorded before schema v6 have no batch_kernel
    # subsection and are tolerated — the gate simply skips.
    base_kernel = (baseline.get("serving") or {}).get("batch_kernel")
    new_kernel = (report.get("serving") or {}).get("batch_kernel")
    if base_kernel is not None and new_kernel is not None:
        base_geo = base_kernel["speedup"]["geomean"]
        new_geo = new_kernel["speedup"]["geomean"]
        if new_geo < base_geo * floor:
            failures.append(
                f"batch kernel speedup geomean regressed: {new_geo:.2f}x "
                f"vs baseline {base_geo:.2f}x "
                f"(floor {base_geo * floor:.2f}x)"
            )
    # Datagen gate: the forked labeler's speedup over independent-runs
    # labeling (both sides timed on this runner, so the ratio is
    # machine-independent). Baselines recorded before schema v5 have no
    # datagen section and are tolerated — the gate simply skips.
    base_datagen = baseline.get("datagen")
    if base_datagen is not None and "datagen" in report:
        base_fork = base_datagen["fork"]["speedup"]
        new_fork = report["datagen"]["fork"]["speedup"]
        if new_fork < base_fork * floor:
            failures.append(
                f"fork labeling speedup regressed: {new_fork:.2f}x vs "
                f"baseline {base_fork:.2f}x (floor {base_fork * floor:.2f}x)"
            )
    return failures


def format_report(report: dict) -> str:
    """Human-readable summary for the CLI."""
    lines = [
        "workload        level  ref Mips  fast Mips  comp Mips  "
        "fast    compiled"
    ]
    for row in report["workloads"]:
        level = "base" if row["level"] is None else str(row["level"])
        lines.append(
            f"{row['name']:<15} {level:>5}  "
            f"{row['reference_ips'] / 1e6:>8.2f}  {row['fast_ips'] / 1e6:>9.2f}  "
            f"{row['compiled_ips'] / 1e6:>9.2f}  "
            f"{row['speedup']:>5.2f}x  {row['speedup_compiled']:>7.2f}x"
        )
    sp = report["speedup"]
    lines.append(
        f"speedup (fast): geomean {sp['geomean']:.2f}x, "
        f"min {sp['min']:.2f}x, max {sp['max']:.2f}x"
    )
    spc = report["speedup_compiled"]
    lines.append(
        f"speedup (compiled): geomean {spc['geomean']:.2f}x, "
        f"min {spc['min']:.2f}x, max {spc['max']:.2f}x"
    )
    cell = report["sweep_cell"]
    lines.append(
        f"sweep cell ({cell['benchmark']}, {cell['runs']} runs): "
        f"cache off {cell['wall_s_cache_off']:.2f}s, "
        f"cold {cell['wall_s_cache_cold']:.2f}s, "
        f"warm {cell['wall_s_cache_warm']:.2f}s"
    )
    fuzz = report["fuzz"]
    lines.append(
        f"fuzz: {fuzz['iterations']} iteration(s) in {fuzz['wall_s']:.2f}s "
        f"({fuzz['iterations_per_s']:.2f}/s)"
    )
    from .forgebench import format_datagen
    from .learnbench import format_learning
    from .servebench import format_serving

    lines.extend(format_learning(report["learning"]))
    if "serving" in report:
        lines.extend(format_serving(report["serving"]))
    if "datagen" in report:
        lines.extend(format_datagen(report["datagen"]))
    return "\n".join(lines)


def write_report(report: dict, path) -> None:
    validate_bench_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
