"""Benchmark framework: programs + input models + XICL specs.

Each benchmark models one of the paper's Java programs (Table I): a
MiniLang program whose method-hotness distribution and running time depend
on its input, a generator producing the input population used in the
experiments, an XICL specification, and a launcher mapping a command line
to the program entry's arguments.

The input files referenced by command lines are synthetic
(:class:`~repro.xicl.filesystem.InMemoryFileSystem` stubs carrying sizes
and parsed metadata) — the substitution DESIGN.md documents for the paper's
collected real inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from random import Random

from ..core.application import Application
from ..lang.compiler import compile_source
from ..vm.program import Program
from ..xicl.features import FeatureVector
from ..xicl.filesystem import InMemoryFileSystem, MemoryFile
from ..xicl.methods import XFMethodRegistry
from ..xicl.parser import parse_spec


@dataclass(frozen=True)
class BenchInput:
    """One concrete invocation of a benchmark."""

    cmdline: str
    files: dict[str, MemoryFile] = field(default_factory=dict)

    def __hash__(self) -> int:  # pragma: no cover - convenience only
        return hash(self.cmdline)


class Benchmark:
    """Base class; concrete benchmarks override the class attributes and
    the two hooks (:meth:`generate_inputs`, :meth:`launch_args`)."""

    #: Benchmark name as in Table I.
    name: str = ""
    #: Source suite: "jvm98", "dacapo", or "grande".
    suite: str = ""
    #: Size of the input population (Table I's "# Inputs" column).
    n_inputs: int = 10
    #: Runs per experiment (30, or 70 for programs with many inputs).
    runs: int = 30
    #: Whether the paper groups it as strongly input-sensitive.
    input_sensitive: bool = False
    #: MiniLang source of the workload program.
    source: str = ""
    #: XICL specification text.
    spec_text: str = ""

    # -- hooks ----------------------------------------------------------------
    def make_registry(self) -> XFMethodRegistry:
        """Feature-method registry (override to add programmer-defined
        extractors, the paper's 4 user-defined features)."""
        return XFMethodRegistry()

    def generate_inputs(self, rng: Random) -> list[BenchInput]:
        """Produce the benchmark's input population."""
        raise NotImplementedError

    def launch_args(self, fvector: FeatureVector) -> tuple:
        """Map the extracted features of an invocation to entry args."""
        raise NotImplementedError

    # -- assembly ---------------------------------------------------------
    @cached_property
    def program(self) -> Program:
        return compile_source(self.source, name=self.name)

    def build(self, seed: int = 0) -> tuple[Application, list[BenchInput]]:
        """Compile the program, synthesize the inputs, wire the app."""
        rng = Random(seed)
        inputs = self.generate_inputs(rng)
        fs = InMemoryFileSystem()
        for bench_input in inputs:
            for path, memory_file in bench_input.files.items():
                fs.add(path, memory_file)
        spec = parse_spec(self.spec_text, application=self.name) if self.spec_text else None

        def launcher(tokens: list[str], fvector: FeatureVector, _fs) -> tuple:
            return self.launch_args(fvector)

        app = Application(
            name=self.name,
            program=self.program,
            spec=spec,
            registry=self.make_registry(),
            filesystem=fs,
            launcher=launcher,
        )
        return app, inputs


def feature_int(fvector: FeatureVector, name: str, default: int = 0) -> int:
    """Fetch a numeric feature as an int (helper for launchers)."""
    value = fvector.get(name, default)
    try:
        return int(value)
    except (TypeError, ValueError):
        return default
