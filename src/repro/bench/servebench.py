"""Wall-clock bench section for the serving layer (``docs/serving.md``).

Wraps the fleet-serving study
(:func:`~repro.experiments.server_study.run_fleet_study`) into the
``serving`` section of ``BENCH_vm.json``: sustained concurrent
mixed-tenant traffic with request latency percentiles (p50/p95/p99),
throughput, hot-swap and shed counts, and the soundness invariant that
per-tenant results are bit-identical to serial replay.

Latency percentiles and req/s are host-dependent and therefore only
*reported*; the regression gate tracks ``overhead_ratio`` — concurrent
serving wall over serial replay wall for the same stream, measured on
the same runner — which is machine-independent the same way the
fast/reference engine speedups are.
"""

from __future__ import annotations

import time


def bench_serving(quick: bool = False) -> dict:
    """Run the fleet study at bench scale and emit the serving section."""
    from ..experiments.server_study import run_fleet_study

    requests = 240 if quick else 1200
    tenants = 3 if quick else 4
    start = time.perf_counter()
    result = run_fleet_study(
        seed=0, requests=requests, tenants=tenants, refit_interval=20
    )
    wall = time.perf_counter() - start
    if not result.identical_to_serial:  # pragma: no cover
        raise AssertionError(
            "serving diverged from serial replay: "
            + "; ".join(result.mismatches[:3])
        )
    return {
        "requests": result.requests,
        "tenants": result.tenants,
        "wall_s": result.wall_s,
        "serial_wall_s": result.serial_wall_s,
        "total_wall_s": wall,
        "rps": result.rps,
        "latency_ms": {
            "p50": result.latency_ms["p50"],
            "p95": result.latency_ms["p95"],
            "p99": result.latency_ms["p99"],
            "mean": result.latency_ms["mean"],
        },
        "overhead_ratio": result.overhead_ratio,
        "swaps": result.swaps,
        "sheds": result.sheds,
        "batches": result.batches,
        "identical_to_serial": result.identical_to_serial,
    }


def format_serving(section: dict) -> list[str]:
    """Human-readable lines for the CLI report."""
    latency = section["latency_ms"]
    return [
        f"serving: {section['requests']} request(s), "
        f"{section['tenants']} tenant(s), {section['rps']:.0f} req/s",
        f"serving latency ms: p50 {latency['p50']:.2f}, "
        f"p95 {latency['p95']:.2f}, p99 {latency['p99']:.2f} "
        f"(overhead ratio {section['overhead_ratio']:.2f} vs serial)",
        f"serving events: {section['swaps']} swap(s), "
        f"{section['sheds']} shed(s), {section['batches']} batch(es)",
    ]
