"""Wall-clock bench section for the serving layer (``docs/serving.md``).

Wraps the fleet-serving study
(:func:`~repro.experiments.server_study.run_fleet_study`) into the
``serving`` section of ``BENCH_vm.json``: sustained concurrent
mixed-tenant traffic with request latency percentiles (p50/p95/p99),
throughput, hot-swap and shed counts, and the soundness invariant that
per-tenant results are bit-identical to serial replay.

Schema v6 adds two subsections:

- ``batch_kernel`` — the batched inference kernel
  (:meth:`~repro.learning.flat.FlatForest.predict_batch`) against
  per-row ``predict_all`` on the same forest and query matrix, at
  several batch sizes, with outputs checked bit-identical. The speedup
  geomean over batch sizes >= 16 (the serving drain regime) is the
  gated ratio.
- ``shard_scaling`` — requests/s for the same stream through the
  multi-process :class:`~repro.serving.shards.ShardRouter` at 1/2/4
  shards, every point checked bit-identical to serial replay.

Latency percentiles and req/s are host-dependent and therefore only
*reported*; the regression gate tracks ``overhead_ratio`` and the
batch-kernel speedup geomean — both ratios of two timings taken on the
same runner, machine-independent the same way the fast/reference engine
speedups are.
"""

from __future__ import annotations

import math
import time
from random import Random

#: Batch sizes timed by the kernel bench; sizes >= _GATE_SIZE feed the
#: gated geomean (16 is the serving layer's default ``batch_max``).
_BATCH_SIZES = (1, 16, 64, 256)
_GATE_SIZE = 16


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_batch_kernel(quick: bool = False) -> dict:
    """Per-row ``predict_all`` vs. the batched kernel, outputs checked.

    Builds the same Table-I-scale forest the learning bench uses, then
    times answering an identical query matrix both ways at each batch
    size. Per-request microseconds are reported for both paths; the
    speedup is their ratio, so it is machine-independent.
    """
    from .learnbench import _build_trained, _synthetic_vector

    methods, runs = (40, 60) if quick else (100, 150)
    builder = _build_trained(methods, runs)
    builder.refit_all()
    forest = builder.forest
    rng = Random(7)
    vectors = [_synthetic_vector(rng) for _ in range(max(_BATCH_SIZES))]
    # Warm both paths off the timed region (compiles the batch program).
    forest.predict_all(vectors[0])
    forest.predict_batch(vectors[:2])

    rows = []
    identical = True
    trials = 3
    for size in _BATCH_SIZES:
        batch = vectors[:size]
        # Inner repeats keep each timed region well above timer noise
        # for the small batch sizes.
        inner = max(1, 256 // size)
        per_row_walls, batch_walls = [], []
        per_row_out = batch_out = None
        for _ in range(trials):
            start = time.perf_counter()
            for _ in range(inner):
                per_row_out = [forest.predict_all(v) for v in batch]
            per_row_walls.append((time.perf_counter() - start) / inner)
            start = time.perf_counter()
            for _ in range(inner):
                batch_out = forest.predict_batch(batch)
            batch_walls.append((time.perf_counter() - start) / inner)
        identical = identical and per_row_out == batch_out
        per_row_us = min(per_row_walls) / size * 1e6
        batch_us = min(batch_walls) / size * 1e6
        rows.append(
            {
                "batch_size": size,
                "per_row_us": per_row_us,
                "batch_us": batch_us,
                "speedup": per_row_us / batch_us,
            }
        )
    gated = [r["speedup"] for r in rows if r["batch_size"] >= _GATE_SIZE]
    return {
        "trees": len(forest),
        "rows": rows,
        "identical": identical,
        "speedup": {
            "geomean": _geomean(gated),
            "min": min(gated),
            "max": max(gated),
        },
    }


def bench_shard_scaling(quick: bool = False) -> dict:
    """Requests/s through the multi-process router at 1/2/4 shards.

    Every point replays the same request stream and is checked
    bit-identical to one serial baseline (the kill pass is exercised by
    ``repro serve --study --shards N`` and the shard test suite, not
    re-run here). Quick mode stops at 2 shards to keep CI's bench-smoke
    within budget.
    """
    from ..experiments.server_study import run_sharded_study

    requests = 160 if quick else 400
    tenants = 3 if quick else 4
    counts = (1, 2) if quick else (1, 2, 4)
    result = run_sharded_study(
        seed=0,
        requests=requests,
        tenants=tenants,
        shard_counts=counts,
        refit_interval=20,
        kill=False,
    )
    identical = all(point["identical"] for point in result.points)
    if not identical:  # pragma: no cover
        mismatches = [m for p in result.points for m in p["mismatches"]]
        raise AssertionError(
            "sharded serving diverged from serial replay: "
            + "; ".join(mismatches[:3])
        )
    return {
        "requests": result.requests,
        "tenants": result.tenants,
        "points": [
            {
                "shards": point["shards"],
                "wall_s": point["wall_s"],
                "rps": point["rps"],
            }
            for point in result.points
        ],
        "identical_to_serial": identical,
    }


def bench_serving(quick: bool = False) -> dict:
    """Run the fleet study at bench scale and emit the serving section."""
    from ..experiments.server_study import run_fleet_study

    requests = 240 if quick else 1200
    tenants = 3 if quick else 4
    start = time.perf_counter()
    result = run_fleet_study(
        seed=0, requests=requests, tenants=tenants, refit_interval=20
    )
    wall = time.perf_counter() - start
    if not result.identical_to_serial:  # pragma: no cover
        raise AssertionError(
            "serving diverged from serial replay: "
            + "; ".join(result.mismatches[:3])
        )
    return {
        "requests": result.requests,
        "tenants": result.tenants,
        "wall_s": result.wall_s,
        "serial_wall_s": result.serial_wall_s,
        "total_wall_s": wall,
        "rps": result.rps,
        "latency_ms": {
            "p50": result.latency_ms["p50"],
            "p95": result.latency_ms["p95"],
            "p99": result.latency_ms["p99"],
            "mean": result.latency_ms["mean"],
        },
        "overhead_ratio": result.overhead_ratio,
        "swaps": result.swaps,
        "sheds": result.sheds,
        "batches": result.batches,
        "identical_to_serial": result.identical_to_serial,
        "batch_kernel": bench_batch_kernel(quick=quick),
        "shard_scaling": bench_shard_scaling(quick=quick),
    }


def format_serving(section: dict) -> list[str]:
    """Human-readable lines for the CLI report."""
    latency = section["latency_ms"]
    lines = [
        f"serving: {section['requests']} request(s), "
        f"{section['tenants']} tenant(s), {section['rps']:.0f} req/s",
        f"serving latency ms: p50 {latency['p50']:.2f}, "
        f"p95 {latency['p95']:.2f}, p99 {latency['p99']:.2f} "
        f"(overhead ratio {section['overhead_ratio']:.2f} vs serial)",
        f"serving events: {section['swaps']} swap(s), "
        f"{section['sheds']} shed(s), {section['batches']} batch(es)",
    ]
    kernel = section.get("batch_kernel")
    if kernel is not None:
        per_size = ", ".join(
            f"bs{row['batch_size']} {row['speedup']:.2f}x"
            for row in kernel["rows"]
        )
        lines.append(
            f"batch kernel ({kernel['trees']} trees): geomean "
            f"{kernel['speedup']['geomean']:.2f}x at bs>={_GATE_SIZE} "
            f"({per_size})"
        )
    scaling = section.get("shard_scaling")
    if scaling is not None:
        per_point = ", ".join(
            f"{point['shards']}x {point['rps']:.0f} req/s"
            for point in scaling["points"]
        )
        lines.append(
            f"shard scaling ({scaling['requests']} request(s)): {per_point}"
        )
    return lines
