"""Wall-clock benchmark for the learning layer's training/prediction engine.

The VM-side suite (:mod:`repro.bench.vmbench`) times the execution
engines; this module times the other wall-clock consumer in an evolvable
run — offline model construction and run-start prediction — on a
synthetic Table-I-scale workload (one feature matrix shared by ~a hundred
per-method models, mixed numeric/categorical features, ~5% missing). It
reports three things:

1. **Training throughput** — a full fast-engine ``refit_all`` over every
   method model (shared presort + sweep-line split search), in training
   rows per second.
2. **Speedup vs. reference** — the reference builder is timed on a small
   method subset (it is too slow to run over all of them) against the
   fast engine *including its presort cost*, asserting the resulting
   trees are identical; reported per method plus the geomean.
3. **Predict-all latency** — microseconds for one pass of the flattened
   forest routing a fresh input vector through every method tree, the
   exact operation on the run-start hot path.

Results land in the ``learning`` section of ``BENCH_vm.json``; CI's
regression gate compares the machine-independent fast/reference speedup
geomean against the checked-in baseline, like the VM workloads.
"""

from __future__ import annotations

import time
from random import Random

from ..aos.strategy import LevelStrategy
from ..core.model_builder import ModelBuilder
from ..learning.matrix import TrainingMatrix
from ..learning.tree import ClassificationTree, TreeParams
from ..xicl.features import FeatureVector

#: Production hyper-parameters — the bench must time the trees the VM
#: actually builds, not a contrived deep configuration.
LEARN_PARAMS = TreeParams()

#: (methods, runs) per mode — quick keeps CI's bench-smoke fast.
_SIZES = {"quick": (40, 60), "full": (100, 150)}

#: Reference-engine method subset size per mode.
_SUBSET = {"quick": 4, "full": 8}

_MODES = ["interp", "baseline", "jit", "tiered"]


def _synthetic_vector(rng: Random) -> FeatureVector:
    """One run's input features: mixed kinds, ~5% missing per feature."""
    vector = FeatureVector()
    if rng.random() > 0.05:
        vector.append_value("input_size", rng.randint(1, 2000))
    if rng.random() > 0.05:
        vector.append_value("element_range", rng.uniform(0.0, 100.0))
    if rng.random() > 0.05:
        vector.append_value("mode", rng.choice(_MODES))
    if rng.random() > 0.05:
        vector.append_value("nesting", rng.randint(0, 6))
    if rng.random() > 0.05:
        vector.append_value("dataset_kind", rng.choice(["dense", "sparse"]))
    return vector


def synthetic_history(
    methods: int, runs: int, seed: int = 0
) -> list[tuple[FeatureVector, LevelStrategy]]:
    """A Table-I-scale observation history.

    Every run observes the same feature vector for all *methods* (the real
    workload shape: one input, hundreds of methods), with per-method ideal
    levels that correlate with the features plus seeded noise — enough
    signal that trees grow to realistic depth, enough noise that they are
    not trivial stumps.
    """
    rng = Random(seed)
    names = [f"method_{i:03d}" for i in range(methods)]
    history = []
    for _ in range(runs):
        vector = _synthetic_vector(rng)
        size = vector.get("input_size") or 0
        nesting = vector.get("nesting") or 0
        base = (size > 500) + (size > 1200) + (nesting > 3)
        levels = {}
        for k, name in enumerate(names):
            noise = rng.random() < 0.1
            levels[name] = ((base + k + noise) % 4) - 1  # -1..2
        history.append((vector, LevelStrategy(levels)))
    return history


def _build_trained(methods: int, runs: int, seed: int = 0) -> ModelBuilder:
    builder = ModelBuilder(LEARN_PARAMS, engine="fast")
    for vector, ideal in synthetic_history(methods, runs, seed=seed):
        builder.observe_run(vector, ideal)
    return builder


def bench_training(quick: bool = False) -> tuple[ModelBuilder, dict]:
    """Time one full fast-engine offline-construction pass."""
    methods, runs = _SIZES["quick" if quick else "full"]
    builder = _build_trained(methods, runs)
    start = time.perf_counter()
    builder.refit_all()
    wall = time.perf_counter() - start
    rows = methods * runs
    return builder, {
        "methods": methods,
        "runs": runs,
        "training_rows": rows,
        "wall_s": wall,
        "rows_per_s": rows / wall,
        "presort": builder.presort_stats(),
    }


def bench_speedup(
    builder: ModelBuilder, quick: bool = False, repeats: int = 3
) -> dict:
    """Reference vs. fast model construction on a method subset.

    The fast timing *includes* building the presorted matrix (nothing is
    amortized away), and every timed pair is checked for identical trees
    — a benchmark that silently compared different models would be
    meaningless.
    """
    subset = builder.method_names[: _SUBSET["quick" if quick else "full"]]
    rows = []
    identical = True
    for method in subset:
        dataset = builder.model_for(method).dataset
        ref_tree = fast_tree = None
        ref_walls, fast_walls = [], []
        for _ in range(repeats):
            start = time.perf_counter()
            ref_tree = ClassificationTree(
                LEARN_PARAMS, engine="reference"
            ).fit(dataset)
            ref_walls.append(time.perf_counter() - start)
            start = time.perf_counter()
            matrix = TrainingMatrix.from_dataset(dataset)
            fast_tree = ClassificationTree(LEARN_PARAMS, engine="fast").fit(
                dataset, matrix=matrix
            )
            fast_walls.append(time.perf_counter() - start)
        identical = identical and ref_tree.render() == fast_tree.render()
        rows.append(
            {
                "method": method,
                "reference_wall_s": min(ref_walls),
                "fast_wall_s": min(fast_walls),
                "speedup": min(ref_walls) / min(fast_walls),
            }
        )
    speedups = [row["speedup"] for row in rows]
    return {
        "methods_timed": len(rows),
        "per_method": rows,
        "geomean": _geomean(speedups),
        "min": min(speedups),
        "max": max(speedups),
        "identical_trees": identical,
    }


def bench_predict(builder: ModelBuilder, quick: bool = False) -> dict:
    """Time the run-start hot path: ``predict_all`` over a fresh vector."""
    queries = 200 if quick else 1000
    rng = Random(1)
    vectors = [_synthetic_vector(rng) for _ in range(queries)]
    forest = builder.forest  # compile off the timed path, as in production
    for vector in vectors[:10]:  # warm-up
        forest.predict_all(vector)
    start = time.perf_counter()
    for vector in vectors:
        forest.predict_all(vector)
    wall = time.perf_counter() - start
    return {
        "queries": queries,
        "trees": len(forest),
        "wall_s": wall,
        "per_call_us": wall / queries * 1e6,
    }


def _geomean(values: list[float]) -> float:
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_learning(quick: bool = False) -> dict:
    """Run the learning bench; the ``learning`` section of the report."""
    builder, training = bench_training(quick=quick)
    speedup = bench_speedup(builder, quick=quick)
    predict = bench_predict(builder, quick=quick)
    return {"training": training, "speedup": speedup, "predict": predict}


def format_learning(section: dict) -> list[str]:
    """Human-readable lines for the CLI summary."""
    training = section["training"]
    speedup = section["speedup"]
    predict = section["predict"]
    return [
        f"learning: refit {training['methods']} methods x "
        f"{training['runs']} runs in {training['wall_s']:.2f}s "
        f"({training['rows_per_s'] / 1e3:.1f}k rows/s)",
        f"learning speedup vs reference ({speedup['methods_timed']} "
        f"methods): geomean {speedup['geomean']:.2f}x, "
        f"min {speedup['min']:.2f}x, max {speedup['max']:.2f}x",
        f"predict_all ({predict['trees']} trees): "
        f"{predict['per_call_us']:.0f}us/call",
    ]
