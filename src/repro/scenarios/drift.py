"""Drift scenarios: seeded input-stream transformers for any benchmark.

A :class:`DriftSpec` describes how a benchmark's input distribution
moves over the run stream. The population is split into two *regimes* —
the lower and upper halves of the input index range (benchmarks order
their populations by generated size/shape, so the halves have distinct
feature and ideal-label distributions) — and the spec decides which
regime each run draws from:

- ``gradual``  — the probability of drawing from regime B ramps linearly
  from 0 to 1 across a ``[ramp_start, ramp_stop)`` window of the stream.
- ``abrupt``   — regime A until the changepoint, regime B after it.
- ``cyclic``   — day/night mixes: regimes alternate every ``period`` runs.
- ``adversarial`` — worst-case whipsaw: regime flips at geometrically
  shrinking intervals, re-shifting right about when a decayed-average
  learner has re-converged on the previous regime.

Everything is a pure function of ``(spec, n_inputs, n_runs, seed)``;
the returned sequence is plain input indices, so the existing serial
and parallel engines run it unchanged (and bit-identically — the
parallel planner ships the sequence verbatim inside every cell spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

#: The four shift types of the non-stationary suite.
SHIFT_KINDS = ("gradual", "abrupt", "cyclic", "adversarial")

#: Deterministic per-kind RNG stream salts (never derived from ``hash``,
#: which is process-randomized).
_KIND_SALT = {"gradual": 101, "abrupt": 211, "cyclic": 307, "adversarial": 401}


@dataclass(frozen=True)
class DriftSpec:
    """One non-stationary input schedule, applicable to any benchmark."""

    #: One of :data:`SHIFT_KINDS`.
    kind: str
    #: ``abrupt``: fraction of the stream after which regime B takes over.
    changepoint: float = 0.5
    #: ``gradual``: fractions of the stream where the A→B ramp starts/stops.
    ramp_start: float = 0.25
    ramp_stop: float = 0.75
    #: ``cyclic``: runs per half-cycle (a "day" or a "night").
    period: int = 8
    #: ``adversarial``: length of the first regime segment; each following
    #: segment halves (floored at 2), so the whipsaw accelerates.
    first_segment: int = 8

    def __post_init__(self) -> None:
        if self.kind not in SHIFT_KINDS:
            raise ValueError(
                f"unknown drift kind {self.kind!r} (known: {SHIFT_KINDS})"
            )
        if not 0.0 < self.changepoint < 1.0:
            raise ValueError("changepoint must be in (0, 1)")
        if not 0.0 <= self.ramp_start < self.ramp_stop <= 1.0:
            raise ValueError("need 0 <= ramp_start < ramp_stop <= 1")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.first_segment < 2:
            raise ValueError("first_segment must be >= 2")

    def describe(self) -> str:
        if self.kind == "abrupt":
            return f"abrupt@{self.changepoint:.2f}"
        if self.kind == "gradual":
            return f"gradual[{self.ramp_start:.2f},{self.ramp_stop:.2f})"
        if self.kind == "cyclic":
            return f"cyclic/p{self.period}"
        return f"adversarial/s{self.first_segment}"


#: The canonical suite: one spec per shift type, used by the `repro
#: drift` study, the chaos drift campaigns, and CI smoke jobs.
DEFAULT_DRIFT_SPECS: tuple[DriftSpec, ...] = (
    DriftSpec("gradual"),
    DriftSpec("abrupt"),
    DriftSpec("cyclic"),
    DriftSpec("adversarial"),
)


def get_drift_spec(kind: str) -> DriftSpec:
    """The canonical spec for one shift type (case-insensitive)."""
    for spec in DEFAULT_DRIFT_SPECS:
        if spec.kind == kind.lower():
            return spec
    raise KeyError(f"unknown drift kind {kind!r} (known: {SHIFT_KINDS})")


def partition_inputs(n_inputs: int) -> tuple[range, range]:
    """Split the input index range into the two regimes (A, B).

    With a single input both regimes are that input (the schedule is
    then stationary by necessity, which keeps tiny tests valid).
    """
    if n_inputs < 1:
        raise ValueError("need at least one input")
    half = max(1, n_inputs // 2)
    return range(0, half), range(half, n_inputs) or range(0, half)


def _regime_schedule(spec: DriftSpec, n_runs: int, rng: Random) -> list[int]:
    """Per-run regime choice (0 = A, 1 = B) for the whole stream."""
    if spec.kind == "abrupt":
        cut = int(spec.changepoint * n_runs)
        return [0 if t < cut else 1 for t in range(n_runs)]
    if spec.kind == "cyclic":
        return [(t // spec.period) % 2 for t in range(n_runs)]
    if spec.kind == "adversarial":
        schedule: list[int] = []
        regime, segment = 0, spec.first_segment
        while len(schedule) < n_runs:
            schedule.extend([regime] * segment)
            regime ^= 1
            segment = max(2, segment // 2)
        return schedule[:n_runs]
    # gradual: the probability of regime B ramps over the window.
    start = spec.ramp_start * max(1, n_runs)
    stop = spec.ramp_stop * max(1, n_runs)
    schedule = []
    for t in range(n_runs):
        if t < start:
            p_b = 0.0
        elif t >= stop:
            p_b = 1.0
        else:
            p_b = (t - start) / (stop - start)
        schedule.append(1 if rng.random() < p_b else 0)
    return schedule


def _stream_rng(spec: DriftSpec, seed: int) -> Random:
    return Random(seed * 7919 + _KIND_SALT[spec.kind])


def drift_sequence(
    spec: DriftSpec, n_inputs: int, n_runs: int, seed: int
) -> list[int]:
    """The drifted input-index sequence for one experiment.

    Deterministic in ``(spec, n_inputs, n_runs, seed)``: one RNG stream
    drives both the gradual-ramp coin and the within-regime draws, so
    the same arguments always produce the identical sequence — the
    parallel engine's bit-identity then follows from shipping this
    sequence verbatim to every cell.
    """
    regime_a, regime_b = partition_inputs(n_inputs)
    rng = _stream_rng(spec, seed)
    schedule = _regime_schedule(spec, n_runs, rng)
    regimes = (regime_a, regime_b)
    return [
        regimes[which][rng.randrange(len(regimes[which]))]
        for which in schedule
    ]


def drift_labels(spec: DriftSpec, n_runs: int, seed: int) -> list[str]:
    """Per-run regime labels ("A"/"B") aligned with :func:`drift_sequence`.

    Replays the same RNG stream, so labels and indices always agree —
    a test zips them against the regime partition to prove it.
    """
    rng = _stream_rng(spec, seed)
    schedule = _regime_schedule(spec, n_runs, rng)
    return ["AB"[which] for which in schedule]


def shift_points(spec: DriftSpec, n_runs: int, seed: int = 0) -> list[int]:
    """Run indices where the *generating* distribution changes.

    These are schedule boundaries (the ground truth the changepoint
    detector is scored against), not detector output: the first index
    of every run whose regime differs from its predecessor's, plus the
    ramp window edges for ``gradual`` (where the mixture itself starts
    and stops moving).
    """
    if spec.kind == "gradual":
        points = []
        start = int(spec.ramp_start * max(1, n_runs))
        stop = int(spec.ramp_stop * max(1, n_runs))
        for point in (start, stop):
            if 0 < point < n_runs:
                points.append(point)
        return points
    rng = _stream_rng(spec, seed)
    schedule = _regime_schedule(spec, n_runs, rng)
    return [
        t
        for t in range(1, n_runs)
        if schedule[t] != schedule[t - 1]
    ]
