"""Non-stationary scenario suites (see ``docs/robustness.md``).

The paper's §V-B protocol draws every run's input i.i.d. from a fixed
population; this package supplies *input-stream transformers* that make
the distribution move mid-stream — the regime "Virtual Machine Warmup
Blows Hot and Cold" shows real VMs actually live in. Everything here is
a pure function of ``(spec, seed)``: the transformed sequences are
bit-identical at any ``--jobs`` because the parallel engine ships them
verbatim inside each :class:`~repro.experiments.parallel.CellSpec`.
"""

from .drift import (
    DEFAULT_DRIFT_SPECS,
    SHIFT_KINDS,
    DriftSpec,
    drift_labels,
    drift_sequence,
    get_drift_spec,
    partition_inputs,
    shift_points,
)

__all__ = [
    "DEFAULT_DRIFT_SPECS",
    "SHIFT_KINDS",
    "DriftSpec",
    "drift_labels",
    "drift_sequence",
    "get_drift_spec",
    "partition_inputs",
    "shift_points",
]
