"""The crash-safe persistence envelope shared by every on-disk artifact.

Every cross-run artifact the repo persists — evolvable-VM state, JIT
artifacts, sweep result-cache cells — is wrapped in one self-describing
binary envelope:

    REPROENV <version> <kind> <payload-length> <sha256-of-payload>\\n
    <payload bytes>

The header names the artifact *kind* (so a result-cache entry can never
be mistaken for VM state), the exact payload length (torn writes show up
as a length mismatch), and a content checksum (bit rot shows up as a
checksum mismatch). Writes are atomic: payload is written to a temp file
in the destination directory, fsynced, then renamed over the final name,
so readers observe either the previous complete artifact or the new one,
never a partial write.

All filesystem traffic flows through a small :class:`FileSystem`
interface so the fault-injection layer (:mod:`.faults`) can interpose
seeded torn writes, bit flips, and I/O errors without monkeypatching.

Any decode failure raises :class:`EnvelopeError` carrying a
machine-readable ``reason`` — the quarantine layer persists it next to
the offending file.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path

#: Magic token opening every envelope header line.
MAGIC = "REPROENV"

#: Bump on incompatible header changes; old envelopes then quarantine
#: cleanly (reason ``bad-version``) instead of half-parsing.
ENVELOPE_VERSION = 1


class EnvelopeError(Exception):
    """An envelope could not be decoded.

    ``reason`` is a machine-readable token (stable across messages):
    ``truncated-header`` / ``bad-magic`` / ``bad-version`` /
    ``bad-header`` / ``truncated`` / ``length-mismatch`` /
    ``checksum-mismatch`` / ``kind-mismatch``.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


class FileSystem:
    """The real filesystem, behind the interface faults can shim.

    Only the handful of operations the persistence layer needs; every
    method maps onto one obvious ``os``/``pathlib`` call.
    """

    def read_bytes(self, path: str | Path) -> bytes:
        return Path(path).read_bytes()

    def write_bytes_atomic(self, path: str | Path, data: bytes) -> None:
        """Write-temp-then-rename publish of *data* at *path*."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def append_text(self, path: str | Path, text: str) -> None:
        """Append *text* to *path* (the telemetry JSONL write path)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()

    def exists(self, path: str | Path) -> bool:
        return Path(path).exists()

    def move(self, src: str | Path, dst: str | Path) -> None:
        Path(dst).parent.mkdir(parents=True, exist_ok=True)
        os.replace(src, dst)

    def unlink(self, path: str | Path) -> None:
        Path(path).unlink(missing_ok=True)


#: Shared default instance; pass a :class:`~repro.resilience.faults.FaultyFS`
#: instead to inject faults.
REAL_FS = FileSystem()


# ---------------------------------------------------------------------------
# Encode / decode
# ---------------------------------------------------------------------------

def encode_envelope(payload: bytes, kind: str) -> bytes:
    """Wrap *payload* in a header carrying kind, length, and checksum."""
    if any(ch.isspace() for ch in kind) or not kind:
        raise ValueError(f"invalid envelope kind {kind!r}")
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{MAGIC} {ENVELOPE_VERSION} {kind} {len(payload)} {digest}\n"
    return header.encode("ascii") + payload


def decode_envelope(blob: bytes, expected_kind: str | None = None) -> bytes:
    """Unwrap an envelope, verifying every header field; returns payload."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise EnvelopeError("truncated-header", "no header line found")
    try:
        header = blob[:newline].decode("ascii")
    except UnicodeDecodeError as exc:
        raise EnvelopeError("bad-header", f"undecodable header: {exc}") from exc
    fields = header.split(" ")
    if not fields or fields[0] != MAGIC:
        raise EnvelopeError("bad-magic", f"bad magic {fields[0]!r}")
    if len(fields) != 5:
        raise EnvelopeError(
            "bad-header", f"expected 5 header fields, got {len(fields)}"
        )
    _, version, kind, length, digest = fields
    if version != str(ENVELOPE_VERSION):
        raise EnvelopeError(
            "bad-version", f"unsupported envelope version {version!r}"
        )
    try:
        expected_len = int(length)
    except ValueError as exc:
        raise EnvelopeError("bad-header", f"bad length field {length!r}") from exc
    payload = blob[newline + 1:]
    if len(payload) < expected_len:
        raise EnvelopeError(
            "truncated",
            f"payload is {len(payload)} byte(s), header promises {expected_len}",
        )
    if len(payload) > expected_len:
        raise EnvelopeError(
            "length-mismatch",
            f"payload is {len(payload)} byte(s), header promises {expected_len}",
        )
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest:
        raise EnvelopeError(
            "checksum-mismatch",
            f"payload sha256 {actual[:12]}… != header {digest[:12]}…",
        )
    if expected_kind is not None and kind != expected_kind:
        raise EnvelopeError(
            "kind-mismatch", f"artifact is {kind!r}, expected {expected_kind!r}"
        )
    return payload


# ---------------------------------------------------------------------------
# File-level helpers
# ---------------------------------------------------------------------------

def write_envelope(
    path: str | Path,
    payload: bytes,
    *,
    kind: str,
    fs: FileSystem = REAL_FS,
) -> None:
    """Atomically publish *payload* at *path* inside an envelope."""
    fs.write_bytes_atomic(path, encode_envelope(payload, kind))


def read_envelope(
    path: str | Path,
    *,
    expected_kind: str | None = None,
    fs: FileSystem = REAL_FS,
) -> bytes:
    """Read and verify the envelope at *path*; returns the payload.

    Raises ``OSError`` for I/O failures (missing file, EIO) and
    :class:`EnvelopeError` for any corruption.
    """
    return decode_envelope(fs.read_bytes(path), expected_kind)


def write_json_envelope(
    path: str | Path, obj, *, kind: str, fs: FileSystem = REAL_FS
) -> None:
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    write_envelope(path, payload, kind=kind, fs=fs)


def read_json_envelope(
    path: str | Path, *, kind: str, fs: FileSystem = REAL_FS
):
    return json.loads(read_envelope(path, expected_kind=kind, fs=fs))


def write_pickle_envelope(
    path: str | Path, obj, *, kind: str, fs: FileSystem = REAL_FS
) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    write_envelope(path, payload, kind=kind, fs=fs)


def read_pickle_envelope(
    path: str | Path, *, kind: str, fs: FileSystem = REAL_FS
):
    return pickle.loads(read_envelope(path, expected_kind=kind, fs=fs))
