"""Resilience subsystem: crash-safe persistence, fault injection, chaos.

Three pillars (see ``docs/robustness.md``):

1. **Envelope** (:mod:`.envelope`) — every cross-run artifact (VM state,
   JIT artifacts, result-cache cells) is persisted atomically inside a
   versioned, checksummed envelope; loads verify before trusting.
2. **Quarantine + degradation** (:mod:`.quarantine`,
   :mod:`.degradation`) — a corrupt artifact is moved to a
   ``.quarantine/`` sibling with a machine-readable reason, and the
   caller falls back to the paper's low-confidence path (empty records,
   reactive optimization, cache miss), recording the decision in a
   :class:`DegradationReport`.
3. **Fault injection + chaos** (:mod:`.faults`, :mod:`.chaos`) — seeded
   filesystem and worker faults, and the ``repro chaos`` campaign that
   asserts the invariants: results bit-identical to fault-free whenever
   produced, never an unhandled exception, quarantine + fallback on
   every injected corruption.
"""

from .degradation import DegradationEvent, DegradationReport
from .envelope import (
    ENVELOPE_VERSION,
    REAL_FS,
    EnvelopeError,
    FileSystem,
    decode_envelope,
    encode_envelope,
    read_envelope,
    read_json_envelope,
    read_pickle_envelope,
    write_envelope,
    write_json_envelope,
    write_pickle_envelope,
)
from .faults import (
    FaultPlan,
    FaultyFS,
    InjectedFault,
    StaleLockError,
    WorkerFaultPlan,
)
from .quarantine import (
    QUARANTINE_DIR,
    QuarantineRecord,
    quarantine_dir,
    quarantine_file,
)

__all__ = [
    "DegradationEvent",
    "DegradationReport",
    "ENVELOPE_VERSION",
    "EnvelopeError",
    "FaultPlan",
    "FaultyFS",
    "FileSystem",
    "InjectedFault",
    "QUARANTINE_DIR",
    "QuarantineRecord",
    "REAL_FS",
    "StaleLockError",
    "WorkerFaultPlan",
    "decode_envelope",
    "encode_envelope",
    "quarantine_dir",
    "quarantine_file",
    "read_envelope",
    "read_json_envelope",
    "read_pickle_envelope",
    "write_envelope",
    "write_json_envelope",
    "write_pickle_envelope",
]
