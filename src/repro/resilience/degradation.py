"""Degradation accounting: every fallback, recorded.

The resilience contract is "never crashed, never wrong, only slower" —
corruption or I/O failure degrades to the paper's low-confidence path
(empty records, reactive adaptive optimization, cache misses) instead of
propagating. :class:`DegradationReport` is the ledger of those
decisions: every quarantine, cold-start, dropped telemetry event, cell
retry, and serial re-execution lands here so tests, the chaos harness,
and the CLI can assert exactly *how* a run survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import Counter


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback decision."""

    #: Which subsystem degraded: ``state`` / ``result-cache`` /
    #: ``jit-cache`` / ``telemetry`` / ``sweep``.
    component: str
    #: What it did instead of failing: ``quarantine`` / ``cold-start`` /
    #: ``cache-miss`` / ``store-failed`` / ``drop-event`` / ``skip-line`` /
    #: ``retry`` / ``serial-reexec`` / ``cell-failed`` / ``timeout``.
    action: str
    #: Machine-readable cause (an :class:`EnvelopeError` reason, an errno
    #: name, an exception type name, …).
    reason: str
    detail: str = ""
    path: str | None = None

    def describe(self) -> str:
        where = f" [{self.path}]" if self.path else ""
        what = f": {self.detail}" if self.detail else ""
        return f"{self.component}/{self.action} ({self.reason}){where}{what}"


class DegradationReport:
    """Accumulates :class:`DegradationEvent` records across one run."""

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []

    def record(
        self,
        component: str,
        action: str,
        reason: str,
        detail: str = "",
        path: str | None = None,
    ) -> DegradationEvent:
        event = DegradationEvent(
            component=component,
            action=action,
            reason=reason,
            detail=detail,
            path=str(path) if path is not None else None,
        )
        self.events.append(event)
        return event

    def extend(self, other: "DegradationReport") -> None:
        self.events.extend(other.events)

    def count(
        self, component: str | None = None, action: str | None = None
    ) -> int:
        return sum(
            1
            for e in self.events
            if (component is None or e.component == component)
            and (action is None or e.action == action)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # Truthiness follows existence, not emptiness, so callers can
        # write ``report or DegradationReport()`` without surprises.
        return True

    def describe(self) -> str:
        if not self.events:
            return "no degradations"
        counts = Counter(f"{e.component}/{e.action}" for e in self.events)
        parts = ", ".join(
            f"{name}×{count}" for name, count in sorted(counts.items())
        )
        return f"{len(self.events)} degradation(s): {parts}"
