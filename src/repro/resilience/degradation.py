"""Degradation accounting: every fallback, recorded.

The resilience contract is "never crashed, never wrong, only slower" —
corruption or I/O failure degrades to the paper's low-confidence path
(empty records, reactive adaptive optimization, cache misses) instead of
propagating. :class:`DegradationReport` is the ledger of those
decisions: every quarantine, cold-start, dropped telemetry event, cell
retry, and serial re-execution lands here so tests, the chaos harness,
and the CLI can assert exactly *how* a run survived.

The ledger deduplicates: identical degradations (same component, action,
reason, detail, and path) are stored once — the entry keeps its
monotonic sequence number from the first occurrence and an occurrence
count — so a fault that fires on every run of a long campaign cannot
grow the ledger without bound. Counting APIs (:meth:`~DegradationReport
.count`, ``len()``) still report *total* occurrences, so existing
"retried exactly twice" assertions keep their meaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections import Counter

#: The identity under which repeated degradations collapse into one
#: ledger entry.
DedupeKey = tuple[str, str, str, str, str | None]


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded fallback decision (unique per dedupe key)."""

    #: Which subsystem degraded: ``state`` / ``result-cache`` /
    #: ``jit-cache`` / ``telemetry`` / ``sweep`` / ``serving``.
    component: str
    #: What it did instead of failing: ``quarantine`` / ``cold-start`` /
    #: ``cache-miss`` / ``store-failed`` / ``drop-event`` / ``skip-line`` /
    #: ``retry`` / ``serial-reexec`` / ``cell-failed`` / ``timeout`` /
    #: ``rollback`` / ``forced-retrain``.
    action: str
    #: Machine-readable cause (an :class:`EnvelopeError` reason, an errno
    #: name, an exception type name, …).
    reason: str
    detail: str = ""
    path: str | None = None
    #: Monotonic arrival ordinal of this entry's *first* occurrence
    #: (0-based, unique within one report).
    seq: int = 0

    @property
    def dedupe_key(self) -> DedupeKey:
        return (self.component, self.action, self.reason, self.detail,
                self.path)

    def describe(self) -> str:
        where = f" [{self.path}]" if self.path else ""
        what = f": {self.detail}" if self.detail else ""
        return f"{self.component}/{self.action} ({self.reason}){where}{what}"


class DegradationReport:
    """Accumulates :class:`DegradationEvent` records across one run.

    ``events`` holds one entry per distinct degradation, ordered by
    first occurrence; :meth:`occurrences` exposes how often each entry
    repeated. ``len()`` and :meth:`count` total occurrences, not unique
    entries.
    """

    def __init__(self) -> None:
        self.events: list[DegradationEvent] = []
        self._by_key: dict[DedupeKey, DegradationEvent] = {}
        self._occurrences: Counter[DedupeKey] = Counter()
        self._next_seq = 0

    def record(
        self,
        component: str,
        action: str,
        reason: str,
        detail: str = "",
        path: str | None = None,
    ) -> DegradationEvent:
        key: DedupeKey = (
            component,
            action,
            reason,
            detail,
            str(path) if path is not None else None,
        )
        event = self._by_key.get(key)
        if event is None:
            event = DegradationEvent(
                component=component,
                action=action,
                reason=reason,
                detail=detail,
                path=key[4],
                seq=self._next_seq,
            )
            self.events.append(event)
            self._by_key[key] = event
        self._next_seq += 1
        self._occurrences[key] += 1
        return event

    def occurrences(self, event: DegradationEvent) -> int:
        """How many times *event*'s degradation was recorded."""
        return self._occurrences[event.dedupe_key]

    def extend(self, other: "DegradationReport") -> None:
        """Fold *other*'s ledger in, preserving its occurrence counts.

        Entries new to this report are re-sequenced into this report's
        monotonic order (sequence numbers are report-local).
        """
        for event in other.events:
            repeats = other._occurrences[event.dedupe_key]
            for _ in range(repeats):
                self.record(
                    event.component,
                    event.action,
                    event.reason,
                    event.detail,
                    event.path,
                )

    def count(
        self, component: str | None = None, action: str | None = None
    ) -> int:
        return sum(
            self._occurrences[e.dedupe_key]
            for e in self.events
            if (component is None or e.component == component)
            and (action is None or e.action == action)
        )

    def __len__(self) -> int:
        return sum(self._occurrences.values())

    def __bool__(self) -> bool:
        # Truthiness follows existence, not emptiness, so callers can
        # write ``report or DegradationReport()`` without surprises.
        return True

    def describe(self) -> str:
        if not self.events:
            return "no degradations"
        counts: Counter[str] = Counter()
        for event in self.events:
            counts[f"{event.component}/{event.action}"] += (
                self._occurrences[event.dedupe_key]
            )
        parts = ", ".join(
            f"{name}×{count}" for name, count in sorted(counts.items())
        )
        return f"{len(self)} degradation(s): {parts}"
