"""Quarantine: corrupt artifacts are moved aside, never half-trusted.

When a persisted artifact fails to load (bad magic, checksum mismatch,
truncation, unpicklable payload, …) the loader does not delete it —
evidence of corruption is preserved for post-mortems — and it must not
stay in place, where the next reader would trip over it again. Instead
the file moves to a ``.quarantine/`` sibling directory next to where it
lived, with a machine-readable ``*.reason.json`` sidecar describing why,
and the caller degrades (cold start, cache miss) with the decision
recorded in a :class:`~repro.resilience.degradation.DegradationReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .degradation import DegradationReport
from .envelope import REAL_FS, FileSystem

#: Name of the sibling directory quarantined artifacts move into.
QUARANTINE_DIR = ".quarantine"


@dataclass(frozen=True)
class QuarantineRecord:
    """Where a corrupt artifact went and why."""

    original: str
    #: Final resting path, or ``None`` if even the move failed (the file
    #: was then unlinked best-effort so it cannot re-poison loads).
    quarantined: str | None
    reason: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "original": self.original,
            "quarantined": self.quarantined,
            "reason": self.reason,
            "detail": self.detail,
        }


def quarantine_dir(path: str | Path) -> Path:
    """The quarantine directory used for artifacts living at *path*."""
    return Path(path).parent / QUARANTINE_DIR


def quarantine_file(
    path: str | Path,
    reason: str,
    detail: str = "",
    *,
    component: str = "artifact",
    fs: FileSystem = REAL_FS,
    report: DegradationReport | None = None,
) -> QuarantineRecord:
    """Move the corrupt file at *path* into quarantine.

    Never raises: a quarantine that itself hits I/O errors falls back to
    unlinking the offender, and failing even that still returns a record
    (the caller's degradation path proceeds regardless).
    """
    path = Path(path)
    dest_dir = quarantine_dir(path)
    dest = dest_dir / path.name
    counter = 0
    while fs.exists(dest):
        counter += 1
        dest = dest_dir / f"{path.name}.{counter}"
    quarantined: str | None = str(dest)
    try:
        fs.move(path, dest)
    except OSError:
        quarantined = None
        try:
            fs.unlink(path)
        except OSError:
            pass
    record = QuarantineRecord(
        original=str(path),
        quarantined=quarantined,
        reason=reason,
        detail=detail,
    )
    if quarantined is not None:
        # Best-effort sidecar; losing it loses forensics, not safety.
        try:
            fs.write_bytes_atomic(
                dest_dir / f"{dest.name}.reason.json",
                json.dumps(record.to_dict(), sort_keys=True).encode("utf-8"),
            )
        except OSError:
            pass
    if report is not None:
        report.record(
            component, "quarantine", reason, detail=detail, path=str(path)
        )
    return record
