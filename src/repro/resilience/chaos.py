"""The chaos harness: seeded fault campaigns over the persistence stack.

``repro chaos`` runs N iterations. Each iteration derives a fresh
:class:`~repro.resilience.faults.FaultPlan` from the campaign seed and
drives every crash-safe layer through it, asserting the resilience
invariants the repo promises (``docs/robustness.md``):

1. **Never wrong** — whenever a result is produced (a state load
   succeeds, a cache returns a hit, a VM completes a run), it is
   bit-identical to the fault-free reference computed once up front.
2. **Never crashed** — no fault plan may surface as an unhandled
   exception; faults degrade, they do not propagate.
3. **Always accounted** — every injected corruption that reaches a
   loader produces a quarantine + fallback, observable in the
   :class:`~repro.resilience.degradation.DegradationReport`.

Four pillars are exercised per iteration: evolvable-VM state
(save → corrupt? → load → run), the sweep result cache, the JIT artifact
cache (fed seeded programs from the differential-fuzz generator — the
same machinery as ``repro fuzz``), and the telemetry JSONL log.
Periodically an iteration also runs a whole sweep under a
:class:`~repro.resilience.faults.WorkerFaultPlan` to exercise the
retry/re-execution path end to end.

Everything is a pure function of ``(seed, iteration)``, so any reported
violation replays exactly.
"""

from __future__ import annotations

import json
import tempfile
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..bench.suite import get_benchmark
from ..core.evolvable import EvolvableVM
from ..core.records import load_state, load_state_file, save_state, state_to_dict
from ..experiments.parallel import derive_sequence, run_sweep
from ..experiments.telemetry import (
    CacheKey,
    ResultCache,
    TelemetryLog,
    cell_event,
    read_events,
)
from ..lang.compiler import compile_source
from ..scenarios.drift import DriftSpec, get_drift_spec
from ..serving.registry import ModelRegistry
from ..serving.tenant import Tenant
from ..testing.differential import FUZZ_CONFIG
from ..testing.generator import generate
from ..vm.errors import ExecutionError
from ..vm.interpreter import Interpreter
from ..vm.opt.artifact_cache import JITArtifactCache
from ..vm.opt.jit import JITCompiler
from .degradation import DegradationReport
from .faults import FaultPlan, FaultyFS, WorkerFaultPlan


@dataclass(frozen=True)
class ChaosViolation:
    """One broken invariant; ``kind`` is machine-readable."""

    iteration: int
    kind: str  # "divergence" | "corruption-not-detected" |
    #           "missing-degradation" | "unhandled-exception"
    detail: str

    def describe(self) -> str:
        return f"iteration {self.iteration}: {self.kind} — {self.detail}"


@dataclass
class ChaosReport:
    """What one chaos campaign injected, survived, and (never) broke."""

    seed: int
    iterations: int
    benchmark: str
    #: True when the campaign ran under a non-stationary input schedule
    #: with the rollback pillar enabled (``repro chaos --drift``).
    drift: bool = False
    completed: int = 0
    faults_injected: int = 0
    degradations: int = 0
    quarantines: int = 0
    violations: list[ChaosViolation] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        return (
            f"{self.completed}/{self.iterations} iteration(s), "
            f"{self.faults_injected} fault(s) injected, "
            f"{self.degradations} degradation(s) "
            f"({self.quarantines} quarantine(s)), "
            f"{len(self.violations)} violation(s), {self.wall_s:.2f}s wall"
        )


# ---------------------------------------------------------------------------
# Fault-free references (computed once per campaign)
# ---------------------------------------------------------------------------

def _sweep_signature(result) -> tuple:
    """Reduce an ExperimentResult to comparable virtual-cycle facts."""
    parts = []
    for scenario in ("default", "evolve"):
        outs = getattr(result, scenario, []) or []
        parts.append(
            (
                scenario,
                tuple(
                    (o.result, o.total_cycles, o.profile.compile_cycles)
                    for o in outs
                ),
            )
        )
    return tuple(parts)


@dataclass
class _Reference:
    """Everything a chaos iteration compares against."""

    bench: object
    app: object
    inputs: list
    sequence: list[int]
    vm: EvolvableVM                 # trained, fault-free
    run_cycles: tuple[float, ...]   # per training run
    warm_post: tuple                # (result, cycles) after state reload
    cold_post: tuple                # (result, cycles) from empty records
    cache_payload: dict
    cache_key: CacheKey
    programs: list[tuple]           # (program, args, result_repr, cycles)
    sweep_signature: tuple
    #: Non-stationary schedule in force (None = stationary campaign).
    drift_spec: DriftSpec | None = None
    #: Fault-free facts of the forced-rollback scenario (drift mode):
    #: (confidence, run_count, generation, from_gen, to_gen, watchdog).
    rollback_signature: tuple = ()


def _post_run(vm: EvolvableVM, reference: "_Reference") -> tuple:
    index = reference.sequence[-1]
    outcome = vm.run(
        reference.inputs[index].cmdline, rng_seed=len(reference.sequence) - 1
    )
    return (outcome.result, outcome.total_cycles)


def _build_reference(
    seed: int,
    benchmark: str,
    runs: int,
    fuzz_programs: int,
    drift_spec: DriftSpec | None = None,
) -> _Reference:
    bench = get_benchmark(benchmark)
    app, inputs = bench.build(seed=seed)
    # One extra slot at the tail: the post-load probe run. Drift mode
    # swaps the i.i.d. schedule for the non-stationary one, so every
    # pillar replays under a moving input distribution.
    sequence = derive_sequence(bench, seed, runs + 1, drift=drift_spec)

    vm = EvolvableVM(app)
    run_cycles = []
    for run_index in range(runs):
        outcome = vm.run(
            inputs[sequence[run_index]].cmdline, rng_seed=run_index
        )
        run_cycles.append(outcome.total_cycles)

    reference = _Reference(
        bench=bench,
        app=app,
        inputs=inputs,
        sequence=sequence,
        vm=vm,
        run_cycles=tuple(run_cycles),
        warm_post=(),
        cold_post=(),
        cache_payload={"benchmark": benchmark, "cycles": tuple(run_cycles)},
        cache_key=CacheKey("chaos", "state", 0, runs, seed, "chaos-ref"),
        programs=[],
        sweep_signature=(),
        drift_spec=drift_spec,
    )

    # Warm post-run: a fresh VM restored through the same JSON round trip
    # the envelope performs, then probed once.
    warm = EvolvableVM(app)
    load_state(warm, json.loads(json.dumps(state_to_dict(vm), sort_keys=True)))
    reference.warm_post = _post_run(warm, reference)
    # Cold post-run: the degraded path — empty records, reactive default.
    reference.cold_post = _post_run(EvolvableVM(app), reference)

    # Seeded fuzz programs (same generator as ``repro fuzz``); skip the
    # rare case that faults deterministically — chaos wants clean
    # references so every divergence is attributable to the cache.
    index = 0
    while len(reference.programs) < fuzz_programs and index < 50:
        case = generate(seed, index)
        index += 1
        program = compile_source(case.source)
        jit = JITCompiler(program, FUZZ_CONFIG)
        interp = Interpreter(
            program,
            config=FUZZ_CONFIG,
            rng_seed=0,
            jit=jit,
            first_invocation_hook=lambda name: 2,
        )
        try:
            profile = interp.run(case.args)
        except ExecutionError:
            continue
        reference.programs.append(
            (program, case.args, repr(interp.result), profile.total_cycles)
        )

    fault_free = run_sweep(
        [bench], jobs=1, seed=seed, runs=runs,
        scenarios=("default", "evolve"),
        drift=drift_spec,
    )
    reference.sweep_signature = _sweep_signature(fault_free.results[0])

    if drift_spec is not None:
        # Fault-free forced rollback: the facts every faulted replay of
        # the rollback pillar must reproduce in memory.
        with tempfile.TemporaryDirectory(prefix="chaos-rollback-ref-") as tmp:
            registry = ModelRegistry(
                Path(tmp) / "serving", report=DegradationReport()
            )
            tenant, record = _run_rollback_scenario(reference, registry)
        if record is None:
            raise RuntimeError(
                "chaos drift reference: forced probation failure produced "
                "no rollback"
            )
        reference.rollback_signature = _rollback_signature(tenant, record)
    return reference


def _run_rollback_scenario(
    reference: _Reference, registry: ModelRegistry
) -> tuple[Tenant, dict | None]:
    """Deterministic tenant lifecycle ending in one forced rollback.

    Trains a tenant on the reference schedule, swaps (the generation
    passes probation under a margin of 1.0, which no real accuracy can
    breach), then swaps again with the probation baseline doctored to an
    unreachable level — the next window must fail and roll back. The
    doctoring targets the *rollback machinery under fault injection*;
    organic detector-driven rollbacks are covered by the serving tests.
    """
    tenant = Tenant(
        reference.app,
        registry=registry,
        refit_interval=None,
        probation_window=2,
        probation_margin=1.0,
        max_rollbacks=99,
    )
    n_runs = len(reference.run_cycles)
    for run_index in range(n_runs):
        tenant.run(
            reference.inputs[reference.sequence[run_index]].cmdline,
            seed=run_index,
        )
    tenant.swap()
    probe = reference.sequence[-1]
    for extra in range(2):
        tenant.run(reference.inputs[probe].cmdline, seed=n_runs + extra)
    tenant.swap()
    if tenant._probation is not None:
        tenant._probation["baseline"] = 3.0  # unreachable: must roll back
    record: dict | None = None
    for extra in range(2, 4):
        payload = tenant.run(
            reference.inputs[probe].cmdline, seed=n_runs + extra
        )
        if payload["rollback"]:
            record = payload["rollback"]
    return tenant, record


def _rollback_signature(tenant: Tenant, record: dict) -> tuple:
    """The in-memory facts a rollback must reproduce regardless of
    filesystem faults (restores never touch disk)."""
    return (
        tenant.vm.confidence.value,
        tenant.vm.run_count,
        tenant.generation,
        record["from_generation"],
        record["to_generation"],
        record["watchdog"],
    )


# ---------------------------------------------------------------------------
# The pillars, one iteration each
# ---------------------------------------------------------------------------

def _check_state_pillar(
    reference: _Reference,
    fs: FaultyFS,
    report: DegradationReport,
    root: Path,
    violations: list[str],
) -> None:
    state_path = root / "state.json"
    saved = save_state(reference.vm, str(state_path), fs=fs, report=report)
    vm2 = EvolvableVM(reference.app)
    loaded = load_state_file(vm2, str(state_path), fs=fs, report=report)

    corrupted_writes = fs.corrupting_faults_for(state_path)
    if corrupted_writes and loaded:
        violations.append(
            ("corruption-not-detected",
             f"state file had {len(corrupted_writes)} corrupting write "
             "fault(s) yet loaded successfully")
        )
    if loaded:
        if (
            vm2.confidence.value != reference.vm.confidence.value
            or vm2.run_count != reference.vm.run_count
        ):
            violations.append(
                ("divergence", "restored state differs from saved state")
            )
    else:
        if report.count(component="state") == 0:
            violations.append(
                ("missing-degradation",
                 "state load fell back with no degradation recorded")
            )
    if saved and not loaded and not fs.faults_for(state_path):
        violations.append(
            ("divergence", "clean save + clean read still failed to load")
        )

    # The probe run must match the warm reference when state survived,
    # and the cold (reactive fallback) reference when it did not —
    # degraded means slower/forgetful, never different semantics.
    expected = reference.warm_post if loaded else reference.cold_post
    actual = _post_run(vm2, reference)
    if actual != expected:
        violations.append(
            ("divergence",
             f"post-{'load' if loaded else 'fallback'} run observed "
             f"{actual}, expected {expected}")
        )


def _check_result_cache_pillar(
    reference: _Reference,
    fs: FaultyFS,
    report: DegradationReport,
    root: Path,
    violations: list[str],
) -> None:
    cache = ResultCache(root / "cells", fs=fs, report=report)
    cache.put(reference.cache_key, reference.cache_payload)
    entry_path = cache._path(reference.cache_key)
    got = cache.get(reference.cache_key)
    if got is not None:
        if got != reference.cache_payload:
            violations.append(
                ("divergence", "result cache returned a different payload")
            )
        if fs.corrupting_faults_for(entry_path):
            violations.append(
                ("corruption-not-detected",
                 "result-cache entry was corrupted yet served as a hit")
            )


def _check_jit_cache_pillar(
    reference: _Reference,
    fs: FaultyFS,
    report: DegradationReport,
    root: Path,
    violations: list[str],
) -> None:
    for prog_index, (program, args, ref_result, ref_cycles) in enumerate(
        reference.programs
    ):
        cache_dir = root / f"jit{prog_index}"
        # Cold pass writes artifacts (possibly corrupted on the way out);
        # the second cache instance reads them back from disk (quarantine
        # or hit). Either way the virtual clock must not move.
        for attempt in range(2):
            cache = JITArtifactCache(cache_dir, fs=fs, report=report)
            jit = JITCompiler(program, FUZZ_CONFIG, artifact_cache=cache)
            interp = Interpreter(
                program,
                config=FUZZ_CONFIG,
                rng_seed=0,
                jit=jit,
                first_invocation_hook=lambda name: 2,
            )
            profile = interp.run(args)
            if (
                repr(interp.result) != ref_result
                or profile.total_cycles != ref_cycles
            ):
                violations.append(
                    ("divergence",
                     f"program {prog_index} pass {attempt}: "
                     f"({interp.result!r}, {profile.total_cycles}) != "
                     f"({ref_result}, {ref_cycles})")
                )


def _check_telemetry_pillar(
    fs: FaultyFS,
    report: DegradationReport,
    root: Path,
    violations: list[str],
) -> None:
    path = root / "telemetry.jsonl"
    written = [
        cell_event("cell", "Chaos", "state", start, start + 1, wall_s=None)
        for start in range(6)
    ]
    log = TelemetryLog(path, fs=fs, report=report)
    log.extend(written)
    if not path.exists():
        if log.events_dropped == 0:
            violations.append(
                ("missing-degradation",
                 "telemetry file missing but no drops recorded")
            )
        return
    with warnings.catch_warnings():
        # Skipped torn lines are expected here; the DegradationReport
        # already accounts for them.
        warnings.simplefilter("ignore", RuntimeWarning)
        read_back = read_events(path, report=report)
    for event in read_back:
        if event not in written:
            violations.append(
                ("divergence",
                 f"telemetry read produced an event never written: {event}")
            )
    if log.events_dropped == 0 and not fs.faults_for(path):
        if read_back != written:
            violations.append(
                ("divergence", "fault-free telemetry round trip diverged")
            )


def _check_rollback_pillar(
    reference: _Reference,
    fs: FaultyFS,
    report: DegradationReport,
    root: Path,
    violations: list[str],
) -> None:
    """Drift mode's own pillar: forced rollback under filesystem faults.

    The invariant is *bit-identical-or-degraded, with every degradation
    recorded*: the in-memory rollback must reproduce the fault-free
    reference exactly (restores never touch disk), the rollback must be
    accounted in the degradation ledger, and the persisted state file
    must either reload to the serving VM's exact state or have a
    recorded save failure / quarantine explaining why not.
    """
    registry = ModelRegistry(root / "serving", fs=fs, report=report)
    tenant, record = _run_rollback_scenario(reference, registry)
    if record is None:
        violations.append(
            ("divergence", "forced probation failure produced no rollback")
        )
        return
    signature = _rollback_signature(tenant, record)
    if signature != reference.rollback_signature:
        violations.append(
            ("divergence",
             f"rollback under faults diverged: {signature} != "
             f"{reference.rollback_signature}")
        )
    if report.count(component="serving", action="rollback") == 0:
        violations.append(
            ("missing-degradation",
             "rollback happened but the degradation ledger has no "
             "serving/rollback entry")
        )
    # Crash-safety of the persisted side: whatever the fault plan did to
    # the saves, a fresh load must produce either the serving VM's exact
    # state or an accounted fallback — never a silently different model.
    state_path = registry.state_path(tenant.name)
    vm2 = EvolvableVM(reference.app)
    loaded = load_state_file(vm2, str(state_path), fs=fs, report=report)
    if loaded:
        if (
            vm2.confidence.value != tenant.vm.confidence.value
            and report.count(component="state", action="store-failed") == 0
        ):
            violations.append(
                ("divergence",
                 "reloaded post-rollback state differs from the serving VM "
                 "with no recorded save failure")
            )
    elif report.count(component="state") == 0:
        violations.append(
            ("missing-degradation",
             "post-rollback state failed to load with nothing recorded")
        )


def _check_sweep_pillar(
    reference: _Reference,
    iteration_seed: int,
    seed: int,
    runs: int,
    report: DegradationReport,
    violations: list[str],
) -> None:
    plan = WorkerFaultPlan(seed=iteration_seed, raise_rate=0.4)
    swept = run_sweep(
        [reference.bench],
        jobs=1,
        seed=seed,
        runs=runs,
        scenarios=("default", "evolve"),
        fault_plan=plan,
        retries=2,
        backoff_s=0.0,
        report=report,
        drift=reference.drift_spec,
    )
    # Faults fire only on first attempts and retries are clean, so the
    # sweep must complete every cell with bit-identical results.
    if swept.cells_failed:
        violations.append(
            ("divergence",
             f"sweep reported {swept.cells_failed} failed cell(s) despite "
             "retries covering every injected fault")
        )
    elif _sweep_signature(swept.results[0]) != reference.sweep_signature:
        violations.append(
            ("divergence", "faulted sweep diverged from fault-free sweep")
        )


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

def run_chaos(
    seed: int = 0,
    iterations: int = 25,
    *,
    benchmark: str = "Search",
    runs: int = 3,
    fuzz_programs: int = 2,
    sweep_every: int = 5,
    workdir: str | None = None,
    drift: bool = False,
) -> ChaosReport:
    """Run a seeded chaos campaign; ``report.ok`` means every invariant held.

    ``sweep_every`` controls how often (every k-th iteration) a full
    sweep runs under worker faults; 0 disables that pillar. ``drift``
    runs the whole campaign under a non-stationary (abrupt-shift) input
    schedule and adds the forced-rollback pillar: drift and faults
    together, the combination production actually serves.
    """
    clock = time.perf_counter()
    drift_spec = get_drift_spec("abrupt") if drift else None
    report = ChaosReport(
        seed=seed, iterations=iterations, benchmark=benchmark, drift=drift
    )
    reference = _build_reference(
        seed, benchmark, runs, fuzz_programs, drift_spec=drift_spec
    )

    for iteration in range(iterations):
        iteration_seed = seed * 99_991 + iteration
        plan = FaultPlan.chaos_default(iteration_seed)
        fs = FaultyFS(plan)
        degradation = DegradationReport()
        found: list[tuple[str, str]] = []
        try:
            with tempfile.TemporaryDirectory(
                prefix=f"chaos{iteration}-", dir=workdir
            ) as tmp:
                root = Path(tmp)
                _check_state_pillar(reference, fs, degradation, root, found)
                _check_result_cache_pillar(
                    reference, fs, degradation, root, found
                )
                _check_jit_cache_pillar(reference, fs, degradation, root, found)
                _check_telemetry_pillar(fs, degradation, root, found)
                if drift:
                    _check_rollback_pillar(
                        reference, fs, degradation, root, found
                    )
                if sweep_every and iteration % sweep_every == 0:
                    _check_sweep_pillar(
                        reference, iteration_seed, seed, runs,
                        degradation, found,
                    )
        except Exception:
            found.append(
                ("unhandled-exception",
                 traceback.format_exc(limit=3).strip().replace("\n", " | "))
            )
        report.completed += 1
        report.faults_injected += len(fs.fault_log)
        report.degradations += len(degradation)
        report.quarantines += degradation.count(action="quarantine")
        report.violations.extend(
            ChaosViolation(iteration=iteration, kind=kind, detail=detail)
            for kind, detail in found
        )

    report.wall_s = time.perf_counter() - clock
    return report
