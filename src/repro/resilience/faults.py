"""Seeded fault injection for the persistence and sweep layers.

Two injection surfaces:

- :class:`FaultyFS` — a :class:`~repro.resilience.envelope.FileSystem`
  shim that corrupts or fails I/O according to a seeded
  :class:`FaultPlan`: torn writes (the file lands truncated), bit flips
  on write or read, ``ENOSPC`` on write, ``EIO`` on read, stale-lock
  write failures, and slow I/O. Every injected fault is logged, so the
  chaos harness can cross-check that each corruption produced a
  quarantine + fallback downstream.

- :class:`WorkerFaultPlan` — per-cell faults for the sweep engine:
  a worker raising mid-cell, a worker dying (``os._exit``, which breaks
  the whole process pool), or a worker hanging past the cell timeout.
  Faults fire only on a cell's *first* attempt, so the retry path can be
  asserted bit-identical to fault-free execution.

Both plans are pure functions of their seed: the same plan injects the
same faults at the same operations every time, which is what makes chaos
findings reproducible from ``(seed, iteration)`` alone.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from .envelope import REAL_FS, FileSystem


class StaleLockError(OSError):
    """An injected "a previous writer left its lock behind" failure."""


@dataclass(frozen=True)
class FaultPlan:
    """Per-operation fault probabilities for :class:`FaultyFS`.

    Rates are independent probabilities drawn per filesystem operation
    from one seeded stream; at most one fault fires per operation
    (priority: I/O error, then torn write, then bit flip).
    """

    seed: int = 0
    #: Atomic writes that land truncated at a random byte (torn).
    torn_write: float = 0.0
    #: Writes whose payload gets one random bit flipped (silent bit rot).
    bit_flip_write: float = 0.0
    #: Writes failing with ``OSError(ENOSPC)`` (full disk).
    io_error_write: float = 0.0
    #: Writes failing with :class:`StaleLockError` (stale lock file).
    stale_lock: float = 0.0
    #: Reads returning data with one random bit flipped.
    bit_flip_read: float = 0.0
    #: Reads failing with ``OSError(EIO)``.
    io_error_read: float = 0.0
    #: Operations delayed by ``slow_s`` seconds (slow I/O).
    slow_io: float = 0.0
    slow_s: float = 0.001

    @classmethod
    def chaos_default(cls, seed: int) -> "FaultPlan":
        """The mix the chaos harness uses: every class of fault, often."""
        return cls(
            seed=seed,
            torn_write=0.12,
            bit_flip_write=0.12,
            io_error_write=0.08,
            stale_lock=0.04,
            bit_flip_read=0.12,
            io_error_read=0.08,
        )


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired."""

    op: str        # "read" | "write" | "append"
    kind: str      # "torn-write" | "bit-flip" | "enospc" | "eio" | ...
    path: str

    def corrupts(self) -> bool:
        """Did this fault silently corrupt data (vs. raising an error)?"""
        return self.kind in ("torn-write", "bit-flip", "torn-append")


def _flip_one_bit(data: bytes, rng: Random) -> bytes:
    if not data:
        return data
    index = rng.randrange(len(data))
    bit = 1 << rng.randrange(8)
    mutated = bytearray(data)
    mutated[index] ^= bit
    return bytes(mutated)


class FaultyFS(FileSystem):
    """A filesystem that misbehaves on a seeded schedule.

    Wraps a base :class:`FileSystem` (the real one by default). Faults
    are drawn from ``plan``'s seeded stream in operation order, so a
    given call sequence always experiences the same faults. The
    :attr:`fault_log` records every injection.
    """

    def __init__(self, plan: FaultPlan, base: FileSystem = REAL_FS):
        self.plan = plan
        self.base = base
        self.rng = Random(plan.seed * 0x9E3779B1 + 0x7F4A7C15)
        self.fault_log: list[InjectedFault] = []

    # -- bookkeeping ------------------------------------------------------
    def _log(self, op: str, kind: str, path: str | Path) -> None:
        self.fault_log.append(InjectedFault(op=op, kind=kind, path=str(path)))

    def faults_for(self, path: str | Path) -> list[InjectedFault]:
        return [f for f in self.fault_log if f.path == str(path)]

    def corrupting_faults_for(self, path: str | Path) -> list[InjectedFault]:
        return [f for f in self.faults_for(path) if f.corrupts()]

    def _maybe_slow(self) -> None:
        if self.plan.slow_io and self.rng.random() < self.plan.slow_io:
            time.sleep(self.plan.slow_s)

    # -- faulted operations ----------------------------------------------
    def read_bytes(self, path: str | Path) -> bytes:
        self._maybe_slow()
        if self.rng.random() < self.plan.io_error_read:
            self._log("read", "eio", path)
            raise OSError(errno.EIO, "injected I/O error on read", str(path))
        data = self.base.read_bytes(path)
        if self.rng.random() < self.plan.bit_flip_read:
            self._log("read", "bit-flip", path)
            data = _flip_one_bit(data, self.rng)
        return data

    def write_bytes_atomic(self, path: str | Path, data: bytes) -> None:
        self._maybe_slow()
        if self.rng.random() < self.plan.io_error_write:
            self._log("write", "enospc", path)
            raise OSError(
                errno.ENOSPC, "injected: no space left on device", str(path)
            )
        if self.rng.random() < self.plan.stale_lock:
            self._log("write", "stale-lock", path)
            raise StaleLockError(
                errno.EEXIST, "injected: stale lock held", str(path)
            )
        if self.rng.random() < self.plan.torn_write:
            # A torn write that still landed: the publish was not atomic
            # (crashed mid-rename, buggy filesystem) and readers see a
            # truncated artifact.
            self._log("write", "torn-write", path)
            cut = self.rng.randrange(len(data)) if data else 0
            self.base.write_bytes_atomic(path, data[:cut])
            return
        if self.rng.random() < self.plan.bit_flip_write:
            self._log("write", "bit-flip", path)
            data = _flip_one_bit(data, self.rng)
        self.base.write_bytes_atomic(path, data)

    def append_text(self, path: str | Path, text: str) -> None:
        self._maybe_slow()
        if self.rng.random() < self.plan.io_error_write:
            self._log("append", "enospc", path)
            raise OSError(
                errno.ENOSPC, "injected: no space left on device", str(path)
            )
        if self.rng.random() < self.plan.torn_write:
            # A crash mid-append: only a prefix of the line reaches disk.
            self._log("append", "torn-append", path)
            cut = self.rng.randrange(len(text)) if text else 0
            self.base.append_text(path, text[:cut])
            return
        self.base.append_text(path, text)

    # Metadata operations stay truthful: quarantine must be able to move
    # files aside even under heavy data-path fault rates.
    def exists(self, path: str | Path) -> bool:
        return self.base.exists(path)

    def move(self, src: str | Path, dst: str | Path) -> None:
        self.base.move(src, dst)

    def unlink(self, path: str | Path) -> None:
        self.base.unlink(path)


# ---------------------------------------------------------------------------
# Worker-level faults for the sweep engine
# ---------------------------------------------------------------------------

#: The fault kinds a sweep worker can be told to exhibit.
WORKER_FAULTS = ("raise", "exit", "hang")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Seeded per-cell faults for :func:`repro.experiments.parallel.run_sweep`.

    ``fault_for(index, attempt)`` decides deterministically whether the
    cell at *index* misbehaves — but only on attempt 0, so retried and
    serially re-executed cells always run clean (which is what lets the
    tests demand bit-identity with serial execution).
    """

    seed: int = 0
    #: Probability a cell's worker raises mid-execution.
    raise_rate: float = 0.0
    #: Probability a cell's worker dies hard (breaks the process pool).
    exit_rate: float = 0.0
    #: Probability a cell's worker hangs (must trip the cell timeout).
    hang_rate: float = 0.0
    #: How long a hanging worker sleeps.
    hang_s: float = 30.0
    #: Explicit per-cell overrides (cell index → fault kind); applied
    #: before the random draw, for pinpoint tests.
    forced: tuple[tuple[int, str], ...] = field(default_factory=tuple)

    def fault_for(self, index: int, attempt: int = 0) -> str | None:
        if attempt > 0:
            return None
        for forced_index, kind in self.forced:
            if forced_index == index:
                return kind
        rng = Random((self.seed + 1) * 1_000_003 + index * 7919)
        draw = rng.random()
        if draw < self.exit_rate:
            return "exit"
        if draw < self.exit_rate + self.raise_rate:
            return "raise"
        if draw < self.exit_rate + self.raise_rate + self.hang_rate:
            return "hang"
        return None
