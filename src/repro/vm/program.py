"""Program and method model, plus a bytecode verifier and a builder API.

A :class:`Program` is a set of named :class:`Method` objects. Methods hold
immutable bytecode (a tuple of :class:`~repro.vm.instructions.Instr`); the
tiered JIT produces :class:`~repro.vm.opt.jit.CompiledCode` views of them at
runtime without mutating the originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .errors import VerificationError
from .instructions import Instr, JUMP_OPS, Op, stack_effect


@dataclass(frozen=True)
class Method:
    """A verified bytecode method.

    Attributes:
        name: Globally unique method name within its program.
        num_params: Number of parameters (occupying local slots 0..n-1).
        num_locals: Total local slots, including parameters.
        code: The bytecode, ending in at least one reachable ``RET``.
    """

    name: str
    num_params: int
    num_locals: int
    code: tuple[Instr, ...]

    def __post_init__(self) -> None:
        verify_method(self)

    @property
    def size(self) -> int:
        """Instruction count; the unit of the JIT compile-cost model."""
        return len(self.code)

    def loop_count(self) -> int:
        """Number of backward jumps — a cheap static proxy for loop density.

        The JIT's per-method optimizability model uses this: loopy methods
        benefit more from higher optimization levels, mirroring how loop
        transformations dominate the payoff of an optimizing compiler.
        """
        return sum(
            1 for pc, ins in enumerate(self.code) if ins.op in JUMP_OPS and ins.arg <= pc
        )

    def arithmetic_density(self) -> float:
        """Fraction of instructions that are arithmetic — second static proxy."""
        if not self.code:
            return 0.0
        arith = sum(
            1
            for ins in self.code
            if ins.op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.NEG)
        )
        return arith / len(self.code)


def verify_method(method: Method) -> None:
    """Statically verify *method*: jump targets, slots, terminator, arities.

    Raises:
        VerificationError: on any malformed bytecode.
    """
    code = method.code
    if not code:
        raise VerificationError(f"{method.name}: empty code")
    if method.num_params < 0 or method.num_locals < method.num_params:
        raise VerificationError(
            f"{method.name}: bad slot counts "
            f"(params={method.num_params}, locals={method.num_locals})"
        )
    n = len(code)
    has_ret = False
    for pc, ins in enumerate(code):
        op = ins.op
        if op in JUMP_OPS:
            if not isinstance(ins.arg, int) or not (0 <= ins.arg < n):
                raise VerificationError(
                    f"{method.name}: jump at pc={pc} targets {ins.arg!r} (code size {n})"
                )
        elif op in (Op.LOAD, Op.STORE):
            if not isinstance(ins.arg, int) or not (0 <= ins.arg < method.num_locals):
                raise VerificationError(
                    f"{method.name}: local slot {ins.arg!r} out of range at pc={pc}"
                )
        elif op in (Op.CALL, Op.INTRIN):
            arg = ins.arg
            if (
                not isinstance(arg, tuple)
                or len(arg) != 2
                or not isinstance(arg[0], str)
                or not isinstance(arg[1], int)
                or arg[1] < 0
            ):
                raise VerificationError(
                    f"{method.name}: {op.name} operand must be (name, argc), "
                    f"got {arg!r} at pc={pc}"
                )
        elif op == Op.RET:
            has_ret = True
        # stack_effect also validates that the opcode is known
        stack_effect(ins)
    if not has_ret:
        raise VerificationError(f"{method.name}: no RET instruction")


class Program:
    """An immutable collection of methods with a designated entry point."""

    def __init__(self, methods: Iterable[Method], entry: str = "main", name: str = ""):
        self._methods: dict[str, Method] = {}
        for m in methods:
            if m.name in self._methods:
                raise VerificationError(f"duplicate method name: {m.name}")
            self._methods[m.name] = m
        if entry not in self._methods:
            raise VerificationError(f"entry method {entry!r} not defined")
        self.entry = entry
        self.name = name or entry
        self._verify_call_graph()

    def _verify_call_graph(self) -> None:
        for m in self._methods.values():
            for ins in m.code:
                if ins.op == Op.CALL:
                    callee, argc = ins.arg
                    target = self._methods.get(callee)
                    if target is None:
                        raise VerificationError(
                            f"{m.name}: CALL to unknown method {callee!r}"
                        )
                    if target.num_params != argc:
                        raise VerificationError(
                            f"{m.name}: CALL {callee!r} with {argc} args, "
                            f"expects {target.num_params}"
                        )

    def method(self, name: str) -> Method:
        return self._methods[name]

    def __contains__(self, name: str) -> bool:
        return name in self._methods

    def __iter__(self) -> Iterator[Method]:
        return iter(self._methods.values())

    def __len__(self) -> int:
        return len(self._methods)

    @property
    def method_names(self) -> tuple[str, ...]:
        return tuple(self._methods)

    def total_size(self) -> int:
        """Total instruction count across all methods."""
        return sum(m.size for m in self._methods.values())


@dataclass
class MethodBuilder:
    """Mutable builder assembling one method's bytecode with labels.

    Example::

        b = MethodBuilder("abs_diff", num_params=2)
        b.load(0).load(1).lt()
        b.jz("ge")
        b.load(1).load(0).sub().ret()
        b.label("ge")
        b.load(0).load(1).sub().ret()
        method = b.build()
    """

    name: str
    num_params: int = 0
    _instrs: list[Instr] = field(default_factory=list)
    _labels: dict[str, int] = field(default_factory=dict)
    _fixups: list[tuple[int, str]] = field(default_factory=list)
    _max_slot: int = -1

    def __post_init__(self) -> None:
        self._max_slot = self.num_params - 1

    # -- emission helpers ------------------------------------------------
    def emit(self, op: Op, arg: object = None) -> "MethodBuilder":
        self._instrs.append(Instr(op, arg))
        return self

    def const(self, value: object) -> "MethodBuilder":
        return self.emit(Op.CONST, value)

    def load(self, slot: int) -> "MethodBuilder":
        self._max_slot = max(self._max_slot, slot)
        return self.emit(Op.LOAD, slot)

    def store(self, slot: int) -> "MethodBuilder":
        self._max_slot = max(self._max_slot, slot)
        return self.emit(Op.STORE, slot)

    def add(self) -> "MethodBuilder":
        return self.emit(Op.ADD)

    def sub(self) -> "MethodBuilder":
        return self.emit(Op.SUB)

    def mul(self) -> "MethodBuilder":
        return self.emit(Op.MUL)

    def div(self) -> "MethodBuilder":
        return self.emit(Op.DIV)

    def mod(self) -> "MethodBuilder":
        return self.emit(Op.MOD)

    def neg(self) -> "MethodBuilder":
        return self.emit(Op.NEG)

    def lt(self) -> "MethodBuilder":
        return self.emit(Op.LT)

    def le(self) -> "MethodBuilder":
        return self.emit(Op.LE)

    def gt(self) -> "MethodBuilder":
        return self.emit(Op.GT)

    def ge(self) -> "MethodBuilder":
        return self.emit(Op.GE)

    def eq(self) -> "MethodBuilder":
        return self.emit(Op.EQ)

    def ne(self) -> "MethodBuilder":
        return self.emit(Op.NE)

    def not_(self) -> "MethodBuilder":
        return self.emit(Op.NOT)

    def newarr(self) -> "MethodBuilder":
        return self.emit(Op.NEWARR)

    def aload(self) -> "MethodBuilder":
        return self.emit(Op.ALOAD)

    def astore(self) -> "MethodBuilder":
        return self.emit(Op.ASTORE)

    def alen(self) -> "MethodBuilder":
        return self.emit(Op.ALEN)

    def swap(self) -> "MethodBuilder":
        return self.emit(Op.SWAP)

    def pop(self) -> "MethodBuilder":
        return self.emit(Op.POP)

    def dup(self) -> "MethodBuilder":
        return self.emit(Op.DUP)

    def ret(self) -> "MethodBuilder":
        return self.emit(Op.RET)

    def call(self, name: str, argc: int) -> "MethodBuilder":
        return self.emit(Op.CALL, (name, argc))

    def intrin(self, name: str, argc: int) -> "MethodBuilder":
        return self.emit(Op.INTRIN, (name, argc))

    # -- labels and jumps --------------------------------------------------
    def label(self, name: str) -> "MethodBuilder":
        if name in self._labels:
            raise VerificationError(f"{self.name}: duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return self

    def _jump(self, op: Op, target: str) -> "MethodBuilder":
        self._fixups.append((len(self._instrs), target))
        return self.emit(op, target)

    def jmp(self, target: str) -> "MethodBuilder":
        return self._jump(Op.JMP, target)

    def jz(self, target: str) -> "MethodBuilder":
        return self._jump(Op.JZ, target)

    def jnz(self, target: str) -> "MethodBuilder":
        return self._jump(Op.JNZ, target)

    # -- finalization ------------------------------------------------------
    def build(self, num_locals: int | None = None) -> Method:
        """Resolve labels and produce a verified :class:`Method`."""
        instrs = list(self._instrs)
        for pc, target in self._fixups:
            if target not in self._labels:
                raise VerificationError(f"{self.name}: undefined label {target!r}")
            instrs[pc] = Instr(instrs[pc].op, self._labels[target])
        locals_needed = max(self._max_slot + 1, self.num_params)
        if num_locals is not None:
            locals_needed = max(locals_needed, num_locals)
        return Method(
            name=self.name,
            num_params=self.num_params,
            num_locals=locals_needed,
            code=tuple(instrs),
        )
