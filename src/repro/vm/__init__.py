"""The virtual machine substrate: bytecode, interpreter, tiered JIT, sampler.

Public surface::

    from repro.vm import (
        Instr, Op, Method, MethodBuilder, Program,
        VMConfig, DEFAULT_CONFIG, OPT_LEVELS,
        Interpreter, run_program, RunProfile,
        JITCompiler, CompiledCode,
    )
"""

from .config import BASELINE_LEVEL, DEFAULT_CONFIG, OPT_LEVELS, VMConfig
from .disasm import (
    AsmError,
    assemble,
    assemble_program,
    disassemble_method,
    disassemble_program,
)
from .heap import (
    DEFAULT_GC_POLICY,
    GC_POLICIES,
    GCCostModel,
    Heap,
    HeapStats,
    estimate_gc_cost,
    ideal_gc_policy,
)
from .errors import (
    ExecutionError,
    FuelExhaustedError,
    StackOverflowError,
    UnknownIntrinsicError,
    UnknownMethodError,
    VerificationError,
    VMError,
)
from .instructions import BASE_COST, BASE_COST_TABLE, Instr, Op
from .interpreter import Interpreter, run_program
from .opt.artifact_cache import JITArtifactCache
from .opt.jit import CompiledCode, JITCompiler, method_optimizability
from .profiles import CompileEvent, RunProfile
from .program import Method, MethodBuilder, Program
from .sampler import Sampler
from .verifier import (
    locals_write_before_read,
    max_stack_depth,
    stack_depths,
    verify_program_stacks,
    verify_stack_discipline,
)

__all__ = [
    "AsmError",
    "DEFAULT_GC_POLICY",
    "GC_POLICIES",
    "GCCostModel",
    "Heap",
    "HeapStats",
    "estimate_gc_cost",
    "ideal_gc_policy",
    "BASE_COST",
    "BASE_COST_TABLE",
    "assemble",
    "assemble_program",
    "disassemble_method",
    "disassemble_program",
    "locals_write_before_read",
    "max_stack_depth",
    "stack_depths",
    "verify_program_stacks",
    "verify_stack_discipline",
    "BASELINE_LEVEL",
    "CompiledCode",
    "CompileEvent",
    "DEFAULT_CONFIG",
    "ExecutionError",
    "FuelExhaustedError",
    "Instr",
    "Interpreter",
    "JITArtifactCache",
    "JITCompiler",
    "Method",
    "MethodBuilder",
    "OPT_LEVELS",
    "Op",
    "Program",
    "RunProfile",
    "Sampler",
    "StackOverflowError",
    "UnknownIntrinsicError",
    "UnknownMethodError",
    "VMConfig",
    "VMError",
    "VerificationError",
    "method_optimizability",
    "run_program",
]
