"""Textual bytecode: disassembler and assembler.

The disassembler prints methods in a stable, labelled format; the
assembler parses that exact format back into verified
:class:`~repro.vm.program.Method` objects — a lossless round-trip used for
golden tests, debugging JIT output, and shipping programs as text.

Format::

    .method square params=1 locals=1
        LOAD 0
        LOAD 0
        MUL
        RET
    .end

    .method main params=1 locals=3
        CONST 0
        STORE 1
    L0:
        LOAD 1
        LOAD 0
        LT
        JZ L1
        ...
        JMP L0
    L1:
        LOAD 2
        RET
    .end
"""

from __future__ import annotations

import re

from .errors import VerificationError
from .instructions import Instr, JUMP_OPS, Op
from .program import Method, Program


# ---------------------------------------------------------------------------
# Disassembly
# ---------------------------------------------------------------------------

def disassemble_method(method: Method) -> str:
    """Render *method* as labelled assembly text."""
    targets = sorted(
        {ins.arg for ins in method.code if ins.op in JUMP_OPS}
    )
    labels = {pc: f"L{i}" for i, pc in enumerate(targets)}
    lines = [
        f".method {method.name} params={method.num_params} "
        f"locals={method.num_locals}"
    ]
    for pc, ins in enumerate(method.code):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        lines.append(f"    {_render_instr(ins, labels)}")
    lines.append(".end")
    return "\n".join(lines)


def _render_instr(ins: Instr, labels: dict[int, str]) -> str:
    op = ins.op
    if op in JUMP_OPS:
        return f"{op.name} {labels[ins.arg]}"
    if op in (Op.CALL, Op.INTRIN):
        name, argc = ins.arg
        return f"{op.name} {name}/{argc}"
    if ins.arg is None:
        return op.name
    if isinstance(ins.arg, str):
        return f'{op.name} "{ins.arg}"'
    return f"{op.name} {ins.arg!r}"


def disassemble_program(program: Program) -> str:
    """Render every method of *program* (entry first, rest sorted)."""
    order = [program.entry] + sorted(
        name for name in program.method_names if name != program.entry
    )
    return "\n\n".join(
        disassemble_method(program.method(name)) for name in order
    )


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

_METHOD_RE = re.compile(
    r"^\.method\s+(?P<name>\w+)\s+params=(?P<params>\d+)\s+locals=(?P<locals>\d+)\s*$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_]\w*):\s*$")
_CALLISH_RE = re.compile(r"^(?P<name>[\w.]+)/(?P<argc>\d+)$")


class AsmError(VerificationError):
    """Malformed assembly text."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"{message} (line {line_number})")
        self.line_number = line_number


def _parse_operand(op: Op, text: str, line_number: int, labels_used: list):
    if op in JUMP_OPS:
        labels_used.append((text, line_number))
        return text  # patched after labels resolve
    if op in (Op.CALL, Op.INTRIN):
        match = _CALLISH_RE.match(text)
        if not match:
            raise AsmError(f"expected name/argc, got {text!r}", line_number)
        return (match.group("name"), int(match.group("argc")))
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise AsmError(f"bad operand {text!r}", line_number) from None


def assemble(text: str) -> list[Method]:
    """Parse assembly *text* into verified methods."""
    methods: list[Method] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        header = _METHOD_RE.match(line)
        if not header:
            raise AsmError(f"expected .method header, got {line!r}", index)
        instrs: list[Instr] = []
        labels: dict[str, int] = {}
        fixups: list[tuple[int, str, int]] = []
        closed = False
        while index < len(lines):
            line = lines[index].strip()
            index += 1
            if not line or line.startswith("#") or line.startswith(";"):
                continue
            if line == ".end":
                closed = True
                break
            label = _LABEL_RE.match(line)
            if label:
                name = label.group("label")
                if name in labels:
                    raise AsmError(f"duplicate label {name!r}", index)
                labels[name] = len(instrs)
                continue
            parts = line.split(None, 1)
            try:
                op = Op[parts[0]]
            except KeyError:
                raise AsmError(f"unknown opcode {parts[0]!r}", index) from None
            if len(parts) == 1:
                instrs.append(Instr(op))
                continue
            pending: list = []
            operand = _parse_operand(op, parts[1].strip(), index, pending)
            if pending:
                fixups.append((len(instrs), operand, index))
                instrs.append(Instr(op, -1))
            else:
                instrs.append(Instr(op, operand))
        if not closed:
            raise AsmError("missing .end", index)
        for pc, label_name, line_number in fixups:
            if label_name not in labels:
                raise AsmError(f"undefined label {label_name!r}", line_number)
            instrs[pc] = Instr(instrs[pc].op, labels[label_name])
        methods.append(
            Method(
                name=header.group("name"),
                num_params=int(header.group("params")),
                num_locals=int(header.group("locals")),
                code=tuple(instrs),
            )
        )
    return methods


def assemble_program(text: str, entry: str = "main", name: str = "") -> Program:
    """Assemble *text* into a complete program."""
    return Program(assemble(text), entry=entry, name=name or entry)
