"""Timer-based method sampler over virtual time.

Jikes RVM's adaptive system observes hotness by sampling the running method
on a timer tick. We reproduce the same semantics over the virtual clock: a
sample is taken every ``sample_interval`` virtual cycles and attributed to
the method executing at that instant. Listeners (the adaptive controller)
are notified per sample and may request recompilations in response.
"""

from __future__ import annotations

from typing import Callable, Protocol


class SampleListener(Protocol):
    """Receives each timer sample as it is taken."""

    def on_sample(self, method: str, clock: float, count: int) -> None:
        """Called with the sampled *method*, the clock, and that method's
        cumulative sample count (including this sample)."""


class Sampler:
    """Virtual-time timer sampler.

    The interpreter calls :meth:`advance` after every instruction with the
    new clock value and the currently executing method; the sampler emits
    one sample per elapsed interval boundary (several, if a single costly
    instruction — a big ``burn`` — spans multiple intervals, exactly as a
    long-running native region would absorb several timer ticks).
    """

    def __init__(self, interval: float):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = float(interval)
        self.counts: dict[str, int] = {}
        self._next_tick = self.interval
        self._listeners: list[SampleListener] = []

    def add_listener(self, listener: SampleListener) -> None:
        self._listeners.append(listener)

    @property
    def has_listeners(self) -> bool:
        """True when at least one listener must be notified per sample.

        The fast-path interpreter consults this once per run: with no
        listeners it may batch clock advancement across fused instruction
        units, because no observer can act between two samples of the
        same segment (see ``docs/performance.md``).
        """
        return bool(self._listeners)

    def advance(self, clock: float, method: str) -> None:
        """Register clock progress; emit samples for every crossed tick.

        With no listeners registered the loop takes a stripped path: no
        per-sample listener iteration and a single ``counts`` write for
        the whole batch of crossed ticks. ``_next_tick`` still advances
        by repeated addition (never ``n * interval``) so its value stays
        bit-identical to the per-sample reference for any float interval.
        """
        next_tick = self._next_tick
        if clock < next_tick:
            return
        interval = self.interval
        if self._listeners:
            while clock >= next_tick:
                count = self.counts.get(method, 0) + 1
                self.counts[method] = count
                next_tick += interval
                self._next_tick = next_tick
                for listener in self._listeners:
                    listener.on_sample(method, next_tick - interval, count)
                next_tick = self._next_tick
        else:
            count = self.counts.get(method, 0)
            while clock >= next_tick:
                count += 1
                next_tick += interval
            self.counts[method] = count
            self._next_tick = next_tick

    def skip_to(self, clock: float) -> None:
        """Advance past *clock* without emitting samples.

        Used while the compiler thread runs: Jikes' sampler observes the
        application thread, so cycles spent compiling do not produce
        application-method samples.
        """
        while self._next_tick <= clock:
            self._next_tick += self.interval

    @property
    def next_tick(self) -> float:
        return self._next_tick

    @property
    def total(self) -> int:
        return sum(self.counts.values())
