"""Instruction set of the stack-based bytecode VM.

The ISA is deliberately small but complete enough to express real programs:
arithmetic, comparisons, structured control flow via conditional jumps,
method calls, local variables, arrays, and intrinsic calls (I/O, math,
and the ``burn`` virtual-work primitive used by workload kernels).

Each opcode carries a *base cycle cost*, the number of virtual cycles one
execution of the instruction costs at optimization level −1 (the baseline
interpreter tier). Higher JIT tiers scale these costs down by the compiled
code's speed factor; see :mod:`repro.vm.opt.jit`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Op(enum.IntEnum):
    """Opcodes. Integer-valued for fast dispatch in the interpreter."""

    # Stack / constants
    CONST = 0       # push literal operand
    POP = 1         # discard top of stack
    DUP = 2         # duplicate top of stack
    SWAP = 3        # swap top two values

    # Locals
    LOAD = 4        # push local slot [operand]
    STORE = 5       # pop into local slot [operand]

    # Arithmetic (pop b, pop a, push a <op> b)
    ADD = 6
    SUB = 7
    MUL = 8
    DIV = 9         # true division for floats, floor-style for ints
    MOD = 10
    NEG = 11        # pop a, push -a
    NOT = 12        # pop a, push 1 if a == 0 else 0

    # Comparisons (pop b, pop a, push 1/0)
    EQ = 13
    NE = 14
    LT = 15
    LE = 16
    GT = 17
    GE = 18

    # Control flow (operand = absolute instruction index)
    JMP = 19
    JZ = 20         # jump if popped value is zero/falsey
    JNZ = 21        # jump if popped value is nonzero/truthy

    # Calls (operand = (method_name, argc) / None for RET)
    CALL = 22
    RET = 23

    # Arrays
    NEWARR = 24     # pop n, push zero-filled array of length n
    ALOAD = 25      # pop idx, pop arr, push arr[idx]
    ASTORE = 26     # pop val, pop idx, pop arr; arr[idx] = val
    ALEN = 27       # pop arr, push len(arr)

    # Intrinsics (operand = (name, argc)); result always pushed
    INTRIN = 28

    # No-op (kept by some passes as a neutral placeholder before compaction)
    NOP = 29


#: Base virtual-cycle cost of one execution of each opcode at level −1.
#: Values loosely mirror the relative latencies of interpreted Java bytecode:
#: cheap stack traffic, slightly dearer arithmetic, expensive call setup.
#: The canonical table is keyed by opcode; the interpreter indexes the flat
#: ``BASE_COST`` list by int opcode (no hashing on the dispatch path).
BASE_COST_TABLE: dict[Op, int] = {
    Op.CONST: 1,
    Op.POP: 1,
    Op.DUP: 1,
    Op.SWAP: 1,
    Op.LOAD: 1,
    Op.STORE: 1,
    Op.ADD: 2,
    Op.SUB: 2,
    Op.MUL: 3,
    Op.DIV: 6,
    Op.MOD: 6,
    Op.NEG: 1,
    Op.NOT: 1,
    Op.EQ: 2,
    Op.NE: 2,
    Op.LT: 2,
    Op.LE: 2,
    Op.GT: 2,
    Op.GE: 2,
    Op.JMP: 1,
    Op.JZ: 2,
    Op.JNZ: 2,
    Op.CALL: 12,
    Op.RET: 4,
    Op.NEWARR: 8,
    Op.ALOAD: 3,
    Op.ASTORE: 3,
    Op.ALEN: 2,
    Op.INTRIN: 6,
    Op.NOP: 1,
}

#: Flat cost list indexed by int opcode (``BASE_COST[Op.ADD]`` still works:
#: ``Op`` is an ``IntEnum``). Opcodes must stay contiguous from 0 for this
#: representation to be valid; the assertions below keep list and table in
#: sync at import time.
BASE_COST: list[int] = [BASE_COST_TABLE[op] for op in sorted(Op)]

assert sorted(op.value for op in Op) == list(range(len(Op))), (
    "opcodes must be contiguous ints starting at 0"
)
assert len(BASE_COST) == len(Op) and all(
    BASE_COST[op] == cost for op, cost in BASE_COST_TABLE.items()
), "BASE_COST list out of sync with BASE_COST_TABLE"

#: Opcodes whose operand is an absolute jump target (patched by passes).
JUMP_OPS = frozenset({Op.JMP, Op.JZ, Op.JNZ})

#: Opcodes with no observable side effect whose result is only the pushed
#: value; safe for dead-code elimination when the value is unused.
PURE_OPS = frozenset(
    {
        Op.CONST,
        Op.LOAD,
        Op.ADD,
        Op.SUB,
        Op.MUL,
        Op.NEG,
        Op.NOT,
        Op.EQ,
        Op.NE,
        Op.LT,
        Op.LE,
        Op.GT,
        Op.GE,
        Op.DUP,
    }
)

#: Arithmetic/comparison opcodes that pop two operands and push one result.
BINARY_OPS = frozenset(
    {Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE}
)

#: Opcodes that pop one operand and push one result.
UNARY_OPS = frozenset({Op.NEG, Op.NOT})


@dataclass(frozen=True, slots=True)
class Instr:
    """A single bytecode instruction: an opcode plus an optional operand.

    Operand meaning by opcode:

    - ``CONST``: the literal value (int, float, or str).
    - ``LOAD``/``STORE``: local slot index.
    - jumps: absolute target instruction index.
    - ``CALL``/``INTRIN``: ``(name, argc)`` tuple.
    - everything else: ``None``.
    """

    op: Op
    arg: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.arg is None:
            return self.op.name
        return f"{self.op.name} {self.arg!r}"


def stack_effect(instr: Instr) -> tuple[int, int]:
    """Return ``(pops, pushes)`` for *instr*.

    Used by the bytecode verifier and by optimization passes that reason
    about stack depth. ``CALL``/``INTRIN`` derive their pop count from the
    recorded arg count; both always push exactly one result.
    """
    op = instr.op
    if op in BINARY_OPS:
        return 2, 1
    if op in UNARY_OPS:
        return 1, 1
    if op == Op.CONST or op == Op.LOAD:
        return 0, 1
    if op == Op.STORE or op == Op.POP or op == Op.JZ or op == Op.JNZ:
        return 1, 0
    if op == Op.DUP:
        return 1, 2
    if op == Op.SWAP:
        return 2, 2
    if op == Op.JMP or op == Op.NOP:
        return 0, 0
    if op == Op.CALL or op == Op.INTRIN:
        __, argc = instr.arg
        return argc, 1
    if op == Op.RET:
        return 1, 0
    if op == Op.NEWARR:
        return 1, 1
    if op == Op.ALOAD:
        return 2, 1
    if op == Op.ASTORE:
        return 3, 0
    if op == Op.ALEN:
        return 1, 1
    raise ValueError(f"unknown opcode: {op!r}")
