"""Closure-compiled execution tier: runtime, routing, and fallback.

The third (fastest) execution engine. :mod:`repro.vm.closure_emit`
generates one Python function per :class:`~repro.vm.opt.jit.CompiledCode`
artifact; this module ``exec``-compiles that source, memoizes the
resulting closure on the artifact, dispatches cross-method calls, and
decides — per run and per method — whether the compiled tier may run at
all or must route to the fast/reference engines.

Architecture of one compiled run:

- :func:`resolve_compiled` is the run-level capability check. It refuses
  runs a closure cannot model exactly: attached sample listeners (they
  can observably act between any two instructions), call-depth limits
  beyond what the host's recursion stack can mirror, or any method
  reachable in the static call graph whose baseline artifact the emitter
  cannot structure.
- :func:`run_compiled` drives the entry closure. Closures call each
  other through :func:`_invoke`, which reproduces the reference CALL
  protocol exactly: depth check, lazy method materialization (charging
  compile cycles), recompile-queue drain, invocation count, CALL cost at
  the callee's speed, and a sampler check under the callee's name.
- Anything discovered mid-run that the tier cannot handle exactly —
  fuel-budget proximity, a method recompiled into an unsupported shape,
  host recursion exhaustion — raises the internal :class:`_Bailout`.
  The interpreter then discards the partial run wholesale and *replays*
  on the fast engine from a fresh state (same seed, same shared JIT),
  which is per-instruction exact. Bailouts change wall-clock only,
  never observable results.

Exactness contract (enforced by ``tests/test_engine_equivalence.py``,
``tests/test_properties_compiled.py``, and ``repro fuzz --engines``):
results, prints, heap effects, virtual cycles, per-method accounts,
sample counts, and compile events are bit-identical to the reference
loop for every run, whichever engine actually executes it.

Generated source is cached in the cross-run
:class:`~repro.vm.opt.artifact_cache.JITArtifactCache` under a key
derived from the artifact's own identity (:func:`closure_source_key`),
so sweep workers and serving tenants share codegen the same way they
share artifacts. The *closure objects* themselves are never pickled:
``CompiledCode.__getstate__`` strips every ``_closure*`` memo, so a hot
model swap or cache invalidation always rebuilds from (cached) source
and can never resurrect a stale function object.
"""

from __future__ import annotations

import hashlib
import re
import sys

from .closure_emit import (
    CLOSURE_SCHEMA_VERSION,
    UnsupportedShape,
    closure_name,
    emit_closure_source,
    intrinsic_names,
)
from .config import BASELINE_LEVEL
from .errors import (
    ExecutionError,
    StackOverflowError,
    UnknownIntrinsicError,
    VMError,
)
from .instructions import BASE_COST, Op
from .intrinsics import lookup as lookup_intrinsic

#: Deepest ``max_call_depth`` the compiled tier will take on. Each VM call
#: costs two host stack frames (``_invoke`` + the closure); beyond this we
#: route to the fast engine rather than bump the recursion limit into
#: territory where CPython can hard-crash.
MAX_COMPILED_DEPTH = 1500

#: Host recursion frames reserved per VM call, plus slack for the driver.
_RECURSION_SLACK = 1000

_W_CALL = BASE_COST[Op.CALL]


class _Bailout(Exception):
    """Internal: abandon the compiled run and replay on the fast engine."""


class ClosureUnsupported(Exception):
    """This artifact cannot be closure-compiled (shape or intrinsics)."""


def closure_source_key(compiled, num_params: int) -> str:
    """Cross-run cache key for an artifact's generated source.

    Self-contained: covers everything the emitter reads (schema version,
    name, level, speed factor, locals/params, the exact instruction
    stream), so it can never collide across codegen-relevant changes.
    """
    lines = [
        f"closure-v{CLOSURE_SCHEMA_VERSION}",
        compiled.method_name,
        str(compiled.level),
        repr(compiled.speed_factor),
        str(compiled.num_locals),
        str(num_params),
    ]
    lines.extend(f"{int(ins.op)} {ins.arg!r}" for ins in compiled.code)
    return (
        "closure-"
        + hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()
    )


def _build_namespace(compiled) -> dict:
    """Exec globals for one closure: run-independent bindings only."""
    namespace = {
        "_invoke": _invoke,
        "_BAIL": _Bailout,
        "_EE": ExecutionError,
    }
    for name in intrinsic_names(compiled.code):
        # Unknown intrinsics fall back to the fast engine, which resolves
        # them lazily at execution time exactly like the reference (the
        # INTRIN might sit on a never-taken path).
        try:
            fn = lookup_intrinsic(name)
        except UnknownIntrinsicError as exc:
            raise ClosureUnsupported(str(exc)) from exc
        namespace["_in_" + re.sub(r"[^0-9A-Za-z_]", "_", name)] = fn
    return namespace


def ensure_closure(compiled, program, artifact_cache=None):
    """The compiled closure for *compiled*, built at most once.

    Both outcomes are memoized on the artifact itself (outside the
    dataclass fields, stripped before pickling): ``_closure`` holds the
    function, ``_closure_unsupported`` the failure reason. Routing is
    therefore a pure, deterministic function of the artifact's code.
    Raises :class:`ClosureUnsupported` when this method must fall back.
    """
    fn = compiled.__dict__.get("_closure")
    if fn is not None:
        return fn
    reason = compiled.__dict__.get("_closure_unsupported")
    if reason is not None:
        raise ClosureUnsupported(reason)
    num_params = program.method(compiled.method_name).num_params
    src = None
    key = None
    if artifact_cache is not None:
        key = closure_source_key(compiled, num_params)
        cached = artifact_cache.get(key)
        if isinstance(cached, str):
            src = cached
    if src is None:
        try:
            src = emit_closure_source(
                compiled.method_name,
                compiled.code,
                num_params,
                compiled.num_locals,
                compiled.speed_factor,
            )
        except UnsupportedShape as exc:
            object.__setattr__(compiled, "_closure_unsupported", str(exc))
            raise ClosureUnsupported(str(exc)) from exc
        if artifact_cache is not None:
            artifact_cache.put(key, src)
    try:
        namespace = _build_namespace(compiled)
    except ClosureUnsupported as exc:
        object.__setattr__(compiled, "_closure_unsupported", str(exc))
        raise
    exec(
        compile(
            src,
            f"<closure:{compiled.method_name}:L{compiled.level}>",
            "exec",
        ),
        namespace,
    )
    fn = namespace[closure_name(compiled.method_name)]
    # Benign race under threads: both sides build identical functions.
    object.__setattr__(compiled, "_closure_src", src)
    object.__setattr__(compiled, "_closure", fn)
    return fn


class _VMContext:
    """Per-run mutable context threaded through every closure as ``vm``.

    Everything run-specific lives here (never in the generated source or
    its globals), so one closure serves every run, config, and sweep
    cell that shares the artifact.
    """

    __slots__ = (
        "interp", "ctx", "mc", "mw", "sampler", "adv",
        "depth", "max_depth", "fuel",
    )

    def __init__(self, interp):
        self.interp = interp
        self.ctx = interp.intrinsic_ctx
        self.mc = interp.profile.method_cycles
        self.mw = interp.profile.method_work
        self.sampler = interp.sampler
        self.adv = interp.sampler.advance
        self.depth = 1
        self.max_depth = interp.config.max_call_depth
        self.fuel = interp.config.max_instructions


def _invoke(vm, name, args, clock, executed):
    """Cross-method call dispatcher: the reference CALL handler, hoisted.

    Performs, in the reference's exact order: depth check, callee
    materialization (compile-cycle charge + first-invocation hook +
    recompile drain), invocation count, the CALL instruction's cost at
    the *callee's* speed charged to the callee's accounts, and the
    sampler check under the callee's name. Returns
    ``(result, clock, executed)``.
    """
    if vm.depth >= vm.max_depth:
        raise StackOverflowError(f"call depth exceeded {vm.max_depth}")
    interp = vm.interp
    interp.clock = clock
    state = interp._states.get(name)
    if state is None:
        state = interp._ensure_state(name)
    if interp._recompile_queue:
        interp._apply_recompiles()
    clock = interp.clock
    state.invocations += 1
    compiled = state.compiled
    fn = compiled.__dict__.get("_closure")
    if fn is None:
        try:
            fn = ensure_closure(
                compiled, interp.program, interp.jit.artifact_cache
            )
        except ClosureUnsupported:
            # A shape this tier can't run (e.g. a hook recompiled the
            # method into one): abandon and replay on the fast engine.
            raise _Bailout() from None
    executed += 1
    cost = _W_CALL * compiled.speed_factor
    clock += cost
    mc = vm.mc
    mw = vm.mw
    mc[name] = mc.get(name, 0.0) + cost
    mw[name] = mw.get(name, 0.0) + _W_CALL
    sampler = vm.sampler
    if clock >= sampler._next_tick:
        sampler.advance(clock, name)
    vm.depth += 1
    try:
        return fn(vm, clock, executed, *args)
    finally:
        vm.depth -= 1


def _reachable_methods(program, entry: str) -> list[str]:
    """Methods reachable from *entry* through static CALL edges.

    Targets absent from the program are skipped: whether they raise
    ``UnknownMethodError`` is a runtime question (the CALL may sit on a
    dead path), answered identically by ``_invoke``.
    """
    seen = [entry]
    todo = [entry]
    while todo:
        name = todo.pop()
        for ins in program.method(name).code:
            if ins.op == Op.CALL:
                callee = ins.arg[0]
                if callee not in seen and callee in program:
                    seen.append(callee)
                    todo.append(callee)
    return seen


def resolve_compiled(interp, entry_name: str):
    """Run-level capability check; the entry closure if the run may
    execute on the compiled tier, else ``None`` (route to fast).

    Refusals, in check order:

    - **Sample listeners attached** (adaptive runs): a listener may
      observably act between any two instructions — between-safepoint
      batching would be visible. Checked at ``run()`` time because
      controllers attach after construction.
    - **Call depth beyond** :data:`MAX_COMPILED_DEPTH`: each VM call
      consumes host stack; past this we won't chase the recursion limit.
    - **Any statically reachable method whose baseline artifact the
      emitter can't structure** (or with unknown intrinsics): checking
      the whole call graph up front keeps repeated runs of such programs
      from paying a bailout-and-replay every time. Eager ``jit.compile``
      here is safe: it only warms the per-run memo — compile *cycles*
      are still charged at first invocation, exactly as the reference.
    """
    if interp.sampler.has_listeners:
        return None
    if interp.config.max_call_depth > MAX_COMPILED_DEPTH:
        return None
    cache = interp.jit.artifact_cache
    entry_fn = None
    try:
        for name in _reachable_methods(interp.program, entry_name):
            state = interp._states.get(name)
            compiled = (
                state.compiled
                if state is not None
                else interp.jit.compile(name, BASELINE_LEVEL)
            )
            fn = ensure_closure(compiled, interp.program, cache)
            if name == entry_name:
                entry_fn = fn
    except (ClosureUnsupported, VMError):
        # VMError: a statically referenced but never-invoked method can be
        # uncompilable; the other engines only fail if it actually runs.
        return None
    return entry_fn


def run_compiled(interp, state, args: tuple):
    """Execute one run on the compiled tier.

    Entry contract mirrors ``run_fast``: the entry state exists, its
    invocation is counted, ``interp.clock`` is live. Raises
    :class:`_Bailout` when the run must replay on the fast engine.
    """
    fn = state.compiled.__dict__.get("_closure")
    if fn is None:  # pragma: no cover - resolve_compiled builds it
        fn = ensure_closure(state.compiled, interp.program,
                            interp.jit.artifact_cache)
    vm = _VMContext(interp)
    old_limit = sys.getrecursionlimit()
    need = _RECURSION_SLACK + 3 * vm.max_depth
    bumped = need > old_limit
    if bumped:
        sys.setrecursionlimit(need)
    try:
        result, clock, executed = fn(vm, interp.clock, 0, *args)
    except RecursionError as exc:
        # Host stack exhausted before the VM depth check fired (possible
        # when the driver itself sits deep in a host stack): replay.
        raise _Bailout() from exc
    finally:
        if bumped:
            sys.setrecursionlimit(old_limit)
    interp.clock = clock
    interp.profile.instructions_executed = executed
    sampler = interp.sampler
    # The reference's final advance after the outermost RET runs under
    # the popped (entry) frame's name.
    if clock >= sampler._next_tick:
        sampler.advance(clock, state.name)
    return result
