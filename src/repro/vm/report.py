"""Human-readable reports over run profiles — observability tooling.

Zero-cost introspection built entirely from the :class:`RunProfile` the
interpreter already produces: per-method breakdowns, the compilation
timeline, and side-by-side comparisons of two runs (e.g. default vs.
evolved). Used by examples and handy when debugging cost-model changes.
"""

from __future__ import annotations

from .config import DEFAULT_CONFIG, VMConfig
from .profiles import RunProfile


def _table(headers: list[str], rows: list[list[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def profile_report(
    profile: RunProfile, config: VMConfig = DEFAULT_CONFIG, top: int = 12
) -> str:
    """A per-method breakdown of one run, hottest methods first."""
    methods = sorted(
        profile.invocations,
        key=lambda m: -profile.method_cycles.get(m, 0.0),
    )[:top]
    total = profile.total_cycles or 1.0
    rows = []
    for method in methods:
        cycles = profile.method_cycles.get(method, 0.0)
        rows.append(
            [
                method,
                profile.invocations.get(method, 0),
                profile.samples.get(method, 0),
                f"{cycles / 1e6:.3f}",
                f"{100 * cycles / total:.1f}%",
                profile.final_levels.get(method, -1),
                profile.compile_count(method),
            ]
        )
    header = (
        f"run: {config.seconds(profile.total_cycles):.3f}s total "
        f"({config.seconds(profile.compile_cycles):.3f}s compiling, "
        f"{profile.total_samples} samples, "
        f"{profile.instructions_executed} instructions)"
    )
    gc_line = ""
    if profile.gc_count or profile.allocated_bytes:
        gc_line = (
            f"\ngc[{profile.gc_policy}]: {profile.gc_count} collections, "
            f"{config.seconds(profile.gc_pause_cycles):.3f}s paused, "
            f"{profile.allocated_bytes / 1e6:.2f} MB allocated "
            f"(peak live {profile.peak_live_bytes / 1e6:.2f} MB)"
        )
    body = _table(
        ["method", "calls", "samples", "cycles (M)", "share", "level", "compiles"],
        rows,
    )
    return f"{header}{gc_line}\n{body}"


def compile_timeline(profile: RunProfile, config: VMConfig = DEFAULT_CONFIG) -> str:
    """The run's compilation events in order, with virtual timestamps."""
    rows = [
        [
            f"{config.seconds(event.at_clock):.3f}s",
            event.method,
            event.level,
            f"{event.cycles:.0f}",
        ]
        for event in profile.compile_events
    ]
    return _table(["at", "method", "level", "cost (cycles)"], rows)


def compare_profiles(
    a: RunProfile,
    b: RunProfile,
    label_a: str = "a",
    label_b: str = "b",
    config: VMConfig = DEFAULT_CONFIG,
) -> str:
    """Side-by-side per-method comparison of two runs (same program)."""
    methods = sorted(
        set(a.invocations) | set(b.invocations),
        key=lambda m: -(a.method_cycles.get(m, 0.0) + b.method_cycles.get(m, 0.0)),
    )
    rows = []
    for method in methods:
        cycles_a = a.method_cycles.get(method, 0.0)
        cycles_b = b.method_cycles.get(method, 0.0)
        rows.append(
            [
                method,
                f"{cycles_a / 1e6:.3f}",
                f"{cycles_b / 1e6:.3f}",
                f"{cycles_a / cycles_b:.2f}x" if cycles_b else "-",
                a.final_levels.get(method, -1),
                b.final_levels.get(method, -1),
            ]
        )
    summary = (
        f"total: {label_a}={config.seconds(a.total_cycles):.3f}s "
        f"{label_b}={config.seconds(b.total_cycles):.3f}s "
        f"(ratio {a.total_cycles / b.total_cycles:.3f})"
    )
    body = _table(
        [
            "method",
            f"{label_a} (M)",
            f"{label_b} (M)",
            f"{label_a}/{label_b}",
            f"{label_a} lvl",
            f"{label_b} lvl",
        ],
        rows,
    )
    return f"{summary}\n{body}"
