"""Heap and garbage-collection cost model.

The paper's discussion (§VI) names *input-specific selection of garbage
collectors* as a further use of the same machinery (following the authors'
VEE'08 study). To support that extension, the VM models a managed heap:

- programs allocate through the ``alloc`` (short-lived) and ``retain`` /
  ``release`` (long-lived) intrinsics;
- when the allocated-since-last-GC volume exhausts the usable heap, a
  collection runs and its pause is charged to the virtual clock
  (unscaled — collector work does not speed up with the mutator's JIT
  tier);
- two collectors with the classic opposite trade-offs are provided:

  **semispace** (copying): pause proportional to *live* bytes only, but
  just half the heap is usable, so high-survival workloads collect often.

  **marksweep**: the whole heap is usable and the sweep touches the whole
  heap, so pauses scale with heap size — plus a per-allocation free-list
  overhead; it wins when survival is high, loses on allocation-heavy,
  short-lived workloads.

Which collector minimizes total GC cost depends on the input's allocation
volume and survival profile — exactly the input↦behaviour relation the
evolvable VM learns (:mod:`repro.core.gc_selection`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The available collector policies.
GC_POLICIES: tuple[str, ...] = ("semispace", "marksweep")

#: Default collector (what the unmodified VM uses).
DEFAULT_GC_POLICY = "semispace"


@dataclass(frozen=True)
class GCCostModel:
    """Collector cost constants (cycles per byte, per collection)."""

    heap_bytes: int = 2_000_000
    copy_cycles_per_live_byte: float = 0.5
    mark_cycles_per_live_byte: float = 0.35
    sweep_cycles_per_heap_byte: float = 0.04
    freelist_cycles_per_alloc: float = 9.0
    gc_dispatch_cycles: float = 2_000.0

    def usable_bytes(self, policy: str, live: float) -> float:
        capacity = (
            self.heap_bytes / 2 if policy == "semispace" else self.heap_bytes
        )
        return max(capacity - live, capacity * 0.05)

    def pause_cycles(self, policy: str, live: float) -> float:
        if policy == "semispace":
            return self.gc_dispatch_cycles + live * self.copy_cycles_per_live_byte
        return (
            self.gc_dispatch_cycles
            + live * self.mark_cycles_per_live_byte
            + self.heap_bytes * self.sweep_cycles_per_heap_byte
        )

    def alloc_overhead(self, policy: str) -> float:
        """Extra cycles per allocation request under *policy*."""
        return self.freelist_cycles_per_alloc if policy == "marksweep" else 0.0


@dataclass
class HeapStats:
    """Aggregate allocation/GC observations for one run."""

    allocated_bytes: float = 0.0
    allocation_count: int = 0
    peak_live_bytes: float = 0.0
    gc_count: int = 0
    gc_pause_cycles: float = 0.0


class Heap:
    """Mutable heap state for one execution under one collector policy."""

    def __init__(self, policy: str = DEFAULT_GC_POLICY, model: GCCostModel = GCCostModel()):
        if policy not in GC_POLICIES:
            raise ValueError(
                f"unknown GC policy {policy!r} (known: {GC_POLICIES})"
            )
        self.policy = policy
        self.model = model
        self.live_bytes = 0.0
        self.nursery_bytes = 0.0  # short-lived data since the last GC
        self.stats = HeapStats()

    def _maybe_collect(self) -> float:
        """Run a collection if the usable space is exhausted; return the
        pause cycles incurred (0 if no collection ran)."""
        usable = self.model.usable_bytes(self.policy, self.live_bytes)
        if self.nursery_bytes < usable:
            return 0.0
        pause = self.model.pause_cycles(self.policy, self.live_bytes)
        self.nursery_bytes = 0.0
        self.stats.gc_count += 1
        self.stats.gc_pause_cycles += pause
        return pause

    def alloc(self, nbytes: float) -> float:
        """Allocate short-lived data; returns cycles to charge the clock."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.nursery_bytes += nbytes
        self.stats.allocated_bytes += nbytes
        self.stats.allocation_count += 1
        cost = self.model.alloc_overhead(self.policy)
        cost += self._maybe_collect()
        return cost

    def retain(self, nbytes: float) -> float:
        """Allocate long-lived (surviving) data."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self.live_bytes += nbytes
        self.stats.allocated_bytes += nbytes
        self.stats.allocation_count += 1
        self.stats.peak_live_bytes = max(
            self.stats.peak_live_bytes, self.live_bytes
        )
        cost = self.model.alloc_overhead(self.policy)
        cost += self._maybe_collect()
        return cost

    def release(self, nbytes: float) -> None:
        """Drop long-lived data (e.g. a phase's working set retiring)."""
        self.live_bytes = max(0.0, self.live_bytes - nbytes)


def estimate_gc_cost(
    policy: str,
    allocated_bytes: float,
    peak_live_bytes: float,
    allocation_count: int,
    model: GCCostModel = GCCostModel(),
) -> float:
    """Analytic total GC cost of running a whole execution under *policy*.

    Uses the same constants as the live heap, assuming allocation spread
    uniformly against the peak live size — the posterior model the
    evolvable VM uses to compute each run's *ideal* collector.
    """
    usable = model.usable_bytes(policy, peak_live_bytes)
    collections = allocated_bytes / usable
    pause = model.pause_cycles(policy, peak_live_bytes)
    return collections * pause + allocation_count * model.alloc_overhead(policy)


def ideal_gc_policy(
    allocated_bytes: float,
    peak_live_bytes: float,
    allocation_count: int,
    model: GCCostModel = GCCostModel(),
) -> str:
    """The collector minimizing estimated total GC cost for one run."""
    return min(
        GC_POLICIES,
        key=lambda policy: estimate_gc_cost(
            policy, allocated_bytes, peak_live_bytes, allocation_count, model
        ),
    )
