"""Abstract-interpretation bytecode verifier: stack-depth safety.

The structural checks in :mod:`repro.vm.program` validate operands and
targets; this verifier goes further, proving that no execution path can
underflow the operand stack and that stack depth is *consistent* — every
program point is reached with one statically-known depth regardless of the
path taken (the classic JVM-verifier invariant). The JIT relies on this
when it splices inlined bodies into callers.

Verification runs a worklist dataflow over the instruction graph with the
abstract state being the operand-stack depth.
"""

from __future__ import annotations

from .errors import VerificationError
from .instructions import Op, stack_effect
from .program import Method, Program


def stack_depths(code, name: str = "<code>") -> dict[int, int]:
    """Dataflow over raw *code*: the stack depth at every reachable pc.

    Raises:
        VerificationError: on stack underflow, inconsistent depths at a
            join point, or a path that falls off the end of the code.
    """
    n = len(code)
    depth_at: dict[int, int] = {0: 0}
    work = [0]
    while work:
        pc = work.pop()
        depth = depth_at[pc]
        ins = code[pc]
        pops, pushes = stack_effect(ins)
        if depth < pops:
            raise VerificationError(
                f"{name}: stack underflow at pc={pc} "
                f"({ins.op.name} pops {pops}, depth {depth})"
            )
        new_depth = depth - pops + pushes
        successors: list[int] = []
        if ins.op == Op.JMP:
            successors = [ins.arg]
        elif ins.op in (Op.JZ, Op.JNZ):
            successors = [ins.arg, pc + 1]
        elif ins.op == Op.RET:
            successors = []
        else:
            successors = [pc + 1]
        for succ in successors:
            if succ >= n:
                raise VerificationError(
                    f"{name}: control falls off code end at pc={pc}"
                )
            known = depth_at.get(succ)
            if known is None:
                depth_at[succ] = new_depth
                work.append(succ)
            elif known != new_depth:
                raise VerificationError(
                    f"{name}: inconsistent stack depth at pc={succ} "
                    f"({known} vs {new_depth})"
                )
    return depth_at


def verify_stack_discipline(method: Method) -> dict[int, int]:
    """Verify *method*'s stack behaviour; return the depth at each pc."""
    return stack_depths(method.code, method.name)


def locals_write_before_read(code, num_params: int) -> bool:
    """True if every LOAD of a non-parameter slot is definitely preceded
    by a STORE to that slot on every path from entry.

    A forward dataflow with must-assign sets (meet = intersection).
    Front-end-generated code always satisfies this (every ``var`` has an
    initializer); the tail-call pass requires it before reusing a frame,
    since re-entry via JMP skips the fresh-zero initialization a real
    invocation would perform.
    """
    n = len(code)
    entry_state = frozenset(range(num_params))
    states: dict[int, frozenset[int]] = {0: entry_state}
    work = [0]
    while work:
        pc = work.pop()
        state = states[pc]
        ins = code[pc]
        if ins.op == Op.LOAD and ins.arg not in state:
            return False
        new_state = state | {ins.arg} if ins.op == Op.STORE else state
        if ins.op == Op.JMP:
            successors = [ins.arg]
        elif ins.op in (Op.JZ, Op.JNZ):
            successors = [ins.arg, pc + 1]
        elif ins.op == Op.RET:
            successors = []
        else:
            successors = [pc + 1]
        for succ in successors:
            if succ >= n:
                continue  # stack verifier reports this separately
            known = states.get(succ)
            if known is None:
                states[succ] = new_state
                work.append(succ)
            else:
                merged = known & new_state
                if merged != known:
                    states[succ] = merged
                    work.append(succ)
    return True


def max_stack_depth(method: Method) -> int:
    """The maximum operand-stack depth any reachable point attains."""
    depths = verify_stack_discipline(method)
    peak = 0
    for pc, depth in depths.items():
        pops, pushes = stack_effect(method.code[pc])
        peak = max(peak, depth - pops + pushes, depth)
    return peak


def verify_program_stacks(program: Program) -> dict[str, int]:
    """Verify every method in *program*; returns per-method max depths."""
    return {method.name: max_stack_depth(method) for method in program}
