"""Error hierarchy for the virtual machine substrate.

Every failure raised by the VM proper derives from :class:`VMError` so that
callers embedding the VM (the adaptive optimization system, the experiment
harness) can catch substrate failures without masking ordinary Python bugs.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for all virtual machine errors."""


class VerificationError(VMError):
    """A program or method failed static verification before execution."""


class ExecutionError(VMError):
    """A runtime fault inside the interpreter (bad operand, stack fault...)."""

    def __init__(self, message: str, method: str | None = None, pc: int | None = None):
        self.method = method
        self.pc = pc
        location = ""
        if method is not None:
            location = f" in {method}" + (f" at pc={pc}" if pc is not None else "")
        super().__init__(message + location)


class StackOverflowError(ExecutionError):
    """The call stack exceeded the configured maximum depth."""


class UnknownMethodError(ExecutionError):
    """A CALL referenced a method name absent from the program."""


class UnknownIntrinsicError(ExecutionError):
    """An INTRIN referenced an intrinsic that is not registered."""


class FuelExhaustedError(ExecutionError):
    """Execution exceeded the configured instruction budget (runaway guard)."""
