"""Configuration of the virtual machine's cost model and sampling.

All tunables of the substrate live here so experiments can vary them in one
place. The defaults are calibrated so benchmark running times and the
compile-cost/speedup economics fall in the ranges the paper reports for
Jikes RVM 2.9.1 (levels −1, 0, 1, 2; timer-based sampling).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Valid optimization levels, ordered from cheapest to most aggressive.
OPT_LEVELS: tuple[int, ...] = (-1, 0, 1, 2)

#: Baseline level used for every method's first compilation.
BASELINE_LEVEL: int = -1


@dataclass(frozen=True)
class VMConfig:
    """Cost-model and sampler parameters of one VM instance.

    Attributes:
        dispatch_factor: Per-level multiplier applied to every instruction's
            base cycle cost. Level −1 is the interpreted baseline (1.0);
            higher tiers run the same bytecode faster, modeling better
            code generation.
        opt_gain: Per-level additional speed gain scale that interacts with a
            method's *optimizability* (loop density, arithmetic density);
            see :meth:`repro.vm.opt.jit.JITCompiler.speed_factor`.
        compile_rate: Virtual cycles per bytecode instruction charged when
            compiling a method at each level. Mirrors Jikes: the baseline
            compiler is ~2 orders of magnitude cheaper than opt level 2.
        sample_interval: Virtual cycles between two timer samples.
        cycles_per_second: Conversion from virtual cycles to virtual seconds
            (used only for reporting, never for decisions).
        max_call_depth: Call-stack depth guard.
        max_instructions: Runaway-execution fuel guard (interpreted
            instructions, not cycles).
    """

    dispatch_factor: dict[int, float] = field(
        default_factory=lambda: {-1: 1.0, 0: 0.52, 1: 0.36, 2: 0.26}
    )
    opt_gain: dict[int, float] = field(
        default_factory=lambda: {-1: 0.0, 0: 0.12, 1: 0.38, 2: 0.55}
    )
    compile_rate: dict[int, float] = field(
        default_factory=lambda: {-1: 10.0, 0: 220.0, 1: 1100.0, 2: 4200.0}
    )
    sample_interval: int = 40_000
    cycles_per_second: float = 1_000_000.0
    max_call_depth: int = 256
    max_instructions: int = 200_000_000

    def __post_init__(self) -> None:
        for table_name in ("dispatch_factor", "opt_gain", "compile_rate"):
            table = getattr(self, table_name)
            missing = [lvl for lvl in OPT_LEVELS if lvl not in table]
            if missing:
                raise ValueError(f"{table_name} missing levels {missing}")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if self.cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")

    def seconds(self, cycles: float) -> float:
        """Convert virtual cycles to virtual seconds."""
        return cycles / self.cycles_per_second


#: Shared default configuration.
DEFAULT_CONFIG = VMConfig()
