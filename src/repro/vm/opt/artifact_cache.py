"""Cross-run JIT artifact cache.

A :class:`~repro.vm.opt.jit.JITCompiler` instance already memoizes per
``(method, level)`` — but compilers are typically created per run (or per
sweep cell), so a Table I sweep recompiles the same methods at the same
levels thousands of times. This module adds a second, *cross-run* layer:
compiled artifacts keyed by everything that can influence codegen, shared
between compiler instances and optionally persisted to disk next to the
experiment result cache.

Soundness of the key. A compiled artifact is a pure function of:

- the method's own bytecode (its digest),
- the *whole program's* bytecode — inlining and tail-call elimination pull
  callee bodies into the caller, so two programs containing a bit-identical
  method may still compile it differently (the program digest covers this),
- the optimization level,
- the pass pipeline actually applied (pass names, in order — the
  differential harness overrides pipelines per level),
- the cost configuration (dispatch factors, opt gains, compile rates feed
  ``speed_factor`` and ``compile_cycles``, which are *stored in* the
  artifact).

Because ``compile_cycles`` is part of the artifact, a cache hit charges the
run's virtual clock exactly what a fresh compile would have: wall-clock
changes, virtual-cycle results do not. This is asserted by the equivalence
tests and is what makes the cache safe to enable under ``repro sweep``.

Disk entries ride the shared crash-safe envelope
(:mod:`repro.resilience.envelope`): atomic write-temp-then-rename publish
plus a content checksum, so concurrent sweep workers can share one
directory and a torn or bit-flipped entry is at worst a **miss** (the
corrupt file is quarantined), never a corrupt hit. Store failures (full
disk) silently skip persistence — the in-memory layer still serves.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from ...resilience.degradation import DegradationReport
from ...resilience.envelope import (
    REAL_FS,
    EnvelopeError,
    FileSystem,
    encode_envelope,
    decode_envelope,
)
from ...resilience.quarantine import quarantine_file
from ..program import Method, Program

#: Bump when the artifact layout changes incompatibly (invalidates disk
#: entries from older versions without needing a cache wipe).
ARTIFACT_SCHEMA_VERSION = 1

#: Envelope kind tag for persisted JIT artifacts.
ARTIFACT_KIND = "jit-artifact"


def method_digest(method: Method) -> str:
    """Stable digest of one method's identity and bytecode."""
    lines = [method.name, str(method.num_params), str(method.num_locals)]
    lines.extend(
        f"{int(ins.op)} {ins.arg!r}" for ins in method.code
    )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def program_digest(program: Program) -> str:
    """Stable digest of a whole program (all methods, sorted by name)."""
    h = hashlib.sha256()
    h.update(program.entry.encode("utf-8"))
    for name in sorted(program.method_names):
        h.update(b"\x00")
        h.update(method_digest(program.method(name)).encode("ascii"))
    return h.hexdigest()


def artifact_key(
    mdigest: str,
    pdigest: str,
    level: int,
    config_digest: str,
    pass_names: tuple[str, ...],
) -> str:
    """The cache key: one hex digest covering every codegen input."""
    parts = "\n".join(
        (
            f"v{ARTIFACT_SCHEMA_VERSION}",
            mdigest,
            pdigest,
            str(level),
            config_digest,
            *pass_names,
        )
    )
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


class JITArtifactCache:
    """Shared artifact store: in-memory map plus optional disk layer.

    Thread-unsafe by design (one per process); *processes* coordinate via
    the disk layer's envelope (atomic renames + checksums), so concurrent
    sweep workers can share one directory — a torn or concurrent write is
    at worst a miss, never a corrupt hit.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        *,
        fs: FileSystem = REAL_FS,
        report: DegradationReport | None = None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.fs = fs
        self.report = report
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str):
        """Return the cached artifact for *key*, or ``None``."""
        artifact = self._memory.get(key)
        if artifact is not None:
            self.hits += 1
            return artifact
        if self.cache_dir is not None:
            artifact = self._disk_get(key)
            if artifact is not None:
                self._memory[key] = artifact
                self.hits += 1
                self.disk_hits += 1
                return artifact
        self.misses += 1
        return None

    def _disk_get(self, key: str):
        path = self._path(key)
        try:
            blob = self.fs.read_bytes(path)
        except OSError:
            return None
        try:
            return pickle.loads(decode_envelope(blob, ARTIFACT_KIND))
        except (
            EnvelopeError,
            pickle.PickleError,
            EOFError,
            AttributeError,
            ValueError,
        ) as exc:
            reason = getattr(exc, "reason", type(exc).__name__)
            quarantine_file(
                path, reason, str(exc),
                component="jit-cache", fs=self.fs, report=self.report,
            )
            if self.report is not None:
                self.report.record(
                    "jit-cache", "cache-miss", reason, path=str(path)
                )
            self.quarantined += 1
            return None

    def put(self, key: str, artifact) -> None:
        self._memory[key] = artifact
        if self.cache_dir is None:
            return
        path = self._path(key)
        if path.exists():
            return
        blob = encode_envelope(
            pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL),
            ARTIFACT_KIND,
        )
        try:
            self.fs.write_bytes_atomic(path, blob)
        except OSError as exc:
            # Persistence is an optimization; losing it costs recompiles,
            # never correctness.
            if self.report is not None:
                self.report.record(
                    "jit-cache", "store-failed", type(exc).__name__,
                    detail=str(exc), path=str(path),
                )

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._memory),
            "quarantined": self.quarantined,
        }
