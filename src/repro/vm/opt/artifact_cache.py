"""Cross-run JIT artifact cache.

A :class:`~repro.vm.opt.jit.JITCompiler` instance already memoizes per
``(method, level)`` — but compilers are typically created per run (or per
sweep cell), so a Table I sweep recompiles the same methods at the same
levels thousands of times. This module adds a second, *cross-run* layer:
compiled artifacts keyed by everything that can influence codegen, shared
between compiler instances and optionally persisted to disk next to the
experiment result cache.

Soundness of the key. A compiled artifact is a pure function of:

- the method's own bytecode (its digest),
- the *whole program's* bytecode — inlining and tail-call elimination pull
  callee bodies into the caller, so two programs containing a bit-identical
  method may still compile it differently (the program digest covers this),
- the optimization level,
- the pass pipeline actually applied (pass names, in order — the
  differential harness overrides pipelines per level),
- the cost configuration (dispatch factors, opt gains, compile rates feed
  ``speed_factor`` and ``compile_cycles``, which are *stored in* the
  artifact).

Because ``compile_cycles`` is part of the artifact, a cache hit charges the
run's virtual clock exactly what a fresh compile would have: wall-clock
changes, virtual-cycle results do not. This is asserted by the equivalence
tests and is what makes the cache safe to enable under ``repro sweep``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from ..program import Method, Program

#: Bump when the artifact layout changes incompatibly (invalidates disk
#: entries from older versions without needing a cache wipe).
ARTIFACT_SCHEMA_VERSION = 1


def method_digest(method: Method) -> str:
    """Stable digest of one method's identity and bytecode."""
    lines = [method.name, str(method.num_params), str(method.num_locals)]
    lines.extend(
        f"{int(ins.op)} {ins.arg!r}" for ins in method.code
    )
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def program_digest(program: Program) -> str:
    """Stable digest of a whole program (all methods, sorted by name)."""
    h = hashlib.sha256()
    h.update(program.entry.encode("utf-8"))
    for name in sorted(program.method_names):
        h.update(b"\x00")
        h.update(method_digest(program.method(name)).encode("ascii"))
    return h.hexdigest()


def artifact_key(
    mdigest: str,
    pdigest: str,
    level: int,
    config_digest: str,
    pass_names: tuple[str, ...],
) -> str:
    """The cache key: one hex digest covering every codegen input."""
    parts = "\n".join(
        (
            f"v{ARTIFACT_SCHEMA_VERSION}",
            mdigest,
            pdigest,
            str(level),
            config_digest,
            *pass_names,
        )
    )
    return hashlib.sha256(parts.encode("utf-8")).hexdigest()


class JITArtifactCache:
    """Shared artifact store: in-memory map plus optional disk layer.

    Thread-unsafe by design (one per process); *processes* coordinate via
    the disk layer, whose writes are atomic renames, so concurrent sweep
    workers can share one directory — a torn or concurrent write is at
    worst a miss, never a corrupt hit.
    """

    def __init__(self, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def get(self, key: str):
        """Return the cached artifact for *key*, or ``None``."""
        artifact = self._memory.get(key)
        if artifact is not None:
            self.hits += 1
            return artifact
        if self.cache_dir is not None:
            path = self.cache_dir / f"{key}.pkl"
            try:
                with open(path, "rb") as fh:
                    artifact = pickle.load(fh)
            except (OSError, pickle.PickleError, EOFError, AttributeError):
                artifact = None
            if artifact is not None:
                self._memory[key] = artifact
                self.hits += 1
                self.disk_hits += 1
                return artifact
        self.misses += 1
        return None

    def put(self, key: str, artifact) -> None:
        self._memory[key] = artifact
        if self.cache_dir is None:
            return
        path = self.cache_dir / f"{key}.pkl"
        if path.exists():
            return
        # Atomic publish: write to a temp file in the same directory, then
        # rename over the final name. Readers either see a complete entry
        # or none at all.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "entries": len(self._memory),
        }
