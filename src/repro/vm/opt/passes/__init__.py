"""Optimization passes of the tiered JIT.

Each pass is a callable ``pass_fn(buffer, context) -> bool`` where *buffer*
is a :class:`~repro.vm.opt.ir.CodeBuffer` and the return value reports
whether anything changed (drives fixpoint iteration in the pipeline).
"""

from .constant_folding import constant_folding
from .dce import dead_code_elimination
from .inline import inline_calls
from .jump_threading import jump_threading
from .peephole import peephole
from .tail_call import eliminate_tail_calls

__all__ = [
    "constant_folding",
    "dead_code_elimination",
    "eliminate_tail_calls",
    "inline_calls",
    "jump_threading",
    "peephole",
]
