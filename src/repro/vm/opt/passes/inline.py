"""Method inlining.

Inlines calls to small leaf methods (no outgoing calls) directly into the
caller, eliminating per-invocation ``CALL``/``RET`` overhead and exposing
the callee body to the caller's later folding/peephole/DCE sweeps.

At an eligible site ``... args ...; CALL f``, the call is replaced by:

1. ``STORE`` instructions moving the arguments (top of stack first) into
   freshly allocated caller local slots that shadow the callee's parameters;
2. the callee body, with local slots remapped, internal jumps rebased, and
   each ``RET`` rewritten into a ``JMP`` to a landing ``NOP`` appended after
   the body (the return value simply stays on the caller's stack);
3. the landing ``NOP`` (removed later by buffer compaction).

Self-recursive callees, callees containing calls, and callees larger than
``ctx.inline_size_limit`` are skipped; total growth per caller is capped by
``ctx.inline_budget``.
"""

from __future__ import annotations

from ...instructions import Instr, JUMP_OPS, Op
from ...program import Method
from ..context import PassContext
from ..ir import CodeBuffer


def _eligible(ctx: PassContext, callee_name: str) -> Method | None:
    if callee_name == ctx.method.name:
        return None
    if callee_name not in ctx.program:
        return None
    callee = ctx.program.method(callee_name)
    if callee.size > ctx.inline_size_limit:
        return None
    if any(ins.op == Op.CALL for ins in callee.code):
        return None
    return callee


def _build_inline_sequence(
    callee: Method, argc: int, base_slot: int, splice_at: int
) -> list[Instr]:
    """Materialize the replacement sequence for one call site.

    *base_slot* is the first fresh caller slot; *splice_at* the absolute pc
    where the sequence will begin in the caller.
    """
    stores = [
        Instr(Op.STORE, base_slot + slot) for slot in reversed(range(argc))
    ]
    body_base = splice_at + len(stores)
    body: list[Instr] = []
    landing = body_base + len(callee.code)  # index of the landing NOP
    for ins in callee.code:
        if ins.op in JUMP_OPS:
            body.append(Instr(ins.op, body_base + ins.arg))
        elif ins.op == Op.RET:
            body.append(Instr(Op.JMP, landing))
        elif ins.op in (Op.LOAD, Op.STORE):
            body.append(Instr(ins.op, base_slot + ins.arg))
        else:
            body.append(ins)
    return stores + body + [Instr(Op.NOP)]


def _splice(buf: CodeBuffer, pc: int, sequence: list[Instr]) -> None:
    """Replace the single instruction at *pc* with *sequence*, shifting and
    remapping all caller jumps that cross the splice point."""
    growth = len(sequence) - 1
    old = buf.instrs
    patched: list[Instr] = []
    for i, ins in enumerate(old):
        if i == pc:
            patched.extend(sequence)
            continue
        if ins.op in JUMP_OPS and ins.arg > pc:
            ins = Instr(ins.op, ins.arg + growth)
        patched.append(ins)
    # Jumps inside the spliced sequence were built with absolute targets
    # already; jumps before pc targeting <= pc are untouched and correct.
    buf.instrs = patched


def inline_calls(buf: CodeBuffer, ctx: PassContext) -> bool:
    """Inline eligible call sites until the growth budget is exhausted."""
    changed = False
    budget = ctx.inline_budget
    inlined_any = True
    while inlined_any and budget > 0:
        inlined_any = False
        for pc, ins in enumerate(buf.instrs):
            if ins.op != Op.CALL:
                continue
            name, argc = ins.arg
            callee = _eligible(ctx, name)
            if callee is None:
                continue
            sequence = _build_inline_sequence(
                callee, argc, base_slot=ctx.num_locals, splice_at=pc
            )
            growth = len(sequence) - 1
            if growth > budget:
                continue
            ctx.num_locals += callee.num_locals
            _splice(buf, pc, sequence)
            budget -= growth
            changed = True
            inlined_any = True
            break  # indices shifted; rescan from the top
    if changed:
        ctx.record("inline", 1)
    return changed
