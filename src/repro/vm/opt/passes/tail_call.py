"""Self-recursive tail-call elimination.

The pattern ``CALL self/k; RET`` re-enters the current method as its last
action. The pass rewrites it into frame reuse: store the k arguments back
into the parameter slots (top of stack first) and jump to the method
entry. This removes the per-iteration ``CALL``/``RET`` dispatch cost and
— more importantly for deep recursions — turns O(depth) call-stack growth
into a loop, so programs like an accumulator-style factorial no longer
hit the call-depth guard.

Safety: the rewrite is only applied when the stack-depth dataflow proves
the depth at the CALL site is exactly k (the arguments and nothing else),
so frame reuse cannot strand live operands.
"""

from __future__ import annotations

from ...errors import VerificationError
from ...instructions import Instr, JUMP_OPS, Op
from ...verifier import locals_write_before_read, stack_depths
from ..context import PassContext
from ..ir import CodeBuffer


def _find_sites(buf: CodeBuffer, ctx: PassContext) -> list[int]:
    """pcs of ``CALL self; RET`` pairs safe to rewrite."""
    code = buf.instrs
    # Frame reuse skips the zero-initialization of fresh locals; require
    # the write-before-read discipline that makes that unobservable.
    if not locals_write_before_read(code, ctx.method.num_params):
        return []
    try:
        depths = stack_depths(code, ctx.method.name)
    except VerificationError:
        return []  # malformed mid-pipeline shape; skip conservatively
    targets = buf.jump_targets()
    sites = []
    for pc in range(len(code) - 1):
        ins = code[pc]
        if ins.op != Op.CALL:
            continue
        callee, argc = ins.arg
        if callee != ctx.method.name:
            continue
        if code[pc + 1].op != Op.RET:
            continue
        if (pc + 1) in targets:
            continue  # the RET is also reached with a non-call value
        if depths.get(pc) != argc:
            continue  # live operands below the arguments
        sites.append(pc)
    return sites


def eliminate_tail_calls(buf: CodeBuffer, ctx: PassContext) -> bool:
    """Rewrite all safe self-tail-calls; returns True on change."""
    sites = _find_sites(buf, ctx)
    if not sites:
        return False
    # Rewrite back-to-front so earlier indices stay valid during splicing.
    for pc in reversed(sites):
        __, argc = buf.instrs[pc].arg
        stores = [Instr(Op.STORE, slot) for slot in reversed(range(argc))]
        replacement = stores + [Instr(Op.JMP, 0)]
        growth = len(replacement) - 2  # replaces CALL + RET
        old = buf.instrs
        patched: list[Instr] = []
        for index, ins in enumerate(old):
            if index == pc:
                patched.extend(replacement)
                continue
            if index == pc + 1:
                continue  # the RET being replaced
            if ins.op in JUMP_OPS and ins.arg > pc + 1:
                ins = Instr(ins.op, ins.arg + growth)
            patched.append(ins)
        buf.instrs = patched
    ctx.record("tail_call", len(sites))
    return True
