"""Jump threading.

Redirects jumps whose target is an unconditional ``JMP`` straight to the
final destination, collapsing jump chains that front ends and earlier passes
leave behind. Cycles of JMPs (degenerate infinite loops) are left alone.
"""

from __future__ import annotations

from ...instructions import Instr, JUMP_OPS, Op
from ..context import PassContext
from ..ir import CodeBuffer


def _ultimate_target(code, start: int) -> int:
    """Follow a chain of JMPs from *start*; stop on cycles."""
    seen = {start}
    target = start
    while code[target].op == Op.JMP:
        nxt = code[target].arg
        if nxt in seen:
            break
        seen.add(nxt)
        target = nxt
    return target


def jump_threading(buf: CodeBuffer, ctx: PassContext) -> bool:
    changed = False
    code = buf.instrs
    for pc, ins in enumerate(code):
        if ins.op in JUMP_OPS:
            final = _ultimate_target(code, ins.arg)
            if final != ins.arg:
                buf[pc] = Instr(ins.op, final)
                changed = True
    if changed:
        ctx.record("jump_threading", 1)
    return changed
