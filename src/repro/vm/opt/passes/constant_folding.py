"""Constant folding.

Folds constant expressions visible in the stack code:

- ``CONST a; CONST b; <binop>``       →  ``CONST (a op b)``
- ``CONST a; NEG`` / ``CONST a; NOT`` →  ``CONST (-a)`` / ``CONST (!a)``
- ``CONST c; JZ t``                   →  ``JMP t`` (c falsey) or removed
- ``CONST c; JNZ t``                  →  ``JMP t`` (c truthy) or removed

A fold is only legal when the folded instructions are not jump targets
(otherwise an incoming edge would observe a half-evaluated stack). Division
and modulo by zero are left unfolded so the fault still occurs at runtime.
"""

from __future__ import annotations

from ...instructions import Instr, Op
from ..context import PassContext
from ..ir import CodeBuffer

_FOLDERS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.EQ: lambda a, b: 1 if a == b else 0,
    Op.NE: lambda a, b: 1 if a != b else 0,
    Op.LT: lambda a, b: 1 if a < b else 0,
    Op.LE: lambda a, b: 1 if a <= b else 0,
    Op.GT: lambda a, b: 1 if a > b else 0,
    Op.GE: lambda a, b: 1 if a >= b else 0,
}


def _div_like(op: Op, a, b):
    if b == 0:
        return None
    if op == Op.DIV:
        return a // b if isinstance(a, int) and isinstance(b, int) else a / b
    return a % b


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def constant_folding(buf: CodeBuffer, ctx: PassContext) -> bool:
    """Run one folding sweep; returns True if the buffer changed."""
    changed = False
    targets = buf.jump_targets()
    code = buf.instrs
    pc = 0
    while pc < len(code):
        ins = code[pc]
        # Binary fold: needs two preceding CONSTs, none of the three
        # instructions an incoming jump target (except the first is fine).
        if ins.op in _FOLDERS or ins.op in (Op.DIV, Op.MOD):
            if (
                pc >= 2
                and code[pc - 1].op == Op.CONST
                and code[pc - 2].op == Op.CONST
                and pc not in targets
                and (pc - 1) not in targets
                and _is_number(code[pc - 1].arg)
                and _is_number(code[pc - 2].arg)
            ):
                a, b = code[pc - 2].arg, code[pc - 1].arg
                if ins.op in _FOLDERS:
                    value = _FOLDERS[ins.op](a, b)
                else:
                    value = _div_like(ins.op, a, b)
                if value is not None:
                    buf.nop_out(pc - 2)
                    buf.nop_out(pc - 1)
                    buf[pc] = Instr(Op.CONST, value)
                    changed = True
        elif ins.op in (Op.NEG, Op.NOT):
            if (
                pc >= 1
                and code[pc - 1].op == Op.CONST
                and pc not in targets
                and _is_number(code[pc - 1].arg)
            ):
                a = code[pc - 1].arg
                value = -a if ins.op == Op.NEG else (1 if a == 0 else 0)
                buf.nop_out(pc - 1)
                buf[pc] = Instr(Op.CONST, value)
                changed = True
        elif ins.op in (Op.JZ, Op.JNZ):
            if (
                pc >= 1
                and code[pc - 1].op == Op.CONST
                and pc not in targets
                and _is_number(code[pc - 1].arg)
            ):
                cond = code[pc - 1].arg
                taken = (cond == 0) if ins.op == Op.JZ else (cond != 0)
                buf.nop_out(pc - 1)
                if taken:
                    buf[pc] = Instr(Op.JMP, ins.arg)
                else:
                    buf.nop_out(pc)
                changed = True
        pc += 1
    if changed:
        ctx.record("constant_folding", 1)
    return changed
