"""Dead code elimination.

Two independent forms:

1. **Unreachable code**: instructions with no path from the method entry
   (typically produced by constant-folded branches) are removed.
2. **Push/pop cancellation**: a side-effect-free push (``CONST``/``LOAD``/
   ``DUP``) immediately consumed by ``POP`` is removed together with the
   ``POP``, provided no jump lands between them.
"""

from __future__ import annotations

from ...instructions import Op
from ..context import PassContext
from ..ir import CodeBuffer, reachable_pcs


def dead_code_elimination(buf: CodeBuffer, ctx: PassContext) -> bool:
    changed = False

    reachable = reachable_pcs(buf.instrs)
    for pc, ins in enumerate(buf.instrs):
        if pc not in reachable and ins.op != Op.NOP:
            buf.nop_out(pc)
            changed = True

    targets = buf.jump_targets()
    code = buf.instrs
    for pc in range(len(code) - 1):
        a, b = code[pc], code[pc + 1]
        if (
            b.op == Op.POP
            and a.op in (Op.CONST, Op.LOAD, Op.DUP)
            and (pc + 1) not in targets
        ):
            buf.nop_out(pc)
            buf.nop_out(pc + 1)
            changed = True

    if changed:
        ctx.record("dce", 1)
    return changed
