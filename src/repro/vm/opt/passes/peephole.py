"""Peephole simplification and strength reduction.

Window patterns (each only applied when no jump lands mid-pattern):

- ``CONST 0; ADD`` / ``CONST 0; SUB``     → removed (x+0, x−0)
- ``CONST 1; MUL`` / ``CONST 1; DIV``     → removed (x*1, x/1)
- ``CONST 2; MUL``                        → ``DUP; ADD``   (strength red.)
- ``LOAD x; LOAD x``                      → ``LOAD x; DUP``
- ``STORE x; LOAD x``                     → ``DUP; STORE x``
- ``NOT; NOT`` preceding ``JZ``/``JNZ``   → removed (branch reads truthiness)
- ``JMP`` to the immediately next pc      → removed
- ``SWAP; SWAP``                          → removed
"""

from __future__ import annotations

from ...instructions import Instr, Op
from ..context import PassContext
from ..ir import CodeBuffer


def peephole(buf: CodeBuffer, ctx: PassContext) -> bool:
    changed = False
    targets = buf.jump_targets()
    code = buf.instrs
    for pc in range(len(code) - 1):
        a, b = code[pc], code[pc + 1]
        mid_is_target = (pc + 1) in targets
        if mid_is_target:
            continue
        if a.op == Op.CONST and a.arg == 0 and b.op in (Op.ADD, Op.SUB):
            buf.nop_out(pc)
            buf.nop_out(pc + 1)
            changed = True
        elif a.op == Op.CONST and a.arg == 1 and b.op in (Op.MUL, Op.DIV):
            buf.nop_out(pc)
            buf.nop_out(pc + 1)
            changed = True
        elif a.op == Op.CONST and a.arg == 2 and b.op == Op.MUL:
            buf[pc] = Instr(Op.DUP)
            buf[pc + 1] = Instr(Op.ADD)
            changed = True
        elif a.op == Op.LOAD and b.op == Op.LOAD and a.arg == b.arg:
            buf[pc + 1] = Instr(Op.DUP)
            changed = True
        elif a.op == Op.STORE and b.op == Op.LOAD and a.arg == b.arg:
            buf[pc] = Instr(Op.DUP)
            buf[pc + 1] = Instr(Op.STORE, a.arg)
            changed = True
        elif a.op == Op.NOT and b.op == Op.NOT:
            nxt = code[pc + 2] if pc + 2 < len(code) else None
            if (
                nxt is not None
                and nxt.op in (Op.JZ, Op.JNZ)
                and (pc + 2) not in targets
            ):
                buf.nop_out(pc)
                buf.nop_out(pc + 1)
                changed = True
        elif a.op == Op.SWAP and b.op == Op.SWAP:
            buf.nop_out(pc)
            buf.nop_out(pc + 1)
            changed = True
    # JMP-to-next removal is independent of the two-instruction window.
    for pc, ins in enumerate(buf.instrs):
        if ins.op == Op.JMP and ins.arg == pc + 1:
            buf.nop_out(pc)
            changed = True
    if changed:
        ctx.record("peephole", 1)
    return changed
