"""Mutable code buffer used by optimization passes.

Passes work on a :class:`CodeBuffer`: a plain list of instructions plus
helpers to replace instructions with NOPs and later *compact* the buffer —
removing NOPs while remapping all jump targets. Working with NOP
placeholders keeps every pass simple (no index bookkeeping mid-pass) while
compaction guarantees the emitted code carries no dead dispatch cost.
"""

from __future__ import annotations

from ..instructions import Instr, JUMP_OPS, Op


class CodeBuffer:
    """A mutable view of one method's bytecode during optimization."""

    def __init__(self, code: tuple[Instr, ...] | list[Instr]):
        self.instrs: list[Instr] = list(code)

    def __len__(self) -> int:
        return len(self.instrs)

    def __getitem__(self, pc: int) -> Instr:
        return self.instrs[pc]

    def __setitem__(self, pc: int, instr: Instr) -> None:
        self.instrs[pc] = instr

    def nop_out(self, pc: int) -> None:
        """Replace the instruction at *pc* with a NOP placeholder."""
        self.instrs[pc] = Instr(Op.NOP)

    def is_jump_target(self, pc: int) -> bool:
        """True if any jump in the buffer targets *pc*."""
        return any(
            ins.op in JUMP_OPS and ins.arg == pc for ins in self.instrs
        )

    def jump_targets(self) -> set[int]:
        """All pcs that are the target of some jump."""
        return {ins.arg for ins in self.instrs if ins.op in JUMP_OPS}

    def compact(self) -> int:
        """Drop NOPs, remapping jump targets. Returns instructions removed.

        A NOP that is itself a jump target redirects to the next surviving
        instruction (or, if it trails the code, to the final instruction —
        which verification guarantees is reachable only behind a RET in
        well-formed output, so this keeps targets in range).
        """
        old = self.instrs
        keep = [pc for pc, ins in enumerate(old) if ins.op != Op.NOP]
        if len(keep) == len(old):
            return 0
        # new_index[pc] = index in the compacted code of the first surviving
        # instruction at or after pc.
        new_index = [0] * (len(old) + 1)
        j = 0
        for pc in range(len(old)):
            new_index[pc] = j
            if j < len(keep) and keep[j] == pc:
                j += 1
        new_index[len(old)] = len(keep)
        compacted: list[Instr] = []
        for pc in keep:
            ins = old[pc]
            if ins.op in JUMP_OPS:
                target = min(new_index[ins.arg], len(keep) - 1)
                ins = Instr(ins.op, target)
            compacted.append(ins)
        removed = len(old) - len(compacted)
        self.instrs = compacted
        return removed

    def to_code(self) -> tuple[Instr, ...]:
        return tuple(self.instrs)


def basic_block_starts(code: list[Instr]) -> list[int]:
    """Return sorted pcs that begin a basic block (leaders)."""
    leaders = {0}
    for pc, ins in enumerate(code):
        if ins.op in JUMP_OPS:
            leaders.add(ins.arg)
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif ins.op == Op.RET and pc + 1 < len(code):
            leaders.add(pc + 1)
    return sorted(leaders)


def reachable_pcs(code: list[Instr]) -> set[int]:
    """Compute the set of pcs reachable from entry (pc 0)."""
    seen: set[int] = set()
    work = [0]
    n = len(code)
    while work:
        pc = work.pop()
        while pc not in seen and 0 <= pc < n:
            seen.add(pc)
            ins = code[pc]
            op = ins.op
            if op == Op.JMP:
                pc = ins.arg
            elif op in (Op.JZ, Op.JNZ):
                work.append(ins.arg)
                pc += 1
            elif op == Op.RET:
                break
            else:
                pc += 1
    return seen
