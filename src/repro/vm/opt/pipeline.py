"""Tier definitions: which passes run at each optimization level.

Mirrors the Jikes RVM structure: level −1 is the non-optimizing baseline
compiler (straight translation), level 0 a quick pass-free tier, and levels
1 and 2 run increasingly aggressive pass pipelines iterated to a fixpoint.
"""

from __future__ import annotations

from typing import Callable

from ..config import OPT_LEVELS
from ..program import Method, Program
from .context import PassContext
from .ir import CodeBuffer
from .passes import (
    constant_folding,
    dead_code_elimination,
    eliminate_tail_calls,
    inline_calls,
    jump_threading,
    peephole,
)

PassFn = Callable[[CodeBuffer, PassContext], bool]

#: Pass pipeline per optimization level.
TIER_PASSES: dict[int, tuple[PassFn, ...]] = {
    -1: (),
    0: (),
    1: (constant_folding, peephole, dead_code_elimination, jump_threading),
    2: (
        eliminate_tail_calls,
        inline_calls,
        constant_folding,
        peephole,
        dead_code_elimination,
        jump_threading,
    ),
}

#: Safety valve on fixpoint iteration.
MAX_PIPELINE_ROUNDS = 8


def run_pipeline(
    program: Program,
    method: Method,
    level: int,
    passes: tuple[PassFn, ...] | None = None,
) -> tuple[tuple, int, dict[str, int]]:
    """Optimize *method* at *level*.

    Returns ``(code, num_locals, pass_stats)``. Levels −1 and 0 return the
    original code untouched; higher levels iterate their pipeline until no
    pass reports a change (bounded by :data:`MAX_PIPELINE_ROUNDS`), then
    compact NOPs out.

    *passes* overrides the tier's default pipeline — the differential
    fuzzing harness uses this to run each pass in isolation against the
    same program.
    """
    if level not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level}")
    if passes is None:
        passes = TIER_PASSES[level]
    if not passes:
        return method.code, method.num_locals, {}
    buf = CodeBuffer(method.code)
    ctx = PassContext(program=program, method=method, num_locals=method.num_locals)
    for _ in range(MAX_PIPELINE_ROUNDS):
        changed = False
        for pass_fn in passes:
            changed |= pass_fn(buf, ctx)
        buf.compact()
        if not changed:
            break
    return buf.to_code(), ctx.num_locals, ctx.stats
