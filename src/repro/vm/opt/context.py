"""Shared context threaded through optimization passes."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..program import Method, Program


@dataclass
class PassContext:
    """Everything a pass may need beyond the code buffer itself.

    Attributes:
        program: The whole program (inlining resolves callees through it).
        method: The method being compiled.
        num_locals: Mutable local-slot count; inlining grows it.
        inline_size_limit: Max callee size eligible for inlining.
        inline_budget: Max total instructions inlining may add per method.
        stats: Per-pass change counters, for tests and reporting.
    """

    program: Program
    method: Method
    num_locals: int
    inline_size_limit: int = 24
    inline_budget: int = 160
    stats: dict[str, int] = field(default_factory=dict)

    def record(self, pass_name: str, changes: int) -> None:
        if changes:
            self.stats[pass_name] = self.stats.get(pass_name, 0) + changes
