"""Tiered JIT optimizer: IR, passes, pipelines, and the compiler."""

from .context import PassContext
from .ir import CodeBuffer, basic_block_starts, reachable_pcs
from .jit import CompiledCode, JITCompiler, method_optimizability
from .pipeline import MAX_PIPELINE_ROUNDS, TIER_PASSES, run_pipeline

__all__ = [
    "CodeBuffer",
    "CompiledCode",
    "JITCompiler",
    "MAX_PIPELINE_ROUNDS",
    "PassContext",
    "TIER_PASSES",
    "basic_block_starts",
    "method_optimizability",
    "reachable_pcs",
    "run_pipeline",
]
