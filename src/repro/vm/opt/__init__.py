"""Tiered JIT optimizer: IR, passes, pipelines, and the compiler."""

from .artifact_cache import (
    JITArtifactCache,
    artifact_key,
    method_digest,
    program_digest,
)
from .context import PassContext
from .ir import CodeBuffer, basic_block_starts, reachable_pcs
from .jit import CompiledCode, JITCompiler, method_optimizability
from .pipeline import MAX_PIPELINE_ROUNDS, TIER_PASSES, run_pipeline

__all__ = [
    "JITArtifactCache",
    "artifact_key",
    "method_digest",
    "program_digest",
    "CodeBuffer",
    "CompiledCode",
    "JITCompiler",
    "MAX_PIPELINE_ROUNDS",
    "PassContext",
    "TIER_PASSES",
    "basic_block_starts",
    "method_optimizability",
    "reachable_pcs",
    "run_pipeline",
]
