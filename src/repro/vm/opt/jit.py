"""The tiered JIT compiler: code generation, speed model, compile costs.

:class:`JITCompiler` turns a :class:`~repro.vm.program.Method` into
:class:`CompiledCode` at a requested optimization level. Two things make a
higher tier faster:

1. The optimization passes genuinely shrink/simplify the bytecode
   (fewer instructions dispatched).
2. A per-level *dispatch factor* scales every instruction's cycle cost,
   modeling the better native code a real optimizing compiler emits —
   amplified by the method's intrinsic *optimizability* (loopy, arithmetic-
   dense methods gain more from aggressive optimization, as in real JITs).

Compiling costs virtual cycles proportional to method size, with per-level
rates spanning the ~2-orders-of-magnitude range between Jikes' baseline and
level-2 optimizing compilers. These two curves — faster code vs. dearer
compiles — are precisely the economics the paper's predictor learns to
navigate per input.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from ..config import OPT_LEVELS, VMConfig
from ..instructions import Instr
from ..program import Method, Program


def _name_jitter(name: str) -> float:
    """Deterministic per-method jitter in [0, 1) from a stable hash.

    ``zlib.crc32`` is stable across processes (unlike ``hash``), keeping
    whole experiments bit-reproducible.
    """
    return (zlib.crc32(name.encode("utf-8")) % 10_000) / 10_000.0


def method_optimizability(method: Method) -> float:
    """Intrinsic optimizability of *method* in [0.05, 1.0].

    Derived from static code traits — loop density and arithmetic density —
    plus a stable per-name jitter modeling everything the traits miss
    (alias patterns, branch shapes). Loopier and more arithmetic-heavy
    methods respond better to optimization.
    """
    loops = min(method.loop_count(), 4) / 4.0
    arith = method.arithmetic_density()
    base = 0.20 + 0.45 * loops + 0.20 * arith
    jitter = (_name_jitter(method.name) - 0.5) * 0.30
    return max(0.05, min(1.0, base + jitter))


@dataclass(frozen=True)
class CompiledCode:
    """The executable artifact for one method at one optimization level.

    Attributes:
        method_name: Owning method.
        level: Optimization level this code was compiled at.
        code: The (possibly optimized) instruction tuple.
        num_locals: Local slots required (inlining may exceed the source's).
        speed_factor: Multiplier on every instruction's base cycle cost
            (1.0 at baseline; smaller is faster).
        compile_cycles: What compiling this artifact cost.
        pass_stats: Which passes changed the code, for diagnostics.
    """

    method_name: str
    level: int
    code: tuple[Instr, ...]
    num_locals: int
    speed_factor: float
    compile_cycles: float
    pass_stats: dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def size(self) -> int:
        return len(self.code)

    def __getstate__(self):
        # The fast-path engine memoizes its decoded instruction streams on
        # the artifact (repro.vm.fastpath.ensure_decoded), and the compiled
        # tier memoizes its generated closure/source/unsupported-reason
        # (repro.vm.closures.ensure_closure); strip every memo when
        # pickling. Beyond compactness this is load-bearing for the
        # serving fleet: artifacts round-trip through the shared
        # JITArtifactCache across hot model swaps, and a pickled closure
        # would either fail to serialize or resurrect stale generated
        # code after a cache invalidation. Source is re-derived (and
        # separately cached) from the artifact itself.
        state = dict(self.__dict__)
        state.pop("_decoded", None)
        state.pop("_closure", None)
        state.pop("_closure_src", None)
        state.pop("_closure_unsupported", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class JITCompiler:
    """Compiles methods of one program under one cost configuration.

    *tier_passes* optionally overrides the default per-level pass
    pipelines (levels absent from the mapping keep their defaults). The
    differential fuzzing harness uses this to compile the same program
    under single-pass configurations.

    *artifact_cache* optionally plugs in a cross-run
    :class:`~repro.vm.opt.artifact_cache.JITArtifactCache`: artifacts are
    looked up there (keyed by method/program digests, level, config, and
    pass pipeline) before compiling, and published there after. Virtual
    compile cycles are charged identically on hit and miss — the cache
    only saves host wall-clock.
    """

    def __init__(
        self,
        program: Program,
        config: VMConfig,
        tier_passes: dict[int, tuple] | None = None,
        artifact_cache=None,
    ):
        self.program = program
        self.config = config
        self.tier_passes = tier_passes
        self.artifact_cache = artifact_cache
        self._cache: dict[tuple[str, int], CompiledCode] = {}
        self._optimizability: dict[str, float] = {}
        self._program_digest: str | None = None
        self._method_digests: dict[str, str] = {}
        self._config_digest: str | None = None

    def optimizability(self, method_name: str) -> float:
        value = self._optimizability.get(method_name)
        if value is None:
            value = method_optimizability(self.program.method(method_name))
            self._optimizability[method_name] = value
        return value

    def speed_factor(self, method_name: str, level: int) -> float:
        """Cycle-cost multiplier for *method_name* compiled at *level*."""
        if level == -1:
            return 1.0
        dispatch = self.config.dispatch_factor[level]
        gain = self.config.opt_gain[level] * self.optimizability(method_name)
        return dispatch * max(0.25, 1.0 - gain)

    def compile_cost(self, method_name: str, level: int) -> float:
        """Virtual cycles charged to compile *method_name* at *level*."""
        size = self.program.method(method_name).size
        return self.config.compile_rate[level] * size

    def _artifact_key(self, method_name: str, level: int) -> str:
        """Cross-run cache key for *method_name* at *level* (see
        :mod:`repro.vm.opt.artifact_cache` for the soundness argument)."""
        from .artifact_cache import artifact_key, method_digest, program_digest
        from .pipeline import TIER_PASSES

        pdigest = self._program_digest
        if pdigest is None:
            pdigest = self._program_digest = program_digest(self.program)
        mdigest = self._method_digests.get(method_name)
        if mdigest is None:
            mdigest = method_digest(self.program.method(method_name))
            self._method_digests[method_name] = mdigest
        cdigest = self._config_digest
        if cdigest is None:
            import hashlib

            cdigest = hashlib.sha256(
                repr(self.config).encode("utf-8")
            ).hexdigest()
            self._config_digest = cdigest
        passes = (
            self.tier_passes.get(level) if self.tier_passes is not None else None
        )
        if passes is None:
            passes = TIER_PASSES[level]
        pass_names = tuple(p.__name__ for p in passes)
        return artifact_key(mdigest, pdigest, level, cdigest, pass_names)

    def compile(self, method_name: str, level: int) -> CompiledCode:
        """Compile (with caching — compiled code is immutable) and return."""
        if level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {level}")
        key = (method_name, level)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        akey = None
        if self.artifact_cache is not None:
            akey = self._artifact_key(method_name, level)
            artifact = self.artifact_cache.get(akey)
            if artifact is not None:
                self._cache[key] = artifact
                return artifact
        from .pipeline import run_pipeline

        method = self.program.method(method_name)
        passes = (
            self.tier_passes.get(level) if self.tier_passes is not None else None
        )
        code, num_locals, stats = run_pipeline(
            self.program, method, level, passes=passes
        )
        compiled = CompiledCode(
            method_name=method_name,
            level=level,
            code=code,
            num_locals=num_locals,
            speed_factor=self.speed_factor(method_name, level),
            compile_cycles=self.compile_cost(method_name, level),
            pass_stats=stats,
        )
        self._cache[key] = compiled
        if self.artifact_cache is not None:
            self.artifact_cache.put(akey, compiled)
        return compiled
