"""Template emitter: bytecode → one generated Python function per method.

This is the codegen half of the closure-compiled execution tier (see
:mod:`repro.vm.closures` for the runtime half). Given one
:class:`~repro.vm.opt.jit.CompiledCode` artifact it emits the source of a
single Python function that executes the method natively:

- VM locals become real Python locals (``l0``, ``l1``, ...);
- operand-stack slots become Python temporaries (``t0``, ``t1``, ...) —
  the verifier proves every pc is reached at one static depth, so each
  slot has a fixed name and the generated code never touches a list;
- straight-line bytecode becomes straight-line Python;
- back-edges become ``while True:`` loops with ``continue``/``break``;
- virtual-clock accounting is batched per basic block into the exact
  left-associative addition chains the reference loop performs
  instruction by instruction (``clock = clock + c0 + c1 + ...``), with
  per-instruction costs embedded as ``repr``-round-tripped float
  literals — bit-identical to ``cost = work * speed`` at runtime.

Exactness rules the emitter obeys (the same arguments as
:mod:`repro.vm.fastpath`, taken further):

1. **Accounting chains.** ``clock += a; clock += b`` is the same float
   computation as ``clock = clock + a + b`` (left-associative, same
   operand order). Chains never re-associate and never pre-fold partial
   sums — CPython's peephole only folds *adjacent literal pairs*, which
   ``clock + 1.0 + 2.0`` does not contain.
2. **Sampler ticks.** With no listeners attached (a run-level capability
   requirement), ``Sampler.advance`` batches arbitrarily many crossed
   ticks under one method name. Ticks therefore only need a check at
   *method transitions* — before a CALL dispatch (caller name), at
   callee entry after the CALL cost (callee name, done by the runtime
   dispatcher), after a call returns (caller name), and before the RET
   cost (callee name) — everywhere else attribution is unchanged by
   batching.
3. **Effect order.** Semantic operations are emitted strictly in
   bytecode order; only pure accounting is deferred. A raising
   instruction therefore observes exactly the prints/heap effects the
   reference produced, which is all the engine-equivalence oracle
   compares on fault paths.
4. **Fuel.** A soft-limit guard (``executed >= vm.fuel - margin`` with
   ``margin = len(code) + 2``) at function entry, every back-edge, and
   after every call return proves no instruction with ordinal > fuel
   ever executes compiled; budget-critical runs raise the internal
   bailout and replay on the fast engine, which is per-instruction
   exact.

Shapes the emitter cannot structure (irreducible control flow,
cross-loop jumps, non-innermost breaks — none of which the MiniLang
compiler or the optimization passes currently produce) raise
:class:`UnsupportedShape`; the runtime falls back to the fast engine.
"""

from __future__ import annotations

import re

from .errors import VerificationError
from .instructions import BASE_COST, Op
from .verifier import stack_depths

#: Bump when the shape of generated source changes; part of the source
#: cache key so stale generated code can never be resurrected.
CLOSURE_SCHEMA_VERSION = 1

_JUMPS = (Op.JMP, Op.JZ, Op.JNZ)
_CMP_EXPR = {
    Op.LT: "<", Op.LE: "<=", Op.GT: ">", Op.GE: ">=", Op.EQ: "==", Op.NE: "!=",
}
_ARITH_EXPR = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*"}


class UnsupportedShape(Exception):
    """The method's control flow cannot be structured into Python."""


def closure_name(method_name: str) -> str:
    return "_cc_" + re.sub(r"[^0-9A-Za-z_]", "_", method_name)


def intrinsic_names(code) -> tuple[str, ...]:
    """Every intrinsic the generated source references (``_in_<name>``)."""
    seen: list[str] = []
    for ins in code:
        if ins.op == Op.INTRIN:
            name = ins.arg[0]
            if name not in seen:
                seen.append(name)
    return tuple(seen)


class _Emitter:
    def __init__(self, name, code, num_params, num_locals, speed):
        self.name = name
        self.code = code
        self.num_params = num_params
        self.num_locals = num_locals
        self.speed = speed
        self.lines: list[str] = []
        self.indent = 2
        # Pending per-block accounting: cost terms (strings), work terms,
        # and the instruction count since the last flush.
        self.costs: list[str] = []
        self.works: list[str] = []
        self.count = 0
        self.scratch = 0
        self.loop_stack: list[tuple[int, int]] = []  # (header, exit)
        try:
            self.depths = stack_depths(code, name)
        except VerificationError as exc:
            raise UnsupportedShape(str(exc)) from exc
        self.jump_targets = {
            ins.arg for ins in code if ins.op in _JUMPS
        }
        self._analyze_loops()

    # -- loop analysis ----------------------------------------------------
    def _analyze_loops(self):
        headers: dict[int, int] = {}
        for pc, ins in enumerate(self.code):
            if ins.op in _JUMPS and isinstance(ins.arg, int) and ins.arg <= pc:
                target = ins.arg
                headers[target] = max(headers.get(target, target), pc)
        self.headers = headers
        spans = sorted((h, latch) for h, latch in headers.items())
        for i, (h1, l1) in enumerate(spans):
            for h2, l2 in spans[i + 1:]:
                if h2 <= l1 and l2 > l1:  # overlap without nesting
                    raise UnsupportedShape(
                        f"{self.name}: overlapping loops [{h1},{l1}] "
                        f"and [{h2},{l2}]"
                    )
        # No jump from outside a loop may land inside it (other than at
        # the header): that would be irreducible control flow.
        for pc, ins in enumerate(self.code):
            if ins.op not in _JUMPS:
                continue
            t = ins.arg
            for h, latch in headers.items():
                if h < t <= latch and not (h <= pc <= latch):
                    raise UnsupportedShape(
                        f"{self.name}: jump from {pc} into loop body "
                        f"({h},{latch}]"
                    )

    # -- low-level helpers ------------------------------------------------
    def line(self, text: str):
        self.lines.append(" " * (4 * self.indent) + text)

    def add_cost(self, work: int):
        self.costs.append(repr(work * self.speed))
        self.works.append(repr(work))
        self.count += 1

    def flush(self):
        if not self.count:
            return
        chain = " + ".join(self.costs)
        self.line(f"clock = clock + {chain}")
        self.line(f"mcycles = mcycles + {chain}")
        self.line(f"mwork = mwork + {' + '.join(self.works)}")
        self.line(f"executed = executed + {self.count}")
        self.costs = []
        self.works = []
        self.count = 0

    def tick_check(self):
        self.line("if clock >= _sampler._next_tick:")
        self.line(f"    _adv(clock, {self.name!r})")

    def fuel_guard(self):
        self.line("if executed >= _fs:")
        self.line("    raise _BAIL")

    def _next_scratch(self) -> str:
        self.scratch += 1
        return f"_w{self.scratch}"

    # -- structured emission ----------------------------------------------
    def emit_function(self) -> str:
        params = ", ".join(f"l{i}" for i in range(self.num_params))
        header = f"def {closure_name(self.name)}(vm, clock, executed"
        if params:
            header += ", " + params
        header += "):"
        prologue = [
            header,
            "    _mc = vm.mc",
            "    _mw = vm.mw",
            "    _sampler = vm.sampler",
            "    _adv = vm.adv",
            "    _ctx = vm.ctx",
            f"    _fs = vm.fuel - {len(self.code) + 2}",
            "    if executed >= _fs:",
            "        raise _BAIL",
        ]
        uninit = [f"l{i}" for i in range(self.num_params, self.num_locals)]
        if uninit:
            prologue.append("    " + " = ".join(uninit) + " = 0")
        prologue.extend(
            [
                f"    mcycles = _mc.get({self.name!r}, 0.0)",
                f"    mwork = _mw.get({self.name!r}, 0.0)",
                "    try:",
            ]
        )
        self.emit_seq(0, len(self.code))
        self.flush()
        epilogue = [
            "    except (_EE, _BAIL):",
            "        raise",
            "    except (TypeError, ValueError, IndexError, "
            "ZeroDivisionError, KeyError) as _exc:",
            f"        raise _EE('runtime fault: ' + str(_exc), "
            f"method={self.name!r}) from _exc",
        ]
        return "\n".join(prologue + self.lines + epilogue) + "\n"

    def emit_seq(self, lo: int, hi: int, skip_header_at: int = -1):
        emitted = len(self.lines)
        pc = lo
        terminal = False
        while pc < hi:
            if pc not in self.depths:
                pc += 1
                continue
            if terminal:
                # Code after an unconditional exit that is still
                # reachable means a join the structurizer didn't place.
                raise UnsupportedShape(
                    f"{self.name}: reachable code at {pc} after terminal"
                )
            if pc in self.headers and pc != skip_header_at:
                latch = self.headers[pc]
                if latch + 1 > hi:
                    raise UnsupportedShape(
                        f"{self.name}: loop [{pc},{latch}] exceeds range"
                    )
                self.flush()
                self.line("while True:")
                self.indent += 1
                self.loop_stack.append((pc, latch + 1))
                self.emit_seq(pc, latch + 1, skip_header_at=pc)
                self.flush()
                self.loop_stack.pop()
                self.line("break")
                self.indent -= 1
                pc = latch + 1
                continue
            pc, terminal = self.emit_instr(pc, hi)
        if len(self.lines) == emitted:
            self.line("pass")

    # -- branch helpers ---------------------------------------------------
    def _loop_ctx(self):
        return self.loop_stack[-1] if self.loop_stack else (None, None)

    def emit_continue(self):
        self.flush()
        self.fuel_guard()
        self.line("continue")

    def emit_branch(self, op, target, cond, pc, hi):
        """One conditional jump: *cond* is a Python expression string that
        is truthy exactly when the reference would NOT take a JZ (i.e.
        the popped value is truthy). Returns the next pc to emit."""
        header, loop_exit = self._loop_ctx()
        # Normalize to "jump taken when `taken` is truthy".
        taken = f"not ({cond})" if op == Op.JZ else cond
        fall = cond if op == Op.JZ else f"not ({cond})"
        if target == header:
            self.flush()
            self.line(f"if {taken}:")
            self.indent += 1
            self.fuel_guard()
            self.line("continue")
            self.indent -= 1
            return pc
        if target == loop_exit:
            self.flush()
            self.line(f"if {taken}:")
            self.line("    break")
            return pc
        if target <= pc:
            raise UnsupportedShape(
                f"{self.name}: backward jump at {pc} to non-header {target}"
            )
        if target > hi:
            raise UnsupportedShape(
                f"{self.name}: jump at {pc} escapes range ({target} > {hi})"
            )
        # Forward: if/else diamond when the fall-through arm ends with a
        # forward JMP over the jump arm; plain `if` otherwise.
        join = target - 1
        code = self.code
        if (
            join > pc
            and join in self.depths
            and code[join].op == Op.JMP
            and code[join].arg > join
            and target <= code[join].arg <= hi
        ):
            out = code[join].arg
            self.flush()
            self.line(f"if {fall}:")
            self.indent += 1
            self.emit_seq(pc, join)
            self.add_cost(BASE_COST[Op.JMP])
            self.flush()
            self.indent -= 1
            self.line("else:")
            self.indent += 1
            self.emit_seq(target, out)
            self.flush()
            self.indent -= 1
            return out
        self.flush()
        self.line(f"if {fall}:")
        self.indent += 1
        self.emit_seq(pc, target)
        self.flush()
        self.indent -= 1
        return target

    # -- per-instruction emission -----------------------------------------
    def emit_instr(self, pc: int, hi: int) -> tuple[int, bool]:
        """Emit the instruction at *pc*; returns (next_pc, terminal)."""
        code = self.code
        ins = code[pc]
        op = ins.op
        d = self.depths[pc]
        t = lambda i: f"t{i}"  # noqa: E731
        name = self.name

        if op in _CMP_EXPR:
            # Fuse cmp;JZ / cmp;JNZ into one `if` when the branch is the
            # unique consumer (nobody jumps between them).
            nxt = pc + 1
            if (
                nxt < len(code)
                and code[nxt].op in (Op.JZ, Op.JNZ)
                and nxt not in self.jump_targets
            ):
                cond = f"{t(d - 2)} {_CMP_EXPR[op]} {t(d - 1)}"
                self.add_cost(BASE_COST[op])
                self.add_cost(BASE_COST[code[nxt].op])
                nxt_pc = self.emit_branch(
                    code[nxt].op, code[nxt].arg, cond, nxt + 1, hi
                )
                return nxt_pc, False
            self.line(
                f"{t(d - 2)} = 1 if {t(d - 2)} {_CMP_EXPR[op]} {t(d - 1)} "
                f"else 0"
            )
            self.add_cost(BASE_COST[op])
            return pc + 1, False

        if op in (Op.JZ, Op.JNZ):
            self.add_cost(BASE_COST[op])
            nxt_pc = self.emit_branch(op, ins.arg, t(d - 1), pc + 1, hi)
            return nxt_pc, False

        if op == Op.JMP:
            self.add_cost(BASE_COST[op])
            header, loop_exit = self._loop_ctx()
            if ins.arg == header:
                self.emit_continue()
                return pc + 1, True
            if ins.arg == loop_exit:
                self.flush()
                self.line("break")
                return pc + 1, True
            if ins.arg > pc:
                # Jump-threading residue: only valid when the skipped
                # range is dead (nothing else jumps into it).
                for skipped in range(pc + 1, min(ins.arg, hi)):
                    if skipped in self.depths:
                        raise UnsupportedShape(
                            f"{name}: forward JMP at {pc} over live code"
                        )
                if ins.arg > hi:
                    raise UnsupportedShape(
                        f"{name}: JMP at {pc} escapes range"
                    )
                return ins.arg, False
            raise UnsupportedShape(
                f"{name}: JMP at {pc} to unstructured target {ins.arg}"
            )

        if op == Op.RET:
            self.flush()
            self.tick_check()
            ret_cost = repr(BASE_COST[Op.RET] * self.speed)
            self.line(f"clock = clock + {ret_cost}")
            self.line(f"_mc[{name!r}] = mcycles + {ret_cost}")
            self.line(f"_mw[{name!r}] = mwork + {BASE_COST[Op.RET]}")
            self.line("executed = executed + 1")
            self.line(f"return {t(d - 1)}, clock, executed")
            return pc + 1, True

        if op == Op.CALL:
            callee, argc = ins.arg
            args = ", ".join(t(d - argc + i) for i in range(argc))
            tup = f"({args},)" if argc else "()"
            self.flush()
            self.line(f"_mc[{name!r}] = mcycles")
            self.line(f"_mw[{name!r}] = mwork")
            self.tick_check()
            self.line(
                f"{t(d - argc)}, clock, executed = "
                f"_invoke(vm, {callee!r}, {tup}, clock, executed)"
            )
            self.line(f"mcycles = _mc[{name!r}]")
            self.line(f"mwork = _mw[{name!r}]")
            self.tick_check()
            self.fuel_guard()
            return pc + 1, False

        if op == Op.INTRIN:
            intr, argc = ins.arg
            args = ", ".join(t(d - argc + i) for i in range(argc))
            tup = f"({args},)" if argc else "()"
            safe = re.sub(r"[^0-9A-Za-z_]", "_", intr)
            self.line(f"{t(d - argc)} = _in_{safe}(_ctx, {tup})")
            w = self._next_scratch()
            self.line(f"{w} = {BASE_COST[Op.INTRIN]}")
            self.line("if _ctx.burned:")
            self.line(f"    {w} = {w} + _ctx.burned")
            self.line("    _ctx.burned = 0.0")
            self.line("if _ctx.gc_cycles:")
            self.line(f"    {w} = {w} + _ctx.gc_cycles / {self.speed!r}")
            self.line("    _ctx.gc_cycles = 0.0")
            self.costs.append(f"{w} * {self.speed!r}")
            self.works.append(w)
            self.count += 1
            return pc + 1, False

        if op == Op.DIV:
            self.line(f"if {t(d - 1)} == 0:")
            self.line(
                f"    raise _EE('division by zero', method={name!r}, pc={pc})"
            )
            self.line(
                f"{t(d - 2)} = {t(d - 2)} // {t(d - 1)} "
                f"if isinstance({t(d - 2)}, int) and "
                f"isinstance({t(d - 1)}, int) else {t(d - 2)} / {t(d - 1)}"
            )
        elif op == Op.MOD:
            self.line(f"if {t(d - 1)} == 0:")
            self.line(
                f"    raise _EE('modulo by zero', method={name!r}, pc={pc})"
            )
            self.line(f"{t(d - 2)} = {t(d - 2)} % {t(d - 1)}")
        elif op == Op.NEWARR:
            self.line(
                f"if not isinstance({t(d - 1)}, int) or {t(d - 1)} < 0:"
            )
            self.line(
                f"    raise _EE('NEWARR size must be a non-negative int, "
                f"got %r' % ({t(d - 1)},), method={name!r}, pc={pc})"
            )
            self.line(f"{t(d - 1)} = [0] * {t(d - 1)}")
        elif op == Op.CONST:
            self.line(f"{t(d)} = {ins.arg!r}")
        elif op == Op.LOAD:
            self.line(f"{t(d)} = l{ins.arg}")
        elif op == Op.STORE:
            self.line(f"l{ins.arg} = {t(d - 1)}")
        elif op in _ARITH_EXPR:
            self.line(
                f"{t(d - 2)} = {t(d - 2)} {_ARITH_EXPR[op]} {t(d - 1)}"
            )
        elif op == Op.NEG:
            self.line(f"{t(d - 1)} = -{t(d - 1)}")
        elif op == Op.NOT:
            self.line(f"{t(d - 1)} = 1 if {t(d - 1)} == 0 else 0")
        elif op == Op.DUP:
            self.line(f"{t(d)} = {t(d - 1)}")
        elif op == Op.POP:
            pass
        elif op == Op.SWAP:
            self.line(
                f"{t(d - 1)}, {t(d - 2)} = {t(d - 2)}, {t(d - 1)}"
            )
        elif op == Op.ALOAD:
            self.line(f"{t(d - 2)} = {t(d - 2)}[{t(d - 1)}]")
        elif op == Op.ASTORE:
            self.line(f"{t(d - 3)}[{t(d - 2)}] = {t(d - 1)}")
        elif op == Op.ALEN:
            self.line(f"{t(d - 1)} = len({t(d - 1)})")
        elif op == Op.NOP:
            pass
        else:
            raise UnsupportedShape(f"{name}: unsupported opcode {op!r}")
        self.add_cost(BASE_COST[op])
        return pc + 1, False


def emit_closure_source(
    method_name: str,
    code,
    num_params: int,
    num_locals: int,
    speed_factor: float,
) -> str:
    """Generate the Python source of one method's compiled closure.

    Raises :class:`UnsupportedShape` when the control flow cannot be
    structured; callers fall back to the fast engine.
    """
    emitter = _Emitter(method_name, code, num_params, num_locals, speed_factor)
    return emitter.emit_function()
