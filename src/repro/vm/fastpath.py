"""Fast-path execution engine: pre-decoded streams and fused dispatch.

This module is the wall-clock-optimized twin of
:meth:`repro.vm.interpreter.Interpreter._loop`. It executes the *same*
virtual-cycle semantics — every clock value, sample count, compile event,
method-cycle account, and fuel decision is bit-identical to the reference
loop — but dispatches through pre-decoded instruction streams instead of
re-inspecting :class:`~repro.vm.instructions.Instr` objects on every
iteration. Three mechanisms carry the speedup:

1. **Pre-decoded streams.** At first execution of a
   :class:`~repro.vm.opt.jit.CompiledCode` artifact, :func:`decode` lowers
   the instruction tuple into flat parallel lists: an int handler index and
   a raw operand per pc. The hot loop then never touches ``Instr``
   attributes, never hashes an enum, and never looks up ``BASE_COST``
   (base costs are bound to locals once per run).

2. **Superinstruction fusion.** The decoder recognizes the hottest
   instruction patterns emitted by the MiniLang compiler and the peephole
   pass — loop guards (``LOAD;LOAD;cmp;JZ``), strided updates
   (``LOAD;CONST;arith;STORE``), operand pushes (``LOAD;LOAD``,
   ``LOAD;CONST``), strength-reduced doubling (``DUP;ADD``) and compare-
   branches (``cmp;JZ``/``cmp;JNZ``) — and emits one fused handler per
   occurrence. Fusion exists **only in the decoded stream**: the decoded
   arrays stay index-aligned with ``CompiledCode.code``, every slot also
   keeps its standalone decoding, and a jump into the middle of a fused
   window simply executes the standalone form. ``CompiledCode.code``,
   the passes, and the disassembler are untouched.

3. **Batched clock/sampler bookkeeping.** Within a fused unit the clock,
   per-method cycle accounts, and the sampler tick check advance once per
   unit instead of once per instruction. The exactness argument (spelled
   out in ``docs/performance.md``, and enforced by
   ``tests/test_engine_equivalence.py``): a fused unit is a straight-line
   single-method segment, Python's left-associative ``a + c1 + c2``
   reproduces the reference's sequential float additions bit-for-bit, the
   sampler attributes every tick crossed inside the segment to the same
   method either way, and ``_next_tick`` advances by repeated addition in
   both engines. Because a sample *listener* could observably act between
   two instructions of a unit (request a recompile that changes the speed
   factor mid-segment), fusion is only enabled when
   ``Sampler.has_listeners`` is false; with listeners attached the fast
   engine runs the unfused decoded stream with per-instruction checks,
   which is exact unconditionally. Fuel exhaustion stays exact through a
   soft limit: within ``FUEL_MARGIN`` instructions of the budget the loop
   drops to the unfused stream, so the reference's per-instruction fuel
   check decides the final instructions.
"""

from __future__ import annotations

from .errors import ExecutionError, FuelExhaustedError, StackOverflowError
from .instructions import BASE_COST, Op
from .intrinsics import lookup as lookup_intrinsic

# -- handler indices ----------------------------------------------------------
# Standalone handlers reuse the int opcode (0..29). Fused handlers extend the
# space from FUSED_BASE up; anything >= FUSED_BASE only ever appears in the
# fused stream.
FUSED_BASE = 30

F_LL_CMP_JZ = 30   # LOAD a; LOAD b; cmp; JZ t        — loop guard
F_LC_CMP_JZ = 31   # LOAD a; CONST k; cmp; JZ t
F_LC_ARITH_S = 32  # LOAD a; CONST k; arith; STORE d  — strided update
F_LL_ARITH_S = 33  # LOAD a; LOAD b; arith; STORE d
F_LC_ARITH = 34    # LOAD a; CONST k; arith
F_LL_ARITH = 35    # LOAD a; LOAD b; arith
F_LL = 36          # LOAD a; LOAD b
F_LC = 37          # LOAD a; CONST k
F_C_ARITH = 38     # CONST k; arith
F_ARITH_S = 39     # arith; STORE d
F_CMP_JZ = 40      # cmp; JZ t
F_CMP_JNZ = 41     # cmp; JNZ t
F_DUP_ADD = 42     # DUP; ADD                          — peephole's 2*x

#: Longest fused unit, in original instructions. The fuel soft limit backs
#: off by twice this much so no fused unit can straddle the budget.
MAX_UNIT = 4
FUEL_MARGIN = 2 * MAX_UNIT

#: Arithmetic opcodes eligible for fusion (cannot raise on valid operands
#: beyond the TypeErrors the reference loop also surfaces as runtime faults).
_FUSABLE_ARITH = (int(Op.ADD), int(Op.SUB), int(Op.MUL))
_CMP_OPS = (
    int(Op.EQ), int(Op.NE), int(Op.LT), int(Op.LE), int(Op.GT), int(Op.GE)
)

_LOAD = int(Op.LOAD)
_CONST = int(Op.CONST)
_STORE = int(Op.STORE)
_DUP = int(Op.DUP)
_ADD = int(Op.ADD)
_JZ = int(Op.JZ)
_JNZ = int(Op.JNZ)


def decode(code: tuple) -> tuple[list, list, list, list]:
    """Lower an instruction tuple into ``(fops, fargs, pops, pargs)``.

    All four lists are index-aligned with *code*. ``pops``/``pargs`` hold
    the standalone decoding (int opcode + raw operand) of every slot;
    ``fops``/``fargs`` overlay fused handlers where a pattern matches,
    packing the whole window's operands into one tuple. Windows may
    overlap: each slot is decoded independently as "what to execute if
    control arrives here", so a branch into the middle of someone else's
    window lands on a perfectly valid standalone (or fused) decoding.
    """
    n = len(code)
    pops = [int(ins.op) for ins in code]
    pargs = [ins.arg for ins in code]
    fops = list(pops)
    fargs = list(pargs)
    for pc in range(n):
        o0 = pops[pc]
        # -- quads --------------------------------------------------------
        if pc + 3 < n and o0 == _LOAD:
            o1, o2, o3 = pops[pc + 1], pops[pc + 2], pops[pc + 3]
            if o2 in _CMP_OPS and o3 == _JZ:
                if o1 == _LOAD:
                    fops[pc] = F_LL_CMP_JZ
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2, pargs[pc + 3])
                    continue
                if o1 == _CONST:
                    fops[pc] = F_LC_CMP_JZ
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2, pargs[pc + 3])
                    continue
            if o2 in _FUSABLE_ARITH and o3 == _STORE:
                if o1 == _CONST:
                    fops[pc] = F_LC_ARITH_S
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2, pargs[pc + 3])
                    continue
                if o1 == _LOAD:
                    fops[pc] = F_LL_ARITH_S
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2, pargs[pc + 3])
                    continue
        # -- triples ------------------------------------------------------
        if pc + 2 < n and o0 == _LOAD:
            o1, o2 = pops[pc + 1], pops[pc + 2]
            if o2 in _FUSABLE_ARITH:
                if o1 == _CONST:
                    fops[pc] = F_LC_ARITH
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2)
                    continue
                if o1 == _LOAD:
                    fops[pc] = F_LL_ARITH
                    fargs[pc] = (pargs[pc], pargs[pc + 1], o2)
                    continue
        # -- pairs --------------------------------------------------------
        if pc + 1 < n:
            o1 = pops[pc + 1]
            if o0 == _LOAD:
                if o1 == _LOAD:
                    fops[pc] = F_LL
                    fargs[pc] = (pargs[pc], pargs[pc + 1])
                    continue
                if o1 == _CONST:
                    fops[pc] = F_LC
                    fargs[pc] = (pargs[pc], pargs[pc + 1])
                    continue
            elif o0 == _CONST and o1 in _FUSABLE_ARITH:
                fops[pc] = F_C_ARITH
                fargs[pc] = (pargs[pc], o1)
                continue
            elif o0 in _FUSABLE_ARITH and o1 == _STORE:
                fops[pc] = F_ARITH_S
                fargs[pc] = (o0, pargs[pc + 1])
                continue
            elif o0 in _CMP_OPS and o1 == _JZ:
                fops[pc] = F_CMP_JZ
                fargs[pc] = (o0, pargs[pc + 1])
                continue
            elif o0 in _CMP_OPS and o1 == _JNZ:
                fops[pc] = F_CMP_JNZ
                fargs[pc] = (o0, pargs[pc + 1])
                continue
            elif o0 == _DUP and o1 == _ADD:
                fops[pc] = F_DUP_ADD
                continue
    return fops, fargs, pops, pargs


def ensure_decoded(compiled) -> tuple[list, list, list, list]:
    """Decoded streams for *compiled*, computed once and memoized on the
    artifact itself (artifacts are immutable and shared across runs, so
    the decode cost amortizes over a whole sweep). The memo lives outside
    the dataclass fields and is stripped before pickling."""
    d = compiled.__dict__.get("_decoded")
    if d is None:
        d = decode(compiled.code)
        object.__setattr__(compiled, "_decoded", d)
    return d


class FastFrame:
    """Activation record of the fast engine: decoded streams + locals."""

    __slots__ = (
        "fops", "fargs", "pops", "pargs", "pc", "locals", "stack", "name",
        "speed",
    )

    def __init__(self, compiled, args: list):
        self.fops, self.fargs, self.pops, self.pargs = ensure_decoded(compiled)
        self.pc = 0
        self.locals = args + [0] * (compiled.num_locals - len(args))
        self.stack: list = []
        self.name = compiled.method_name
        self.speed = compiled.speed_factor


def run_fast(interp):
    """Execute *interp*'s frame stack to completion on the fast engine.

    Drop-in replacement for ``Interpreter._loop`` — same entry contract
    (one frame pushed, clocks live on the interpreter) and bit-identical
    observable behavior; see the module docstring for the argument.
    """
    config = interp.config
    sampler = interp.sampler
    interval_tick = sampler.next_tick
    method_cycles = interp.profile.method_cycles
    method_work = interp.profile.method_work
    intrinsic_ctx = interp.intrinsic_ctx
    frames = interp._frames
    recompile_queue = interp._recompile_queue
    max_depth = config.max_call_depth
    fuel = config.max_instructions
    clock = interp.clock
    executed = 0

    # Base costs, bound once (BASE_COST is a flat list indexed by opcode).
    base_cost = BASE_COST
    w_const = base_cost[0]
    w_load = base_cost[4]
    w_store = base_cost[5]
    w_add = base_cost[6]
    w_mul = base_cost[8]
    w_cmp = base_cost[13]
    w_jmp = base_cost[19]
    w_jz = base_cost[20]
    w_call = base_cost[22]
    w_ret = base_cost[23]

    # Fusion is exact only when nothing can observably act between two
    # instructions of a unit; sample listeners can (they may change the
    # frame's speed factor mid-segment via a recompile).
    fused_on = not sampler.has_listeners
    fuel_soft = fuel - FUEL_MARGIN
    if fuel_soft <= 0:
        fused_on = False
        fuel_soft = fuel

    frame = frames[-1]
    ops = frame.fops if fused_on else frame.pops
    argv = frame.fargs if fused_on else frame.pargs
    pc = frame.pc
    stack = frame.stack
    locals_ = frame.locals
    speed = frame.speed
    s2 = 2 * speed
    s3 = 3 * speed
    name = frame.name
    mcycles = method_cycles.get(name, 0.0)
    mwork = method_work.get(name, 0.0)

    while True:
        op = ops[pc]

        if op >= 30:
            # ---- fused superinstructions --------------------------------
            # Each arm performs the window's semantics, then accumulates
            # clock/mcycles/mwork with the exact left-associative chains
            # the reference performs instruction by instruction.
            if op == F_LL_CMP_JZ:
                a, b, c, t = argv[pc]
                x = locals_[a]
                y = locals_[b]
                if c == 15:
                    taken = not (x < y)
                elif c == 16:
                    taken = not (x <= y)
                elif c == 17:
                    taken = not (x > y)
                elif c == 18:
                    taken = not (x >= y)
                elif c == 13:
                    taken = not (x == y)
                else:
                    taken = not (x != y)
                pc = t if taken else pc + 4
                executed += 4
                clock = clock + speed + speed + s2 + s2
                mcycles = mcycles + speed + speed + s2 + s2
                mwork = mwork + w_load + w_load + w_cmp + w_jz
            elif op == F_LC_ARITH_S:
                a, k, ar, d = argv[pc]
                x = locals_[a]
                if ar == 6:
                    locals_[d] = x + k
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    locals_[d] = x - k
                    wa = w_add
                    sa = s2
                else:
                    locals_[d] = x * k
                    wa = w_mul
                    sa = s3
                pc += 4
                executed += 4
                clock = clock + speed + speed + sa + speed
                mcycles = mcycles + speed + speed + sa + speed
                mwork = mwork + w_load + w_const + wa + w_store
            elif op == F_LL:
                a, b = argv[pc]
                stack.append(locals_[a])
                stack.append(locals_[b])
                pc += 2
                executed += 2
                clock = clock + speed + speed
                mcycles = mcycles + speed + speed
                mwork = mwork + w_load + w_load
            elif op == F_C_ARITH:
                k, ar = argv[pc]
                if ar == 6:
                    stack[-1] = stack[-1] + k
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    stack[-1] = stack[-1] - k
                    wa = w_add
                    sa = s2
                else:
                    stack[-1] = stack[-1] * k
                    wa = w_mul
                    sa = s3
                pc += 2
                executed += 2
                clock = clock + speed + sa
                mcycles = mcycles + speed + sa
                mwork = mwork + w_const + wa
            elif op == F_ARITH_S:
                ar, d = argv[pc]
                b = stack.pop()
                a = stack.pop()
                if ar == 6:
                    locals_[d] = a + b
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    locals_[d] = a - b
                    wa = w_add
                    sa = s2
                else:
                    locals_[d] = a * b
                    wa = w_mul
                    sa = s3
                pc += 2
                executed += 2
                clock = clock + sa + speed
                mcycles = mcycles + sa + speed
                mwork = mwork + wa + w_store
            elif op == F_LC:
                a, k = argv[pc]
                stack.append(locals_[a])
                stack.append(k)
                pc += 2
                executed += 2
                clock = clock + speed + speed
                mcycles = mcycles + speed + speed
                mwork = mwork + w_load + w_const
            elif op == F_LC_ARITH:
                a, k, ar = argv[pc]
                x = locals_[a]
                if ar == 6:
                    stack.append(x + k)
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    stack.append(x - k)
                    wa = w_add
                    sa = s2
                else:
                    stack.append(x * k)
                    wa = w_mul
                    sa = s3
                pc += 3
                executed += 3
                clock = clock + speed + speed + sa
                mcycles = mcycles + speed + speed + sa
                mwork = mwork + w_load + w_const + wa
            elif op == F_LL_ARITH:
                a, b, ar = argv[pc]
                x = locals_[a]
                y = locals_[b]
                if ar == 6:
                    stack.append(x + y)
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    stack.append(x - y)
                    wa = w_add
                    sa = s2
                else:
                    stack.append(x * y)
                    wa = w_mul
                    sa = s3
                pc += 3
                executed += 3
                clock = clock + speed + speed + sa
                mcycles = mcycles + speed + speed + sa
                mwork = mwork + w_load + w_load + wa
            elif op == F_LL_ARITH_S:
                a, b, ar, d = argv[pc]
                x = locals_[a]
                y = locals_[b]
                if ar == 6:
                    locals_[d] = x + y
                    wa = w_add
                    sa = s2
                elif ar == 7:
                    locals_[d] = x - y
                    wa = w_add
                    sa = s2
                else:
                    locals_[d] = x * y
                    wa = w_mul
                    sa = s3
                pc += 4
                executed += 4
                clock = clock + speed + speed + sa + speed
                mcycles = mcycles + speed + speed + sa + speed
                mwork = mwork + w_load + w_load + wa + w_store
            elif op == F_LC_CMP_JZ:
                a, k, c, t = argv[pc]
                x = locals_[a]
                if c == 15:
                    taken = not (x < k)
                elif c == 16:
                    taken = not (x <= k)
                elif c == 17:
                    taken = not (x > k)
                elif c == 18:
                    taken = not (x >= k)
                elif c == 13:
                    taken = not (x == k)
                else:
                    taken = not (x != k)
                pc = t if taken else pc + 4
                executed += 4
                clock = clock + speed + speed + s2 + s2
                mcycles = mcycles + speed + speed + s2 + s2
                mwork = mwork + w_load + w_const + w_cmp + w_jz
            elif op == F_CMP_JZ or op == F_CMP_JNZ:
                c, t = argv[pc]
                b = stack.pop()
                a = stack.pop()
                if c == 15:
                    cond = a < b
                elif c == 16:
                    cond = a <= b
                elif c == 17:
                    cond = a > b
                elif c == 18:
                    cond = a >= b
                elif c == 13:
                    cond = a == b
                else:
                    cond = a != b
                if op == F_CMP_JZ:
                    pc = pc + 2 if cond else t
                else:
                    pc = t if cond else pc + 2
                executed += 2
                clock = clock + s2 + s2
                mcycles = mcycles + s2 + s2
                mwork = mwork + w_cmp + w_jz
            else:  # F_DUP_ADD
                x = stack[-1]
                stack[-1] = x + x
                pc += 2
                executed += 2
                clock = clock + speed + s2
                mcycles = mcycles + speed + s2
                mwork = mwork + w_const + w_add
        else:
            # ---- standalone handlers (reference semantics, decoded) -----
            pc += 1
            executed += 1
            if op == 4:  # LOAD
                stack.append(locals_[argv[pc - 1]])
                work = w_load
            elif op == 19:  # JMP
                pc = argv[pc - 1]
                work = w_jmp
            elif op == 0:  # CONST
                stack.append(argv[pc - 1])
                work = w_const
            elif op == 5:  # STORE
                locals_[argv[pc - 1]] = stack.pop()
                work = w_store
            elif op == 6:  # ADD
                b = stack.pop()
                stack[-1] = stack[-1] + b
                work = w_add
            elif op == 7:  # SUB
                b = stack.pop()
                stack[-1] = stack[-1] - b
                work = w_add
            elif op == 8:  # MUL
                b = stack.pop()
                stack[-1] = stack[-1] * b
                work = w_mul
            elif op == 15:  # LT
                b = stack.pop()
                stack[-1] = 1 if stack[-1] < b else 0
                work = w_cmp
            elif op == 16:  # LE
                b = stack.pop()
                stack[-1] = 1 if stack[-1] <= b else 0
                work = w_cmp
            elif op == 17:  # GT
                b = stack.pop()
                stack[-1] = 1 if stack[-1] > b else 0
                work = w_cmp
            elif op == 18:  # GE
                b = stack.pop()
                stack[-1] = 1 if stack[-1] >= b else 0
                work = w_cmp
            elif op == 13:  # EQ
                b = stack.pop()
                stack[-1] = 1 if stack[-1] == b else 0
                work = w_cmp
            elif op == 14:  # NE
                b = stack.pop()
                stack[-1] = 1 if stack[-1] != b else 0
                work = w_cmp
            elif op == 20:  # JZ
                if not stack.pop():
                    pc = argv[pc - 1]
                work = w_jz
            elif op == 21:  # JNZ
                if stack.pop():
                    pc = argv[pc - 1]
                work = w_jz
            elif op == 22:  # CALL
                callee_name, argc = argv[pc - 1]
                if len(frames) >= max_depth:
                    raise StackOverflowError(
                        f"call depth exceeded {max_depth}", method=name, pc=pc - 1
                    )
                interp.clock = clock
                callee_state = interp._ensure_state(callee_name)
                if recompile_queue:
                    interp._apply_recompiles()
                clock = interp.clock
                interval_tick = sampler.next_tick
                callee_state.invocations += 1
                callee_args = stack[len(stack) - argc:] if argc else []
                del stack[len(stack) - argc:]
                frame.pc = pc
                method_cycles[name] = mcycles
                method_work[name] = mwork
                new_frame = FastFrame(callee_state.compiled, callee_args)
                frames.append(new_frame)
                frame = new_frame
                ops = frame.fops if fused_on else frame.pops
                argv = frame.fargs if fused_on else frame.pargs
                pc = 0
                stack = frame.stack
                locals_ = frame.locals
                speed = frame.speed
                s2 = 2 * speed
                s3 = 3 * speed
                name = frame.name
                mcycles = method_cycles.get(name, 0.0)
                mwork = method_work.get(name, 0.0)
                work = w_call
            elif op == 23:  # RET
                result = stack.pop()
                cost = w_ret * speed
                method_cycles[name] = mcycles + cost
                method_work[name] = mwork + w_ret
                clock += cost
                frames.pop()
                if not frames:
                    interp.clock = clock
                    interp.profile.instructions_executed = executed
                    if clock >= interval_tick:
                        sampler.advance(clock, name)
                    return result
                frame = frames[-1]
                ops = frame.fops if fused_on else frame.pops
                argv = frame.fargs if fused_on else frame.pargs
                pc = frame.pc
                stack = frame.stack
                stack.append(result)
                locals_ = frame.locals
                speed = frame.speed
                s2 = 2 * speed
                s3 = 3 * speed
                name = frame.name
                mcycles = method_cycles.get(name, 0.0)
                mwork = method_work.get(name, 0.0)
                if clock >= interval_tick:
                    sampler.advance(clock, name)
                    interval_tick = sampler.next_tick
                    if recompile_queue:
                        interp.clock = clock
                        interp._apply_recompiles()
                        clock = interp.clock
                        interval_tick = sampler.next_tick
                        # Current frame may have been speed-upgraded.
                        speed = frame.speed
                        s2 = 2 * speed
                        s3 = 3 * speed
                continue
            elif op == 28:  # INTRIN
                intr_name, argc = argv[pc - 1]
                fn = lookup_intrinsic(intr_name)
                call_args = tuple(stack[len(stack) - argc:]) if argc else ()
                if argc:
                    del stack[len(stack) - argc:]
                stack.append(fn(intrinsic_ctx, call_args))
                work = base_cost[28]
                if intrinsic_ctx.burned:
                    work += intrinsic_ctx.burned
                    intrinsic_ctx.burned = 0.0
                if intrinsic_ctx.gc_cycles:
                    # GC work is charged unscaled: fold it into `work`
                    # pre-divided so the bottom-of-loop scaling cancels.
                    work += intrinsic_ctx.gc_cycles / speed
                    intrinsic_ctx.gc_cycles = 0.0
            elif op == 25:  # ALOAD
                idx = stack.pop()
                arr = stack[-1]
                stack[-1] = arr[idx]
                work = base_cost[25]
            elif op == 26:  # ASTORE
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                arr[idx] = value
                work = base_cost[26]
            elif op == 2:  # DUP
                stack.append(stack[-1])
                work = w_const
            elif op == 1:  # POP
                stack.pop()
                work = w_const
            elif op == 27:  # ALEN
                stack[-1] = len(stack[-1])
                work = base_cost[27]
            elif op == 24:  # NEWARR
                n = stack.pop()
                if not isinstance(n, int) or n < 0:
                    raise ExecutionError(
                        f"NEWARR size must be a non-negative int, got {n!r}",
                        method=name,
                        pc=pc - 1,
                    )
                stack.append([0] * n)
                work = base_cost[24]
            elif op == 9:  # DIV
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ExecutionError(
                        "division by zero", method=name, pc=pc - 1
                    )
                stack[-1] = (
                    a // b if isinstance(a, int) and isinstance(b, int) else a / b
                )
                work = base_cost[9]
            elif op == 10:  # MOD
                b = stack.pop()
                if b == 0:
                    raise ExecutionError("modulo by zero", method=name, pc=pc - 1)
                stack[-1] = stack[-1] % b
                work = base_cost[10]
            elif op == 11:  # NEG
                stack[-1] = -stack[-1]
                work = w_const
            elif op == 12:  # NOT
                stack[-1] = 1 if stack[-1] == 0 else 0
                work = w_const
            elif op == 3:  # SWAP
                stack[-1], stack[-2] = stack[-2], stack[-1]
                work = w_const
            elif op == 29:  # NOP
                work = w_const
            else:  # pragma: no cover - verifier rejects unknown opcodes
                raise ExecutionError(f"bad opcode {op!r}", method=name, pc=pc - 1)

            cost = work * speed
            clock += cost
            mcycles += cost
            mwork += work

        # ---- shared epilogue: sampler tick + fuel ------------------------
        if clock >= interval_tick:
            method_cycles[name] = mcycles
            method_work[name] = mwork
            sampler.advance(clock, name)
            interval_tick = sampler.next_tick
            if recompile_queue:
                frame.pc = pc
                interp.clock = clock
                interp._apply_recompiles()
                clock = interp.clock
                interval_tick = sampler.next_tick
                speed = frame.speed
                s2 = 2 * speed
                s3 = 3 * speed
            mcycles = method_cycles.get(name, 0.0)
            mwork = method_work.get(name, 0.0)
        if executed >= fuel_soft:
            if fused_on:
                # Within FUEL_MARGIN of the budget: finish on the unfused
                # stream so the per-instruction fuel check decides exactly
                # where execution stops, as in the reference loop.
                fused_on = False
                ops = frame.pops
                argv = frame.pargs
            if executed >= fuel:
                raise FuelExhaustedError(
                    f"instruction budget {fuel} exhausted", method=name, pc=pc - 1
                )
