"""Runtime profiles produced by one VM execution.

A :class:`RunProfile` is the record the adaptive optimization system and the
evolvable-VM learner consume after a run: per-method timer-sample counts
(the paper's hotness measure), per-method exact cycle accounting (used for
the posterior *ideal strategy* computation and speedup reporting), compile
events, and total clock figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class CompileEvent:
    """One (re)compilation: which method, to what level, at what cost."""

    method: str
    level: int
    cycles: float
    at_clock: float


@dataclass
class RunProfile:
    """Aggregate observation of a single execution.

    Attributes:
        samples: Timer samples per method name (hotness, as in Jikes).
        method_cycles: Exact execution cycles attributed to each method
            (excludes compile time).
        method_work: Baseline-equivalent cycles per method — what the same
            execution would have cost at level −1. The posterior ideal-
            strategy computation is driven by this tier-independent measure
            of how much work each method performed.
        final_levels: The optimization level each method ended the run at.
        compile_events: Every compilation in run order.
        total_cycles: Full virtual clock at exit (execution + compilation).
        compile_cycles: Portion of the clock spent compiling.
        instructions_executed: Interpreted instruction count (all methods).
        invocations: Method invocation counts.
    """

    samples: dict[str, int] = field(default_factory=dict)
    method_cycles: dict[str, float] = field(default_factory=dict)
    method_work: dict[str, float] = field(default_factory=dict)
    final_levels: dict[str, int] = field(default_factory=dict)
    compile_events: list[CompileEvent] = field(default_factory=list)
    total_cycles: float = 0.0
    compile_cycles: float = 0.0
    instructions_executed: int = 0
    invocations: dict[str, int] = field(default_factory=dict)
    gc_policy: str = "semispace"
    gc_count: int = 0
    gc_pause_cycles: float = 0.0
    allocated_bytes: float = 0.0
    allocation_count: int = 0
    peak_live_bytes: float = 0.0

    @property
    def execution_cycles(self) -> float:
        """Cycles spent running application code (clock minus compilation)."""
        return self.total_cycles - self.compile_cycles

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def hot_methods(self, top: int | None = None) -> list[tuple[str, int]]:
        """Methods ordered by sample count, hottest first."""
        ranked = sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if top is None else ranked[:top]

    def sample_fraction(self, method: str) -> float:
        """Fraction of all samples landing in *method* (0 if unsampled)."""
        total = self.total_samples
        if total == 0:
            return 0.0
        return self.samples.get(method, 0) / total

    def compile_count(self, method: str) -> int:
        return sum(1 for ev in self.compile_events if ev.method == method)

    def levels_compiled(self) -> dict[int, int]:
        """How many methods ended the run at each optimization level."""
        counts: dict[int, int] = {}
        for level in self.final_levels.values():
            counts[level] = counts.get(level, 0) + 1
        return counts

    def methods_seen(self) -> tuple[str, ...]:
        """All methods that were invoked at least once, sorted."""
        return tuple(sorted(self.invocations))
