"""Intrinsic (built-in) functions callable from bytecode via ``INTRIN``.

Intrinsics model the parts of a real runtime library the benchmarks need:
math helpers, bounded output, a deterministic per-run RNG, and — centrally —
``burn``, the virtual-work primitive. ``burn(n)`` advances the virtual clock
by ``n`` cycles *scaled by the executing method's current speed factor*, so
a kernel dominated by ``burn`` speeds up under higher JIT tiers exactly like
its surrounding bytecode. This lets workload programs exhibit realistic
(seconds-scale) virtual running times while staying cheap to interpret.

Intrinsics receive an :class:`IntrinsicContext` so they can interact with the
clock and the run's RNG without reaching into interpreter internals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random
from typing import Callable

from .errors import ExecutionError, UnknownIntrinsicError
from .heap import DEFAULT_GC_POLICY, Heap


@dataclass
class IntrinsicContext:
    """Execution-environment view handed to every intrinsic invocation.

    Attributes:
        rng: Deterministic per-run random generator (seeded by the harness).
        output: Captured ``print`` lines (the VM never writes to stdout).
        burned: Extra cycles requested by ``burn`` during the current
            instruction; the interpreter drains this after each INTRIN.
            Scaled by the executing method's JIT speed factor.
        gc_cycles: Collector pauses and allocation overhead accumulated
            during the current instruction. Drained like ``burned`` but
            charged *unscaled*: GC work does not speed up with the
            mutator's optimization level.
        heap: The managed heap backing alloc/retain/release.
    """

    rng: Random = field(default_factory=lambda: Random(0))
    output: list[str] = field(default_factory=list)
    burned: float = 0.0
    gc_cycles: float = 0.0
    heap: Heap = field(default_factory=lambda: Heap(DEFAULT_GC_POLICY))

    def burn(self, cycles: float) -> None:
        self.burned += cycles


IntrinsicFn = Callable[..., object]

_REGISTRY: dict[str, Callable[[IntrinsicContext, tuple], object]] = {}


def intrinsic(name: str):
    """Register a function as an intrinsic under *name*."""

    def deco(fn: Callable[[IntrinsicContext, tuple], object]):
        _REGISTRY[name] = fn
        return fn

    return deco


def lookup(name: str) -> Callable[[IntrinsicContext, tuple], object]:
    fn = _REGISTRY.get(name)
    if fn is None:
        raise UnknownIntrinsicError(f"unknown intrinsic {name!r}")
    return fn


def registered_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Intrinsic definitions
# ---------------------------------------------------------------------------

@intrinsic("burn")
def _burn(ctx: IntrinsicContext, args: tuple) -> int:
    """burn(n): consume n virtual cycles of kernel work; returns 0."""
    (n,) = args
    if not isinstance(n, (int, float)) or n < 0:
        raise ExecutionError(f"burn expects a non-negative number, got {n!r}")
    ctx.burn(float(n))
    return 0


@intrinsic("print")
def _print(ctx: IntrinsicContext, args: tuple) -> int:
    ctx.output.append(" ".join(str(a) for a in args))
    return 0


@intrinsic("abs")
def _abs(ctx: IntrinsicContext, args: tuple) -> object:
    (x,) = args
    return abs(x)


@intrinsic("min")
def _min(ctx: IntrinsicContext, args: tuple) -> object:
    a, b = args
    return a if a <= b else b


@intrinsic("max")
def _max(ctx: IntrinsicContext, args: tuple) -> object:
    a, b = args
    return a if a >= b else b


@intrinsic("sqrt")
def _sqrt(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    if x < 0:
        raise ExecutionError(f"sqrt of negative value {x!r}")
    return math.sqrt(x)


@intrinsic("floor")
def _floor(ctx: IntrinsicContext, args: tuple) -> int:
    (x,) = args
    return math.floor(x)


@intrinsic("exp")
def _exp(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    return math.exp(min(x, 700.0))


@intrinsic("log")
def _log(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    if x <= 0:
        raise ExecutionError(f"log of non-positive value {x!r}")
    return math.log(x)


@intrinsic("sin")
def _sin(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    return math.sin(x)


@intrinsic("cos")
def _cos(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    return math.cos(x)


@intrinsic("rand")
def _rand(ctx: IntrinsicContext, args: tuple) -> float:
    """rand(): uniform float in [0, 1) from the per-run deterministic RNG."""
    return ctx.rng.random()


@intrinsic("randint")
def _randint(ctx: IntrinsicContext, args: tuple) -> int:
    """randint(lo, hi): uniform integer in [lo, hi]."""
    lo, hi = args
    return ctx.rng.randint(int(lo), int(hi))


@intrinsic("itof")
def _itof(ctx: IntrinsicContext, args: tuple) -> float:
    (x,) = args
    return float(x)


@intrinsic("ftoi")
def _ftoi(ctx: IntrinsicContext, args: tuple) -> int:
    (x,) = args
    return int(x)


@intrinsic("alloc")
def _alloc(ctx: IntrinsicContext, args: tuple) -> int:
    """alloc(nbytes): allocate short-lived data; may trigger a GC pause."""
    (n,) = args
    if not isinstance(n, (int, float)) or n < 0:
        raise ExecutionError(f"alloc expects a non-negative number, got {n!r}")
    ctx.gc_cycles += ctx.heap.alloc(float(n))
    return 0


@intrinsic("retain")
def _retain(ctx: IntrinsicContext, args: tuple) -> int:
    """retain(nbytes): allocate long-lived (surviving) data."""
    (n,) = args
    if not isinstance(n, (int, float)) or n < 0:
        raise ExecutionError(f"retain expects a non-negative number, got {n!r}")
    ctx.gc_cycles += ctx.heap.retain(float(n))
    return 0


@intrinsic("release")
def _release(ctx: IntrinsicContext, args: tuple) -> int:
    """release(nbytes): retire previously retained data."""
    (n,) = args
    if not isinstance(n, (int, float)) or n < 0:
        raise ExecutionError(f"release expects a non-negative number, got {n!r}")
    ctx.heap.release(float(n))
    return 0
