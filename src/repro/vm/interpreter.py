"""The execution engine: a tiered, sampling, virtual-clock interpreter.

The interpreter executes bytecode under a deterministic virtual clock.
Every method is baseline-compiled (level −1) on first invocation — exactly
Jikes RVM's compile-only, no-interpreter design, where the "baseline tier"
is a fast, non-optimizing translation. Attached controllers observe timer
samples and may request recompilations at higher tiers; recompilation
replaces the method's code for future invocations and (modeling on-stack
replacement) upgrades the speed factor of currently active frames.

The engine never makes optimization *decisions* itself; those live in
:mod:`repro.aos` and :mod:`repro.core`. It only provides mechanism:
execution, the clock, sampling, and a recompilation queue.
"""

from __future__ import annotations

from random import Random
from typing import Callable

from .closures import _Bailout, resolve_compiled, run_compiled
from .config import BASELINE_LEVEL, DEFAULT_CONFIG, VMConfig
from .fastpath import FastFrame, run_fast
from .errors import (
    ExecutionError,
    FuelExhaustedError,
    StackOverflowError,
    UnknownMethodError,
)
from .instructions import BASE_COST, Op
from .heap import DEFAULT_GC_POLICY, GCCostModel, Heap
from .intrinsics import IntrinsicContext, lookup as lookup_intrinsic
from .opt.jit import CompiledCode, JITCompiler
from .profiles import CompileEvent, RunProfile
from .program import Program
from .sampler import Sampler


class _MethodState:
    """Mutable per-method runtime state: current code and tier."""

    __slots__ = ("name", "compiled", "invocations")

    def __init__(self, name: str, compiled: CompiledCode):
        self.name = name
        self.compiled = compiled
        self.invocations = 0

    @property
    def level(self) -> int:
        return self.compiled.level


class _Frame:
    """One activation record."""

    __slots__ = ("code", "pc", "locals", "stack", "name", "speed")

    def __init__(self, compiled: CompiledCode, args: list):
        self.code = compiled.code
        self.pc = 0
        self.locals = args + [0] * (compiled.num_locals - len(args))
        self.stack: list = []
        self.name = compiled.method_name
        self.speed = compiled.speed_factor


#: Optional hook invoked on a method's very first invocation; may return a
#: level (> −1) to recompile the method at immediately — the mechanism the
#: evolvable VM uses to apply a predicted strategy proactively.
FirstInvocationHook = Callable[[str], int | None]

#: Forge-internal hook fired when a method is about to be baseline-compiled
#: for the first time, *before* any compile cycles are charged. The forked-run
#: labeler uses it to capture a resumable state snapshot at the exact point
#: where a per-method recompilation decision would take effect. Reference
#: engine only.
ForkHook = Callable[[str, "Interpreter"], None]


class ForkStop(Exception):
    """Internal control flow: a forked child reached its stop point.

    Raised by the reference loop when a ``_stop_plan`` target is met (the
    forced method's last outer exit — its cycle account is final there).
    Deliberately *not* a :class:`VMError`: the forge must never mistake an
    early stop for a program fault.
    """


class ShadowAccount:
    """One speculative cycle account: "method *m* as if compiled at level *L*".

    Maintained by the reference loop alongside the real accounting. When a
    tier's optimization pipeline leaves a method's code unchanged (level 0
    always; higher tiers occasionally), the only difference between the real
    run and a run with *m* forced to *L* is the speed factor applied to each
    of *m*'s instructions — so the forced run's ``method_cycles[m]`` can be
    reproduced bit-for-bit by replaying the same per-instruction cost
    expressions at the shadow speed, without executing a second run.
    """

    __slots__ = ("level", "speed", "cycles")

    def __init__(self, level: int, speed: float):
        self.level = level
        self.speed = speed
        self.cycles = 0.0


class Interpreter:
    """Executes one program run under the virtual clock.

    One instance represents one *run*; create a fresh instance per run (the
    JIT cache may be shared across runs via the ``jit`` parameter, mirroring
    a warm code cache, but all clocks and profiles are per-instance).
    """

    def __init__(
        self,
        program: Program,
        config: VMConfig = DEFAULT_CONFIG,
        rng_seed: int = 0,
        jit: JITCompiler | None = None,
        first_invocation_hook: FirstInvocationHook | None = None,
        gc_policy: str = DEFAULT_GC_POLICY,
        gc_model: GCCostModel = GCCostModel(),
        engine: str = "auto",
    ):
        if engine not in ("auto", "compiled", "fast", "reference"):
            raise ValueError(
                "engine must be 'auto', 'compiled', 'fast', or 'reference', "
                f"got {engine!r}"
            )
        self.program = program
        self.engine = engine
        self.config = config
        self.jit = jit if jit is not None else JITCompiler(program, config)
        self.sampler = Sampler(config.sample_interval)
        self.intrinsic_ctx = IntrinsicContext(
            rng=Random(rng_seed), heap=Heap(gc_policy, gc_model)
        )
        # Kept for the compiled tier's bailout-and-replay path, which
        # reconstructs an identical run on the fast engine.
        self._rng_seed = rng_seed
        self._gc_policy = gc_policy
        self._gc_model = gc_model
        self.clock = 0.0
        self.profile = RunProfile()
        self._states: dict[str, _MethodState] = {}
        self._frames: list[_Frame] = []
        self._recompile_queue: list[tuple[str, int]] = []
        self._first_invocation_hook = first_invocation_hook
        self._finished = False
        # Forge plumbing (repro.learning.forge): all default-off, and dormant
        # unless the forked-run labeler arms them on a reference-engine run.
        self._fork_hook: ForkHook | None = None
        self._shadow: dict[str, list[ShadowAccount]] | None = None
        self._shadow_gc = 0.0
        self._shadow_wpre = 0.0
        self._resume_executed = 0
        # Parent-side: per-method *outer* entry counts (entries with no
        # frame of the same method already live) — the invariant a forked
        # child's stop plan is phrased in, because inlining and tail-call
        # elimination change inner entry counts but never outer ones.
        self._outer_entries: dict[str, int] | None = None
        self._live_counts: dict[str, int] = {}
        # Child-side: (method, outer_exits_remaining) — raise ForkStop once
        # the method's last outer exit has been accounted.
        self._stop_plan: tuple[str, int] | None = None

    # -- public control surface (used by AOS controllers) -----------------
    def request_recompile(self, method_name: str, level: int) -> None:
        """Queue *method_name* for recompilation at *level*.

        Processed at the next safe point; upgrades only (a request at or
        below the method's current level is dropped at application time).
        """
        self._recompile_queue.append((method_name, level))

    def current_level(self, method_name: str) -> int:
        state = self._states.get(method_name)
        return state.level if state is not None else BASELINE_LEVEL - 1

    @property
    def output(self) -> list[str]:
        return self.intrinsic_ctx.output

    # -- internals ---------------------------------------------------------
    def _charge_compile(self, compiled: CompiledCode) -> None:
        self.clock += compiled.compile_cycles
        self.profile.compile_cycles += compiled.compile_cycles
        self.profile.compile_events.append(
            CompileEvent(
                method=compiled.method_name,
                level=compiled.level,
                cycles=compiled.compile_cycles,
                at_clock=self.clock,
            )
        )
        # Compilation runs on the compiler thread: no app samples meanwhile.
        self.sampler.skip_to(self.clock)

    def _ensure_state(self, name: str) -> _MethodState:
        state = self._states.get(name)
        if state is None:
            if name not in self.program:
                raise UnknownMethodError(f"call to unknown method {name!r}")
            if self._fork_hook is not None:
                # Snapshot point: nothing about this method (not even its
                # baseline compile) has been charged yet.
                self._fork_hook(name, self)
            compiled = self.jit.compile(name, BASELINE_LEVEL)
            self._charge_compile(compiled)
            state = _MethodState(name, compiled)
            self._states[name] = state
            if self._first_invocation_hook is not None:
                level = self._first_invocation_hook(name)
                if level is not None and level > BASELINE_LEVEL:
                    self.request_recompile(name, level)
        return state

    def _apply_recompiles(self) -> None:
        # Collapse the queue to the max requested level per method first:
        # controllers may enqueue several (method, level) requests between
        # two safe points (or the same request repeatedly), and compiling
        # the intermediate tiers would charge compile cycles for artifacts
        # that are replaced before ever executing.
        queue = self._recompile_queue
        if not queue:
            return
        best: dict[str, int] = {}
        for name, level in queue:
            if level > best.get(name, BASELINE_LEVEL - 1):
                best[name] = level
        queue.clear()
        for name, level in best.items():
            state = self._states.get(name)
            if state is None or level <= state.level:
                continue
            compiled = self.jit.compile(name, level)
            self._charge_compile(compiled)
            state.compiled = compiled
            # OSR-lite: active frames keep their code shape but execute at
            # the new tier's speed.
            for frame in self._frames:
                if frame.name == name:
                    frame.speed = compiled.speed_factor

    def run(self, args: tuple = (), entry: str | None = None) -> RunProfile:
        """Execute the program to completion and return its profile."""
        if self._finished:
            raise ExecutionError("Interpreter instances are single-use")
        entry_name = entry if entry is not None else self.program.entry
        state = self._ensure_state(entry_name)
        expected = self.program.method(entry_name).num_params
        if len(args) != expected:
            raise ExecutionError(
                f"entry {entry_name!r} expects {expected} args, got {len(args)}"
            )
        self._apply_recompiles()
        state.invocations += 1
        if self._outer_entries is not None:
            self._live_counts[entry_name] = 1
            self._outer_entries[entry_name] = 1
        # Engine ladder: "auto" prefers compiled → fast; "compiled" pins the
        # top tier but still routes unsupported runs down (silent fallback
        # is part of its contract); "fast"/"reference" pin their loops
        # ("reference" is the oracle for the differential harness and the
        # benchmark suite). All tiers are bit-identical in virtual-cycle
        # semantics — see repro.vm.fastpath and repro.vm.closures.
        entry_fn = None
        if self.engine in ("auto", "compiled"):
            entry_fn = resolve_compiled(self, entry_name)
        try:
            if entry_fn is not None:
                try:
                    result = run_compiled(self, state, tuple(args))
                except _Bailout:
                    result = self._replay_on_fast(args, entry_name)
            else:
                use_fast = self.engine != "reference"
                frame_cls = FastFrame if use_fast else _Frame
                self._frames.append(frame_cls(state.compiled, list(args)))
                result = run_fast(self) if use_fast else self._loop()
        except ExecutionError:
            raise
        except (TypeError, ValueError, IndexError, ZeroDivisionError, KeyError) as exc:
            frame = self._frames[-1] if self._frames else None
            raise ExecutionError(
                f"runtime fault: {exc}",
                method=frame.name if frame else None,
                pc=frame.pc - 1 if frame else None,
            ) from exc
        self._finished = True
        self._finalize(result)
        return self.profile

    def resume(self) -> RunProfile:
        """Continue a run whose state was restored from a fork snapshot.

        Forge-internal (see :mod:`repro.learning.forge.labeler`): the caller
        has rebuilt ``clock``/``profile``/``sampler``/``intrinsic_ctx``/
        frames/method states from a snapshot captured by the fork hook, with
        the top frame's ``pc`` rewound onto the CALL instruction that
        triggered the snapshot and ``_resume_executed`` holding the
        instruction count up to (excluding) that CALL. Reference engine only.
        """
        if self._finished:
            raise ExecutionError("Interpreter instances are single-use")
        if self.engine != "reference":
            raise ExecutionError("resume() requires engine='reference'")
        if not self._frames:
            raise ExecutionError("resume() needs a restored frame stack")
        try:
            result = self._loop()
        except ForkStop:
            # Early stop: the forced method's accounting is complete. The
            # profile is partial past that method (by design: forge labels
            # read only the forced method's accounts).
            self._finished = True
            self._finalize(None)
            return self.profile
        except ExecutionError:
            raise
        except (TypeError, ValueError, IndexError, ZeroDivisionError, KeyError) as exc:
            frame = self._frames[-1] if self._frames else None
            raise ExecutionError(
                f"runtime fault: {exc}",
                method=frame.name if frame else None,
                pc=frame.pc - 1 if frame else None,
            ) from exc
        self._finished = True
        self._finalize(result)
        return self.profile

    def _replay_on_fast(self, args: tuple, entry_name: str):
        """Re-run from scratch on the fast engine after a compiled bailout.

        The compiled tier bails *wholesale*: partial clock, accounts,
        output, and heap effects of the abandoned attempt are discarded
        with this interpreter's state and replaced by the inner run's —
        adopted even when the inner run raises, because callers read
        ``output``/profile after ExecutionErrors. The shared ``jit``
        means the replay's compile memo is warm, charging identical
        virtual compile cycles. First-invocation hooks are re-invoked
        (all in-repo hooks are pure functions of the method name).
        """
        inner = Interpreter(
            self.program,
            config=self.config,
            rng_seed=self._rng_seed,
            jit=self.jit,
            first_invocation_hook=self._first_invocation_hook,
            gc_policy=self._gc_policy,
            gc_model=self._gc_model,
            engine="fast",
        )
        try:
            inner.run(args, entry=entry_name)
        finally:
            self.clock = inner.clock
            self.profile = inner.profile
            self.sampler = inner.sampler
            self.intrinsic_ctx = inner.intrinsic_ctx
            self._states = inner._states
            self._frames = inner._frames
        return inner.result

    def _finalize(self, result) -> None:
        prof = self.profile
        prof.total_cycles = self.clock
        prof.samples = dict(self.sampler.counts)
        prof.final_levels = {
            name: st.level for name, st in self._states.items()
        }
        prof.invocations = {
            name: st.invocations for name, st in self._states.items()
        }
        heap = self.intrinsic_ctx.heap
        prof.gc_policy = heap.policy
        prof.gc_count = heap.stats.gc_count
        prof.gc_pause_cycles = heap.stats.gc_pause_cycles
        prof.allocated_bytes = heap.stats.allocated_bytes
        prof.allocation_count = heap.stats.allocation_count
        prof.peak_live_bytes = heap.stats.peak_live_bytes
        self.result = result

    def _loop(self):
        """The dispatch loop. Localizes hot state for speed."""
        config = self.config
        base_cost = BASE_COST
        sampler = self.sampler
        interval_tick = sampler.next_tick
        method_cycles = self.profile.method_cycles
        method_work = self.profile.method_work
        intrinsic_ctx = self.intrinsic_ctx
        frames = self._frames
        max_depth = config.max_call_depth
        fuel = config.max_instructions
        clock = self.clock
        # Both default to the dormant value (0 / None / False) outside forge
        # runs; `executed` starts mid-count when resuming a fork snapshot.
        executed = self._resume_executed
        shadow = self._shadow
        fork_armed = self._fork_hook is not None
        outer_track = self._outer_entries
        live_counts = self._live_counts
        if self._stop_plan is not None:
            stop_method, stop_remaining = self._stop_plan
        else:
            stop_method, stop_remaining = None, 0
        stop_live = 0

        frame = frames[-1]
        code = frame.code
        pc = frame.pc
        stack = frame.stack
        locals_ = frame.locals
        speed = frame.speed
        name = frame.name
        mcycles = method_cycles.get(name, 0.0)
        mwork = method_work.get(name, 0.0)
        # Hoisted per-frame: shadow accounts change only at frame switches,
        # exactly like the mcycles/mwork locals.
        cur_accounts = None if shadow is None else shadow.get(name)

        while True:
            ins = code[pc]
            op = ins.op
            pc += 1
            work = base_cost[op]
            executed += 1

            if op == Op.LOAD:
                stack.append(locals_[ins.arg])
            elif op == Op.CONST:
                stack.append(ins.arg)
            elif op == Op.STORE:
                locals_[ins.arg] = stack.pop()
            elif op == Op.ADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op == Op.SUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op == Op.MUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op == Op.LT:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] < b else 0
            elif op == Op.LE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] <= b else 0
            elif op == Op.GT:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] > b else 0
            elif op == Op.GE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] >= b else 0
            elif op == Op.EQ:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] == b else 0
            elif op == Op.NE:
                b = stack.pop()
                stack[-1] = 1 if stack[-1] != b else 0
            elif op == Op.JMP:
                pc = ins.arg
            elif op == Op.JZ:
                if not stack.pop():
                    pc = ins.arg
            elif op == Op.JNZ:
                if stack.pop():
                    pc = ins.arg
            elif op == Op.DIV:
                b = stack.pop()
                a = stack[-1]
                if b == 0:
                    raise ExecutionError("division by zero", method=name, pc=pc - 1)
                stack[-1] = a // b if isinstance(a, int) and isinstance(b, int) else a / b
            elif op == Op.MOD:
                b = stack.pop()
                if b == 0:
                    raise ExecutionError("modulo by zero", method=name, pc=pc - 1)
                stack[-1] = stack[-1] % b
            elif op == Op.NEG:
                stack[-1] = -stack[-1]
            elif op == Op.NOT:
                stack[-1] = 1 if stack[-1] == 0 else 0
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.POP:
                stack.pop()
            elif op == Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == Op.CALL:
                callee_name, argc = ins.arg
                if len(frames) >= max_depth:
                    raise StackOverflowError(
                        f"call depth exceeded {max_depth}", method=name, pc=pc - 1
                    )
                # Save caller state, switch to callee.
                self.clock = clock
                if fork_armed and callee_name not in self._states:
                    # Make the instantaneous state resumable before the fork
                    # hook (inside _ensure_state) snapshots it: rewind pc
                    # onto this CALL so a restored run re-executes it, and
                    # flush the loop-local accounts the snapshot must see.
                    frame.pc = pc - 1
                    method_cycles[name] = mcycles
                    method_work[name] = mwork
                    self._resume_executed = executed - 1
                callee_state = self._ensure_state(callee_name)
                if outer_track is not None:
                    live = live_counts.get(callee_name, 0)
                    live_counts[callee_name] = live + 1
                    if live == 0:
                        outer_track[callee_name] = (
                            outer_track.get(callee_name, 0) + 1
                        )
                elif stop_method is not None and callee_name == stop_method:
                    stop_live += 1
                if self._recompile_queue:
                    self._apply_recompiles()
                clock = self.clock
                interval_tick = sampler.next_tick
                callee_state.invocations += 1
                callee_args = stack[len(stack) - argc :] if argc else []
                del stack[len(stack) - argc :]
                frame.pc = pc
                method_cycles[name] = mcycles
                method_work[name] = mwork
                new_frame = _Frame(callee_state.compiled, callee_args)
                frames.append(new_frame)
                frame = new_frame
                code = frame.code
                pc = 0
                stack = frame.stack
                locals_ = frame.locals
                speed = frame.speed
                name = frame.name
                mcycles = method_cycles.get(name, 0.0)
                mwork = method_work.get(name, 0.0)
                cur_accounts = None if shadow is None else shadow.get(name)
            elif op == Op.RET:
                result = stack.pop()
                cost = work * speed
                method_cycles[name] = mcycles + cost
                method_work[name] = mwork + work
                if cur_accounts is not None:
                    for acc in cur_accounts:
                        acc.cycles += work * acc.speed
                clock += cost
                frames.pop()
                if outer_track is not None:
                    live_counts[name] -= 1
                elif stop_method is not None and name == stop_method:
                    stop_live -= 1
                    if stop_live == 0:
                        stop_remaining -= 1
                        if stop_remaining == 0:
                            # The forced method's account is final (its
                            # cycles were flushed just above); nothing the
                            # rest of the run does can change its label.
                            self.clock = clock
                            self.profile.instructions_executed = executed
                            raise ForkStop
                if not frames:
                    self.clock = clock
                    self.profile.instructions_executed = executed
                    if clock >= interval_tick:
                        sampler.advance(clock, name)
                    return result
                frame = frames[-1]
                code = frame.code
                pc = frame.pc
                stack = frame.stack
                stack.append(result)
                locals_ = frame.locals
                speed = frame.speed
                name = frame.name
                mcycles = method_cycles.get(name, 0.0)
                mwork = method_work.get(name, 0.0)
                cur_accounts = None if shadow is None else shadow.get(name)
                if clock >= interval_tick:
                    sampler.advance(clock, name)
                    interval_tick = sampler.next_tick
                    if self._recompile_queue:
                        self.clock = clock
                        self._apply_recompiles()
                        clock = self.clock
                        interval_tick = sampler.next_tick
                        # Current frame may have been speed-upgraded.
                        speed = frame.speed
                continue
            elif op == Op.NEWARR:
                n = stack.pop()
                if not isinstance(n, int) or n < 0:
                    raise ExecutionError(
                        f"NEWARR size must be a non-negative int, got {n!r}",
                        method=name,
                        pc=pc - 1,
                    )
                stack.append([0] * n)
            elif op == Op.ALOAD:
                idx = stack.pop()
                arr = stack[-1]
                stack[-1] = arr[idx]
            elif op == Op.ASTORE:
                value = stack.pop()
                idx = stack.pop()
                arr = stack.pop()
                arr[idx] = value
            elif op == Op.ALEN:
                stack[-1] = len(stack[-1])
            elif op == Op.INTRIN:
                intr_name, argc = ins.arg
                fn = lookup_intrinsic(intr_name)
                call_args = tuple(stack[len(stack) - argc :]) if argc else ()
                if argc:
                    del stack[len(stack) - argc :]
                stack.append(fn(intrinsic_ctx, call_args))
                if intrinsic_ctx.burned:
                    work += intrinsic_ctx.burned
                    intrinsic_ctx.burned = 0.0
                if intrinsic_ctx.gc_cycles:
                    # GC work is charged unscaled: fold it into `work`
                    # pre-divided so the bottom-of-loop scaling cancels.
                    if shadow is not None:
                        # Shadow accounts must replay the same pre-divided
                        # expression at their own speed, so capture the GC
                        # amount and the work value it was folded into.
                        self._shadow_gc = intrinsic_ctx.gc_cycles
                        self._shadow_wpre = work
                    work += intrinsic_ctx.gc_cycles / speed
                    intrinsic_ctx.gc_cycles = 0.0
            elif op == Op.NOP:
                pass
            else:  # pragma: no cover - verifier rejects unknown opcodes
                raise ExecutionError(f"bad opcode {op!r}", method=name, pc=pc - 1)

            cost = work * speed
            clock += cost
            mcycles += cost
            mwork += work
            if shadow is not None:
                if cur_accounts is not None:
                    gc_part = self._shadow_gc
                    if gc_part:
                        self._shadow_gc = 0.0
                        wpre = self._shadow_wpre
                        for acc in cur_accounts:
                            acc_speed = acc.speed
                            acc.cycles += (wpre + gc_part / acc_speed) * acc_speed
                    else:
                        for acc in cur_accounts:
                            acc.cycles += work * acc.speed
                elif self._shadow_gc:
                    self._shadow_gc = 0.0
            if clock >= interval_tick:
                method_cycles[name] = mcycles
                method_work[name] = mwork
                sampler.advance(clock, name)
                interval_tick = sampler.next_tick
                if self._recompile_queue:
                    frame.pc = pc
                    self.clock = clock
                    self._apply_recompiles()
                    clock = self.clock
                    interval_tick = sampler.next_tick
                    speed = frame.speed
                mcycles = method_cycles.get(name, 0.0)
                mwork = method_work.get(name, 0.0)
            if executed >= fuel:
                raise FuelExhaustedError(
                    f"instruction budget {fuel} exhausted", method=name, pc=pc - 1
                )


def run_program(
    program: Program,
    args: tuple = (),
    config: VMConfig = DEFAULT_CONFIG,
    rng_seed: int = 0,
    engine: str = "auto",
) -> tuple[object, RunProfile]:
    """Convenience: run *program* once with no adaptive controller.

    Returns ``(result, profile)``. All methods stay at the baseline level;
    use :mod:`repro.aos` or :mod:`repro.core` drivers for adaptive runs.
    """
    interp = Interpreter(program, config=config, rng_seed=rng_seed, engine=engine)
    profile = interp.run(args)
    return interp.result, profile
