"""Input-specific garbage-collector selection — the §VI extension.

The paper's discussion lists GC selection (after the authors' VEE'08
study) as a further proactive, input-specific optimization the same
machinery enables. This module implements it on the VM's heap model
(:mod:`repro.vm.heap`): a program-level classification tree maps input
features to the collector that minimizes total GC cost, guarded by its own
decayed-confidence gate, and trained after each run on the posterior ideal
collector computed analytically from the observed allocation profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..learning.incremental import IncrementalClassifier
from ..learning.tree import TreeParams
from ..vm.heap import (
    DEFAULT_GC_POLICY,
    GCCostModel,
    GC_POLICIES,
    estimate_gc_cost,
    ideal_gc_policy,
)
from ..vm.profiles import RunProfile
from ..xicl.features import FeatureVector
from .confidence import ConfidenceTracker, DEFAULT_GAMMA, DEFAULT_THRESHOLD


@dataclass
class GCDecision:
    """What the selector did for one run, and how it scored."""

    applied: str            # the policy the run executed under
    predicted: str | None   # the model's (possibly gated-off) prediction
    ideal: str | None = None
    correct: bool | None = None
    saved_cycles: float | None = None  # est. cost(default) - cost(applied)


class GCSelector:
    """Learns and predicts the best collector per input."""

    def __init__(
        self,
        gamma: float = DEFAULT_GAMMA,
        threshold: float = DEFAULT_THRESHOLD,
        tree_params: TreeParams = TreeParams(),
        gc_model: GCCostModel = GCCostModel(),
        default_policy: str = DEFAULT_GC_POLICY,
        min_rows: int = 2,
        engine: str = "auto",
    ):
        if default_policy not in GC_POLICIES:
            raise ValueError(f"unknown default policy {default_policy!r}")
        self.model = IncrementalClassifier(
            tree_params, min_rows=min_rows, engine=engine
        )
        self.confidence = ConfidenceTracker(gamma=gamma, threshold=threshold)
        self.gc_model = gc_model
        self.default_policy = default_policy
        self.decisions: list[GCDecision] = []

    # -- prediction -----------------------------------------------------------
    def select(self, fvector: FeatureVector) -> GCDecision:
        """Pick the collector for a new run (discriminative)."""
        predicted = None
        if self.model.is_fitted or self.model.n_observations >= 2:
            predicted = self.model.predict(fvector)
        applied = (
            str(predicted)
            if predicted is not None and self.confidence.confident
            else self.default_policy
        )
        decision = GCDecision(applied=applied, predicted=predicted)
        self.decisions.append(decision)
        return decision

    # -- learning -------------------------------------------------------------
    def observe(
        self, decision: GCDecision, fvector: FeatureVector, profile: RunProfile
    ) -> GCDecision:
        """Score the decision against the run's posterior ideal collector
        and fold the observation into the model."""
        ideal = ideal_gc_policy(
            profile.allocated_bytes,
            profile.peak_live_bytes,
            profile.allocation_count,
            self.gc_model,
        )
        scored = (
            decision.predicted
            if decision.predicted is not None
            else self.default_policy
        )
        decision.ideal = ideal
        decision.correct = scored == ideal
        default_cost = estimate_gc_cost(
            self.default_policy,
            profile.allocated_bytes,
            profile.peak_live_bytes,
            profile.allocation_count,
            self.gc_model,
        )
        applied_cost = estimate_gc_cost(
            decision.applied,
            profile.allocated_bytes,
            profile.peak_live_bytes,
            profile.allocation_count,
            self.gc_model,
        )
        decision.saved_cycles = default_cost - applied_cost
        self.confidence.update(1.0 if decision.correct else 0.0)
        self.model.observe(fvector, ideal)
        self.model.refit()
        return decision

    # -- reporting ------------------------------------------------------------
    def selection_accuracy(self) -> float:
        scored = [d for d in self.decisions if d.correct is not None]
        if not scored:
            return 0.0
        return sum(1 for d in scored if d.correct) / len(scored)
