"""The strategy predictor: discriminative, confidence-gated prediction.

Implements the decision side of Figure 7: given the current models and
confidence, either produce a predicted optimization strategy for a new
input (confidence above threshold) or decline (fall back to the reactive
optimizer). The overhead model accounts the virtual cost of feature
extraction and prediction, which the paper measures in §V-B.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..aos.strategy import LevelStrategy
from ..xicl.features import FeatureVector
from .confidence import ConfidenceTracker
from .model_builder import ModelBuilder


@dataclass(frozen=True)
class OverheadModel:
    """Virtual-cycle cost of the evolvable VM's extra machinery.

    The defaults keep overhead well under 1% for realistic runs (the paper
    reports <0.4% typical, 1.38% worst), while remaining visible to the
    overhead experiment.
    """

    per_feature_cycles: float = 105.0
    per_predicted_method_cycles: float = 45.0
    base_translation_cycles: float = 350.0

    def extraction_cycles(self, fvector: FeatureVector) -> float:
        return self.base_translation_cycles + self.per_feature_cycles * len(fvector)

    def prediction_cycles(self, strategy: LevelStrategy) -> float:
        return self.per_predicted_method_cycles * len(strategy)


class StrategyPredictor:
    """Couples the model builder with the confidence gate.

    Sits on the run-start hot path: when the gate is open, the per-method
    levels come from one pass of the builder's flattened prediction
    forest (:meth:`ModelBuilder.predict`) — never from model
    construction, which happens explicitly at run end.
    """

    def __init__(
        self,
        models: ModelBuilder,
        confidence: ConfidenceTracker,
        overhead: OverheadModel = OverheadModel(),
    ):
        self.models = models
        self.confidence = confidence
        self.overhead = overhead

    def maybe_predict(
        self, fvector: FeatureVector
    ) -> tuple[LevelStrategy | None, float]:
        """Predict if confident; returns ``(strategy_or_None, cycles_spent)``.

        Declines (returns None) when the confidence gate is closed or no
        models exist yet — the caller falls back to the default reactive
        optimization scheme.
        """
        if not self.confidence.confident or len(self.models) == 0:
            return None, 0.0
        strategy = self.models.predict(fvector)
        if len(strategy) == 0:
            return None, 0.0
        return strategy, self.overhead.prediction_cycles(strategy)

    def posterior_predict(self, fvector: FeatureVector) -> LevelStrategy:
        """Unconditional prediction, used at run end for self-evaluation
        when the gate was closed (the else-branch of Figure 7)."""
        if len(self.models) == 0:
            return LevelStrategy({})
        return self.models.predict(fvector)
