"""Confidence tracking for discriminative prediction.

The confidence of the predictive models is the decayed average of the
prediction accuracies observed on previous executions::

    conf ← (1 − γ)·conf + γ·acc

The decay factor γ weights recent runs against older history; the
confidence threshold TH_c gates prediction — *only predict when confident*.
The paper uses 0.7 for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Paper defaults (§IV-C).
DEFAULT_GAMMA = 0.7
DEFAULT_THRESHOLD = 0.7


@dataclass
class ConfidenceTracker:
    """Decayed-average confidence with a prediction gate."""

    gamma: float = DEFAULT_GAMMA
    threshold: float = DEFAULT_THRESHOLD
    value: float = 0.0
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def update(self, accuracy: float) -> float:
        """Fold one run's prediction accuracy in; returns the new value."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy out of range: {accuracy}")
        self.value = (1.0 - self.gamma) * self.value + self.gamma * accuracy
        self.history.append(self.value)
        return self.value

    @property
    def confident(self) -> bool:
        """True when the gate opens: conf > TH_c."""
        return self.value > self.threshold
