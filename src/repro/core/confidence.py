"""Confidence tracking and drift detection for discriminative prediction.

The confidence of the predictive models is the decayed average of the
prediction accuracies observed on previous executions::

    conf ← (1 − γ)·conf + γ·acc

The decay factor γ weights recent runs against older history; the
confidence threshold TH_c gates prediction — *only predict when confident*.
The paper uses 0.7 for both.

The paper's single global decayed average cannot tell *which* model went
stale when the input distribution moves, so the drift-aware layer
(``docs/robustness.md``, "Drift and rollback") adds two pieces on top:

- :class:`PageHinkley` — a windowed changepoint detector over an
  accuracy stream: it flags a *sustained drop* relative to the stream's
  own running mean, not any single bad run.
- :class:`DriftMonitor` — per-method confidence decay feeding one
  Page–Hinkley detector per method. When a method's smoothed prediction
  accuracy collapses, the monitor names exactly that method, and the
  evolvable VM reacts with a *targeted* response (forget that method's
  stale regime, refit only its tree) instead of degrading the global
  average and re-learning everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Paper defaults (§IV-C).
DEFAULT_GAMMA = 0.7
DEFAULT_THRESHOLD = 0.7

#: Drift-detection defaults, tuned so a stationary noisy stream stays
#: quiet but a regime shift fires within a handful of runs (tests pin
#: both sides).
DEFAULT_DRIFT_DELTA = 0.02
DEFAULT_DRIFT_LAMBDA = 0.35
DEFAULT_DRIFT_MIN_SAMPLES = 5
#: Smoothing for the per-method accuracy series the detectors watch —
#: lighter than the paper's γ = 0.7 so one unlucky run cannot swing it.
DEFAULT_METHOD_GAMMA = 0.3


@dataclass
class ConfidenceTracker:
    """Decayed-average confidence with a prediction gate."""

    gamma: float = DEFAULT_GAMMA
    threshold: float = DEFAULT_THRESHOLD
    value: float = 0.0
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")

    def update(self, accuracy: float) -> float:
        """Fold one run's prediction accuracy in; returns the new value."""
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy out of range: {accuracy}")
        self.value = (1.0 - self.gamma) * self.value + self.gamma * accuracy
        self.history.append(self.value)
        return self.value

    @property
    def confident(self) -> bool:
        """True when the gate opens: conf > TH_c."""
        return self.value > self.threshold


@dataclass
class PageHinkley:
    """Page–Hinkley changepoint detector for downward shifts.

    Accumulates how far the stream has fallen below its own running mean
    (minus a tolerance ``delta``); when the cumulative deficit exceeds
    ``lam`` after at least ``min_samples`` observations, a changepoint is
    declared and the detector re-arms from the current sample — so it
    can catch the *next* shift too. A stream that merely sits at a low
    level never fires: the running mean tracks it down.
    """

    delta: float = DEFAULT_DRIFT_DELTA
    lam: float = DEFAULT_DRIFT_LAMBDA
    min_samples: int = DEFAULT_DRIFT_MIN_SAMPLES
    n: int = 0
    mean: float = 0.0
    cum: float = 0.0

    def __post_init__(self) -> None:
        if self.delta < 0.0:
            raise ValueError("delta must be >= 0")
        if self.lam <= 0.0:
            raise ValueError("lam must be > 0")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")

    def update(self, x: float) -> bool:
        """Fold one observation in; True when a changepoint fires."""
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cum = max(0.0, self.cum + (self.mean - x - self.delta))
        if self.n >= self.min_samples and self.cum > self.lam:
            self.reset(anchor=x)
            return True
        return False

    def reset(self, anchor: float | None = None) -> None:
        """Re-arm after a detection (or to start over).

        *anchor* seeds the running mean at the post-shift level, so the
        detector immediately tracks the new regime instead of dragging
        pre-shift history along.
        """
        self.cum = 0.0
        if anchor is None:
            self.n = 0
            self.mean = 0.0
        else:
            self.n = 1
            self.mean = anchor


class DriftMonitor:
    """Per-method confidence decay + one Page–Hinkley detector each.

    Replaces the *diagnostic* role of the global decayed average: the
    global tracker still gates prediction (paper semantics, untouched),
    while this monitor watches each profiled method's own smoothed
    prediction accuracy and names the methods whose accuracy has
    *collapsed relative to their own history* — the targeted-refit and
    rollback machinery keys off those names.
    """

    def __init__(
        self,
        gamma: float = DEFAULT_METHOD_GAMMA,
        delta: float = DEFAULT_DRIFT_DELTA,
        lam: float = DEFAULT_DRIFT_LAMBDA,
        min_samples: int = DEFAULT_DRIFT_MIN_SAMPLES,
    ) -> None:
        if not 0.0 < gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma
        self._detector_params = (delta, lam, min_samples)
        self._values: dict[str, float] = {}
        self._detectors: dict[str, PageHinkley] = {}
        #: Total changepoints declared across all methods.
        self.detections = 0
        #: (run ordinal, methods) per observation that fired.
        self.events: list[tuple[int, tuple[str, ...]]] = []
        self._observations = 0

    def observe(self, per_method: dict[str, float]) -> tuple[str, ...]:
        """Fold one run's per-method accuracies in.

        Returns the (sorted) methods whose detector fired on this run —
        empty on the vast majority of runs. Iteration is over sorted
        method names, so the monitor's state is independent of dict
        ordering (bit-identity across engines).
        """
        self._observations += 1
        drifted: list[str] = []
        for method in sorted(per_method):
            acc = per_method[method]
            if not 0.0 <= acc <= 1.0:
                raise ValueError(f"accuracy out of range for {method}: {acc}")
            prev = self._values.get(method)
            if prev is None:
                smoothed = acc
                delta, lam, min_samples = self._detector_params
                self._detectors[method] = PageHinkley(
                    delta=delta, lam=lam, min_samples=min_samples
                )
            else:
                smoothed = (1.0 - self.gamma) * prev + self.gamma * acc
            self._values[method] = smoothed
            if self._detectors[method].update(smoothed):
                drifted.append(method)
        if drifted:
            self.detections += len(drifted)
            self.events.append((self._observations, tuple(drifted)))
        return tuple(drifted)

    def reset(self) -> None:
        """Forget all per-method state (smoothed values and detectors).

        Called after a rollback or forced re-train: the restored models
        answer differently, so detector baselines built against the
        rolled-back generation would be noise. Cumulative counters
        (:attr:`detections`, :attr:`events`) are kept — they are audit
        history, not live state.
        """
        self._values.clear()
        self._detectors.clear()

    def confidence_for(self, method: str) -> float | None:
        """Current smoothed accuracy of one method (None = never seen)."""
        return self._values.get(method)

    def snapshot(self) -> dict[str, float]:
        """All per-method smoothed accuracies, for telemetry/reports."""
        return dict(sorted(self._values.items()))
