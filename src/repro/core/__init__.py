"""The paper's contribution: the evolvable VM with cross-input learning and
discriminative prediction.

Typical use::

    from repro.core import Application, EvolvableVM, run_default, RepVM

    vm = EvolvableVM(app)
    for cmdline in production_inputs:
        outcome = vm.run(cmdline)
"""

from .accuracy import prediction_accuracy
from .application import Application, Launcher
from .confidence import (
    ConfidenceTracker,
    DEFAULT_GAMMA,
    DEFAULT_THRESHOLD,
)
from .evolvable import EvolvableVM, RepVM, RunOutcome, run_default
from .gc_selection import GCDecision, GCSelector
from .model_builder import ModelBuilder
from .predictor import OverheadModel, StrategyPredictor
from .records import (
    RunRecord,
    load_state,
    load_state_file,
    save_state,
    state_to_dict,
)

__all__ = [
    "Application",
    "ConfidenceTracker",
    "DEFAULT_GAMMA",
    "DEFAULT_THRESHOLD",
    "EvolvableVM",
    "GCDecision",
    "GCSelector",
    "Launcher",
    "ModelBuilder",
    "OverheadModel",
    "RepVM",
    "RunOutcome",
    "RunRecord",
    "StrategyPredictor",
    "load_state",
    "load_state_file",
    "prediction_accuracy",
    "run_default",
    "save_state",
    "state_to_dict",
]
