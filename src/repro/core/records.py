"""Persistence of the evolvable VM's learned state across processes.

The paper's VM evolves across *production runs* — separate process
lifetimes. This module serializes what must survive: the per-method
training datasets (feature rows + ideal levels) and the confidence value.
Models are rebuilt from data on load (they are cheap to refit and this
keeps the format version-stable).

State is persisted through the crash-safe envelope
(:mod:`repro.resilience.envelope`): atomic publish, versioned header,
content checksum. Loading is **never fatal**: a missing, torn,
bit-flipped, or semantically invalid state file is quarantined to a
``.quarantine/`` sibling with a machine-readable reason, the decision is
recorded in a :class:`~repro.resilience.degradation.DegradationReport`,
and the VM boots with empty records — exactly the paper's low-confidence
path, where the reactive adaptive optimizer carries the run. State is
also applied **transactionally**: the payload is fully parsed and staged
before the VM is touched, so a corrupt file can never leave a VM
half-restored.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..aos.strategy import LevelStrategy
from ..resilience.degradation import DegradationReport
from ..resilience.envelope import (
    REAL_FS,
    EnvelopeError,
    FileSystem,
    decode_envelope,
    encode_envelope,
)
from ..resilience.quarantine import quarantine_file
from ..xicl.features import FeatureKind, FeatureVector
from .evolvable import EvolvableVM

FORMAT_VERSION = 1

#: Envelope kind tag for persisted VM state.
STATE_KIND = "vm-state"


@dataclass(frozen=True)
class RunRecord:
    """A compact, serializable summary of one evolvable run."""

    run_index: int
    cmdline: str
    total_cycles: float
    overhead_cycles: float
    accuracy: float | None
    confidence_after: float | None
    applied_prediction: bool

    def to_dict(self) -> dict:
        return {
            "run_index": self.run_index,
            "cmdline": self.cmdline,
            "total_cycles": self.total_cycles,
            "overhead_cycles": self.overhead_cycles,
            "accuracy": self.accuracy,
            "confidence_after": self.confidence_after,
            "applied_prediction": self.applied_prediction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(**data)


def state_to_dict(vm: EvolvableVM) -> dict:
    """Serialize *vm*'s learned state (models' data + confidence)."""
    methods: dict[str, dict] = {}
    for method in vm.models.method_names:
        model = vm.models.model_for(method)
        ds = model.dataset
        methods[method] = {
            "columns": list(ds.columns),
            "kinds": [ds.kind_of(c).value for c in ds.columns],
            "rows": [
                {"values": list(row.values), "label": row.label}
                for row in ds.rows
            ],
        }
    return {
        "format": FORMAT_VERSION,
        "application": vm.app.name,
        "confidence": vm.confidence.value,
        "gamma": vm.confidence.gamma,
        "threshold": vm.confidence.threshold,
        "run_count": vm.run_count,
        "methods": methods,
    }


def _stage_state(vm: EvolvableVM, state: dict):
    """Parse *state* completely without touching *vm*.

    Returns ``(confidence, run_count, observations)`` where observations
    is a list of ``(FeatureVector, LevelStrategy)`` pairs ready to apply.
    Raises ``ValueError``/``KeyError``/``TypeError`` on any invalid
    payload — crucially *before* any VM mutation, so a bad file can
    never leave the VM half-restored.
    """
    if state.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported state format {state.get('format')!r}")
    if state.get("application") != vm.app.name:
        raise ValueError(
            f"state is for {state.get('application')!r}, VM runs {vm.app.name!r}"
        )
    confidence = float(state["confidence"])
    run_count = int(state["run_count"])
    observations: list[tuple[FeatureVector, LevelStrategy]] = []
    for method, payload in state["methods"].items():
        columns = payload["columns"]
        kinds = [FeatureKind(kind) for kind in payload["kinds"]]
        for row in payload["rows"]:
            vector = FeatureVector()
            for name, kind, value in zip(columns, kinds, row["values"]):
                if value is None:
                    continue
                vector.append_value(name, value, kind)
            observations.append(
                (vector, LevelStrategy({method: int(row["label"])}))
            )
    return confidence, run_count, observations


def load_state(vm: EvolvableVM, state: dict) -> None:
    """Restore serialized state into a freshly constructed *vm*.

    The VM must wrap the same application (checked by name). Parsing is
    staged: nothing is applied unless the whole payload is valid.
    """
    confidence, run_count, observations = _stage_state(vm, state)
    vm.confidence.value = confidence
    vm.run_count = run_count
    for vector, strategy in observations:
        vm.models.observe_run(vector, strategy)
    # One offline-construction pass rebuilds every method tree (shared
    # presort across methods) and compiles the flattened prediction
    # forest, so the first run after restore predicts without training.
    vm.models.refit_all(jobs=vm.refit_jobs)


def restore_state(vm: EvolvableVM, state: dict) -> None:
    """Replace a **live** VM's learned state wholesale (the rollback path).

    :func:`load_state` assumes a freshly constructed VM; this variant
    first discards whatever the VM has learned since, then replays the
    snapshot. The parse is staged exactly like a load, so an invalid
    snapshot raises *before* any mutation — a failed rollback leaves the
    current (bad but functional) generation serving, never a half-wiped
    VM. The drift monitor is re-armed too: detector baselines built
    against the rolled-back generation would be noise.
    """
    confidence, run_count, observations = _stage_state(vm, state)
    vm.models.reset()
    vm.confidence.value = confidence
    vm.run_count = run_count
    for vector, strategy in observations:
        vm.models.observe_run(vector, strategy)
    vm.models.refit_all(jobs=vm.refit_jobs)
    if vm.drift is not None:
        vm.drift.reset()


def save_state(
    vm: EvolvableVM,
    path: str,
    *,
    fs: FileSystem = REAL_FS,
    report: DegradationReport | None = None,
) -> bool:
    """Atomically persist *vm*'s learned state inside an envelope.

    Returns ``True`` on success. An I/O failure (full disk, stale lock)
    is not fatal to the VM — learning simply does not persist this run;
    the failure is recorded in *report* and ``False`` is returned.
    """
    payload = json.dumps(state_to_dict(vm), sort_keys=True).encode("utf-8")
    try:
        fs.write_bytes_atomic(path, encode_envelope(payload, STATE_KIND))
    except OSError as exc:
        if report is not None:
            report.record(
                "state", "store-failed", type(exc).__name__,
                detail=str(exc), path=path,
            )
        return False
    return True


def load_state_file(
    vm: EvolvableVM,
    path: str,
    *,
    fs: FileSystem = REAL_FS,
    report: DegradationReport | None = None,
) -> bool:
    """Restore *vm* from *path*; never raises on a bad or missing file.

    Returns ``True`` when state was fully restored. Any failure — missing
    file, I/O error, torn/bit-flipped envelope, invalid JSON, wrong
    application, malformed rows — leaves the VM exactly as constructed
    (empty records: the reactive adaptive optimizer runs, the paper's
    low-confidence path), quarantines the offending file, and records the
    fallback in *report*.

    Plain-JSON state files written before the envelope existed still
    load (legacy fallback), so upgrading does not discard learning.
    """
    try:
        blob = fs.read_bytes(path)
    except FileNotFoundError:
        if report is not None:
            report.record(
                "state", "cold-start", "missing",
                detail="no state file; starting with empty records",
                path=path,
            )
        return False
    except OSError as exc:
        if report is not None:
            report.record(
                "state", "cold-start", type(exc).__name__,
                detail=str(exc), path=path,
            )
        return False

    reason, detail = "corrupt", ""
    try:
        try:
            payload = decode_envelope(blob, expected_kind=STATE_KIND)
        except EnvelopeError as exc:
            if exc.reason in ("bad-magic", "truncated-header") and (
                blob.lstrip()[:1] == b"{"
            ):
                payload = blob  # legacy pre-envelope plain JSON
            else:
                reason = exc.reason
                raise
        state = json.loads(payload)
        load_state(vm, state)
        return True
    except EnvelopeError as exc:
        detail = str(exc)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        reason, detail = "invalid-json", str(exc)
    except (KeyError, ValueError, TypeError) as exc:
        reason, detail = "invalid-state", f"{type(exc).__name__}: {exc}"
    except OSError as exc:
        reason, detail = type(exc).__name__, str(exc)

    quarantine_file(
        path, reason, detail, component="state", fs=fs, report=report
    )
    if report is not None:
        report.record(
            "state", "cold-start", reason,
            detail="state quarantined; booting with empty records "
            "(reactive adaptive optimizer)",
            path=path,
        )
    return False
