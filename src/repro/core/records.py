"""Persistence of the evolvable VM's learned state across processes.

The paper's VM evolves across *production runs* — separate process
lifetimes. This module serializes what must survive: the per-method
training datasets (feature rows + ideal levels) and the confidence value.
Models are rebuilt from data on load (they are cheap to refit and this
keeps the format version-stable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..aos.strategy import LevelStrategy
from ..xicl.features import FeatureKind, FeatureVector
from .evolvable import EvolvableVM

FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunRecord:
    """A compact, serializable summary of one evolvable run."""

    run_index: int
    cmdline: str
    total_cycles: float
    overhead_cycles: float
    accuracy: float | None
    confidence_after: float | None
    applied_prediction: bool

    def to_dict(self) -> dict:
        return {
            "run_index": self.run_index,
            "cmdline": self.cmdline,
            "total_cycles": self.total_cycles,
            "overhead_cycles": self.overhead_cycles,
            "accuracy": self.accuracy,
            "confidence_after": self.confidence_after,
            "applied_prediction": self.applied_prediction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        return cls(**data)


def state_to_dict(vm: EvolvableVM) -> dict:
    """Serialize *vm*'s learned state (models' data + confidence)."""
    methods: dict[str, dict] = {}
    for method in vm.models.method_names:
        model = vm.models.model_for(method)
        ds = model.dataset
        methods[method] = {
            "columns": list(ds.columns),
            "kinds": [ds.kind_of(c).value for c in ds.columns],
            "rows": [
                {"values": list(row.values), "label": row.label}
                for row in ds.rows
            ],
        }
    return {
        "format": FORMAT_VERSION,
        "application": vm.app.name,
        "confidence": vm.confidence.value,
        "gamma": vm.confidence.gamma,
        "threshold": vm.confidence.threshold,
        "run_count": vm.run_count,
        "methods": methods,
    }


def load_state(vm: EvolvableVM, state: dict) -> None:
    """Restore serialized state into a freshly constructed *vm*.

    The VM must wrap the same application (checked by name).
    """
    if state.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported state format {state.get('format')!r}")
    if state.get("application") != vm.app.name:
        raise ValueError(
            f"state is for {state.get('application')!r}, VM runs {vm.app.name!r}"
        )
    vm.confidence.value = float(state["confidence"])
    vm.run_count = int(state["run_count"])
    for method, payload in state["methods"].items():
        columns = payload["columns"]
        kinds = [FeatureKind(kind) for kind in payload["kinds"]]
        for row in payload["rows"]:
            vector = FeatureVector()
            for name, kind, value in zip(columns, kinds, row["values"]):
                if value is None:
                    continue
                vector.append_value(name, value, kind)
            vm.models.observe_run(
                vector, LevelStrategy({method: int(row["label"])})
            )
    vm.models.refit_all()


def save_state(vm: EvolvableVM, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state_to_dict(vm), handle)


def load_state_file(vm: EvolvableVM, path: str) -> None:
    with open(path, "r", encoding="utf-8") as handle:
        load_state(vm, json.load(handle))
