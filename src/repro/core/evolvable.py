"""The evolvable virtual machine: the paper's Figure 7 loop, plus the
Default and Rep scenario drivers it is evaluated against.

One :class:`EvolvableVM` instance persists across the production runs of
one application. Each :meth:`run`:

1. extracts the input's feature vector through the XICL translator;
2. if confidence exceeds the threshold, predicts a per-method optimization
   strategy and applies it proactively (each predicted method is
   recompiled to its level right after its first baseline compile; the
   reactive optimizer is left in charge of unpredicted methods only);
3. otherwise runs under the default reactive optimizer;
4. after the run, computes the posterior *ideal* strategy from the sampled
   profile via the cost-benefit model, scores the (actual or would-be)
   prediction against it, folds the accuracy into the decayed confidence,
   and updates the per-method models (offline stage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..aos.controller import AdaptiveController, PairPlanController
from ..aos.cost_benefit import CostBenefitModel
from ..aos.repository import ProfileRepository
from ..aos.strategy import LevelStrategy
from ..learning.tree import TreeParams
from ..vm.config import DEFAULT_CONFIG, VMConfig
from ..vm.heap import DEFAULT_GC_POLICY, GCCostModel
from ..vm.interpreter import Interpreter
from ..vm.opt.jit import JITCompiler
from ..vm.profiles import RunProfile
from ..xicl.features import FeatureVector
from .accuracy import per_method_accuracy, prediction_accuracy
from .application import Application
from .confidence import (
    DEFAULT_GAMMA,
    DEFAULT_THRESHOLD,
    ConfidenceTracker,
    DriftMonitor,
)
from .gc_selection import GCDecision, GCSelector
from .model_builder import ModelBuilder
from .predictor import OverheadModel, StrategyPredictor


@dataclass
class RunOutcome:
    """Everything observed about one execution under one scenario."""

    scenario: str
    cmdline: str
    result: object
    profile: RunProfile
    overhead_cycles: float = 0.0
    fvector: FeatureVector | None = None
    predicted: LevelStrategy | None = None
    ideal: LevelStrategy | None = None
    accuracy: float | None = None
    confidence_before: float | None = None
    confidence_after: float | None = None
    applied_prediction: bool = False
    gc_decision: GCDecision | None = None
    #: Methods whose changepoint detector fired on this run (almost
    #: always empty; non-empty means the VM trimmed their stale history
    #: and scheduled targeted refits).
    drift_methods: tuple[str, ...] = ()

    @property
    def total_cycles(self) -> float:
        """Run time including the evolvable machinery's overhead."""
        return self.profile.total_cycles + self.overhead_cycles

    def speedup_vs(self, baseline: "RunOutcome") -> float:
        """This run's speedup relative to *baseline* (same input)."""
        return baseline.total_cycles / self.total_cycles


class EvolvableVM:
    """A virtual machine that evolves across the runs of one application."""

    def __init__(
        self,
        app: Application,
        config: VMConfig = DEFAULT_CONFIG,
        gamma: float = DEFAULT_GAMMA,
        threshold: float = DEFAULT_THRESHOLD,
        tree_params: TreeParams = TreeParams(),
        overhead: OverheadModel = OverheadModel(),
        min_rows: int = 2,
        jit: JITCompiler | None = None,
        select_gc: bool = False,
        gc_model: GCCostModel = GCCostModel(),
        default_gc_policy: str = DEFAULT_GC_POLICY,
        cache_translations: bool = False,
        learning_engine: str = "auto",
        refit_jobs: int = 1,
        defer_refits: bool = False,
        engine: str = "auto",
        prior=None,
        detect_drift: bool = True,
        drift_window: int = 12,
        drift_monitor: DriftMonitor | None = None,
    ):
        self.app = app
        self.config = config
        #: Execution-engine knob, forwarded to every Interpreter this VM
        #: constructs ("auto"/"compiled"/"fast"/"reference"). Note the
        #: adaptive controller attaches sampler listeners, so "auto" runs
        #: resolve to the fast engine; the closure-compiled tier serves
        #: listener-free replay/serving paths.
        self.engine = engine
        self.jit = jit if jit is not None else JITCompiler(app.program, config)
        self.cost_benefit = CostBenefitModel(self.jit, config.sample_interval)
        #: Training-engine knob for the learning layer ("auto"/"fast"/
        #: "reference", mirroring Interpreter(engine=)); refit_jobs > 1
        #: fans the end-of-run model refits across worker processes.
        self.learning_engine = learning_engine
        self.refit_jobs = refit_jobs
        #: Optional cross-program prior
        #: (:class:`~repro.learning.forge.prior.CrossProgramPrior`, or any
        #: object with ``predict_program(program, args) -> dict[str, int]``):
        #: per-method cold-start advice. Consulted per run — when the
        #: confidence-gated predictor declines (i.e. before this
        #: application has its own history), :meth:`run` asks the prior
        #: with the program's static features *plus this run's entry
        #: arguments* (the ``i_*`` columns of the forge schema), so the
        #: advice is input-discriminative. The static (argument-free)
        #: advice additionally seeds the per-method fallback for
        #: still-unfitted models inside gated predictions. Level −1
        #: advice means "stay baseline": the first-invocation hook
        #: ignores it and the adaptive controller's exclude set stops
        #: reactive promotion.
        self.prior = prior
        prior_levels = (
            prior.predict_program(app.program) if prior is not None else {}
        )
        self.models = ModelBuilder(
            tree_params,
            min_rows=min_rows,
            engine=learning_engine,
            prior_levels=prior_levels,
        )
        self.confidence = ConfidenceTracker(gamma=gamma, threshold=threshold)
        self.predictor = StrategyPredictor(self.models, self.confidence, overhead)
        self.translator = app.make_translator()
        self.gc_model = gc_model
        self.default_gc_policy = default_gc_policy
        self.gc_selector = (
            GCSelector(
                gamma=gamma,
                threshold=threshold,
                tree_params=tree_params,
                gc_model=gc_model,
                default_policy=default_gc_policy,
                min_rows=min_rows,
                engine=learning_engine,
            )
            if select_gc
            else None
        )
        self.run_count = 0
        self.outcomes: list[RunOutcome] = []
        #: Optional memoization of (cmdline → feature vector): a server
        #: handling many identical request shapes amortizes translation;
        #: only cache misses pay extraction overhead. Off by default — the
        #: paper's per-run protocol always translates.
        self.cache_translations = cache_translations
        self._translation_cache: dict[str, FeatureVector] = {}
        #: Serving mode (see ``docs/serving.md``): when True, :meth:`run`
        #: still observes every finished run but skips the end-of-run
        #: ``refit_all`` — model construction happens only at an explicit
        #: swap point (:class:`~repro.serving.tenant.Tenant.swap`), so
        #: predictions answer from the last deployed model generation.
        self.defer_refits = defer_refits
        #: Per-method changepoint detection (see ``docs/robustness.md``,
        #: "Drift and rollback"): the global tracker keeps gating
        #: prediction exactly as in the paper, while the monitor watches
        #: each method's own smoothed accuracy and names the ones whose
        #: model went stale. ``detect_drift=False`` restores the
        #: pre-drift-layer behavior bit-for-bit.
        if drift_monitor is not None:
            self.drift = drift_monitor
        elif detect_drift:
            self.drift = DriftMonitor()
        else:
            self.drift = None
        #: Observations kept per drifted method when its history trims —
        #: roughly the post-shift window the refit should learn from.
        self.drift_window = drift_window

    # -- the Figure 7 loop ----------------------------------------------------
    def run(
        self,
        cmdline: str | list[str],
        rng_seed: int = 0,
        runtime_features: dict[str, object] | None = None,
    ) -> RunOutcome:
        """Execute the application once, learn from it, and return the
        outcome. Appends to :attr:`outcomes`.

        *runtime_features* models the paper's ``updateV``/``done`` channel:
        values the application computes during initialization (or at an
        interactive point) that should join the input feature vector before
        prediction. They are applied through the translator's channel, and
        ``done()`` is signalled before the strategy predictor runs.
        """
        tokens = self.app.split_cmdline(cmdline)
        cmd_str = cmdline if isinstance(cmdline, str) else " ".join(cmdline)
        overhead_cycles = 0.0
        fvector: FeatureVector | None = None
        predicted: LevelStrategy | None = None

        if self.translator is not None:
            cached = (
                self._translation_cache.get(cmd_str)
                if self.cache_translations and not runtime_features
                else None
            )
            if cached is not None:
                fvector = cached
            else:
                fvector = self.translator.build_fvector(tokens)
                if runtime_features:
                    self.translator.channel.update_many(runtime_features)
                    self.translator.channel.done()
                overhead_cycles += self.predictor.overhead.extraction_cycles(
                    fvector
                )
                if self.cache_translations and not runtime_features:
                    self._translation_cache[cmd_str] = fvector
            predicted, predict_cycles = self.predictor.maybe_predict(fvector)
            overhead_cycles += predict_cycles
        # Without an XICL spec the VM behaves exactly like the default one.

        args = (
            self.app.entry_args(tokens, fvector)
            if fvector is not None
            else self.app.launcher(tokens, FeatureVector(), self.app.filesystem)
        )
        if fvector is not None and predicted is None and self.prior is not None:
            # Cold start: no confident in-app model yet. Ask the
            # cross-program prior; its feature row sees the program's
            # statics plus this run's entry arguments, so the advice
            # discriminates between inputs even with zero history.
            advice = self.prior.predict_program(self.app.program, args)
            if advice:
                predicted = LevelStrategy(dict(advice))

        conf_before = self.confidence.value
        gc_decision: GCDecision | None = None
        gc_policy = self.default_gc_policy
        if self.gc_selector is not None and fvector is not None:
            gc_decision = self.gc_selector.select(fvector)
            gc_policy = gc_decision.applied
        interp = Interpreter(
            self.app.program,
            config=self.config,
            rng_seed=rng_seed,
            jit=self.jit,
            first_invocation_hook=(
                predicted.level_for if predicted is not None else None
            ),
            gc_policy=gc_policy,
            gc_model=self.gc_model,
            engine=self.engine,
        )
        exclude = (
            frozenset(predicted.levels) if predicted is not None else frozenset()
        )
        AdaptiveController(interp, exclude=exclude)
        profile = interp.run(args)

        outcome = RunOutcome(
            scenario="evolve",
            cmdline=cmd_str,
            result=interp.result,
            profile=profile,
            overhead_cycles=overhead_cycles,
            fvector=fvector,
            predicted=predicted,
            applied_prediction=predicted is not None,
            confidence_before=conf_before,
            gc_decision=gc_decision,
        )

        if self.translator is not None and fvector is not None:
            # Self-evaluation: score the applied prediction, or the
            # would-be prediction when the gate was closed.
            scored = (
                predicted
                if predicted is not None
                else self.predictor.posterior_predict(fvector)
            )
            ideal = self.cost_benefit.ideal_strategy(profile)
            accuracy = prediction_accuracy(scored, ideal, profile)
            self.confidence.update(accuracy)
            drifted: tuple[str, ...] = ()
            if self.drift is not None:
                drifted = self.drift.observe(
                    per_method_accuracy(scored, ideal, profile)
                )
            # Offline stage: extend and (unless deferred to an explicit
            # serving-layer swap) rebuild the models — the run-start
            # prediction above reads the flattened forest compiled here.
            self.models.observe_run(fvector, ideal)
            if drifted:
                # Drift response: the pre-shift history of exactly these
                # methods misleads their trees. Trim each to the recent
                # window (this run's observation included) and, in
                # serving mode where refits are otherwise deferred to a
                # swap point, refit just the affected trees now — stale
                # drifted models must not keep answering until the next
                # scheduled swap.
                for method in drifted:
                    self.models.trim_method_history(method, self.drift_window)
                if self.defer_refits:
                    self.models.refit_methods(drifted)
            if not self.defer_refits:
                self.models.refit_all(jobs=self.refit_jobs)
            outcome.predicted = scored
            outcome.ideal = ideal
            outcome.accuracy = accuracy
            outcome.confidence_after = self.confidence.value
            outcome.drift_methods = drifted

        if (
            self.gc_selector is not None
            and gc_decision is not None
            and fvector is not None
        ):
            self.gc_selector.observe(gc_decision, fvector, profile)

        self.run_count += 1
        self.outcomes.append(outcome)
        return outcome


# ---------------------------------------------------------------------------
# Scenario drivers for the comparisons (Default and Rep)
# ---------------------------------------------------------------------------

def run_default(
    app: Application,
    cmdline: str | list[str],
    config: VMConfig = DEFAULT_CONFIG,
    jit: JITCompiler | None = None,
    rng_seed: int = 0,
    engine: str = "auto",
) -> RunOutcome:
    """One run under the default (reactive) adaptive optimization scheme."""
    tokens = app.split_cmdline(cmdline)
    cmd_str = cmdline if isinstance(cmdline, str) else " ".join(cmdline)
    translator = app.make_translator()
    fvector = (
        translator.build_fvector(tokens)
        if translator is not None
        else FeatureVector()
    )
    interp = Interpreter(
        app.program, config=config, rng_seed=rng_seed, jit=jit, engine=engine
    )
    AdaptiveController(interp)
    profile = interp.run(app.entry_args(tokens, fvector))
    return RunOutcome(
        scenario="default",
        cmdline=cmd_str,
        result=interp.result,
        profile=profile,
        fvector=fvector,
    )


class RepVM:
    """The repository-based optimizer (Rep) across the runs of one app.

    Each run applies the single history-derived
    :class:`~repro.aos.strategy.PairStrategy` (input-agnostic) and then
    folds its own profile back into the repository — no confidence guard,
    exactly the unconditional prediction the paper contrasts against.
    """

    def __init__(
        self,
        app: Application,
        config: VMConfig = DEFAULT_CONFIG,
        jit: JITCompiler | None = None,
        engine: str = "auto",
    ):
        self.app = app
        self.config = config
        self.engine = engine
        self.jit = jit if jit is not None else JITCompiler(app.program, config)
        self.repository = ProfileRepository(self.jit, config.sample_interval)
        self.outcomes: list[RunOutcome] = []
        self.frozen_strategy = None  # optionally fixed (Figure 9 protocol)

    def run(self, cmdline: str | list[str], rng_seed: int = 0) -> RunOutcome:
        tokens = self.app.split_cmdline(cmdline)
        cmd_str = cmdline if isinstance(cmdline, str) else " ".join(cmdline)
        translator = self.app.make_translator()
        fvector = (
            translator.build_fvector(tokens)
            if translator is not None
            else FeatureVector()
        )
        strategy = (
            self.frozen_strategy
            if self.frozen_strategy is not None
            else self.repository.strategy()
        )
        interp = Interpreter(
            self.app.program,
            config=self.config,
            rng_seed=rng_seed,
            jit=self.jit,
            engine=self.engine,
        )
        PairPlanController(interp, strategy)
        AdaptiveController(interp, exclude=frozenset(strategy.plans))
        profile = interp.run(self.app.entry_args(tokens, fvector))
        if self.frozen_strategy is None:
            self.repository.record_run(profile)
        outcome = RunOutcome(
            scenario="rep",
            cmdline=cmd_str,
            result=interp.result,
            profile=profile,
            fvector=fvector,
            predicted=strategy.final_levels(),
            applied_prediction=len(strategy) > 0,
        )
        self.outcomes.append(outcome)
        return outcome
