"""Time-weighted prediction accuracy (§IV-C of the paper).

``accuracy = Σ_{m ∈ C} T_m / Σ_{i ∈ A} T_i`` where *A* is the set of all
methods, *C* the methods whose optimization levels were predicted
correctly, and *T* a method's running time — measured, as in Jikes, by its
timer-sample count. Runs too short to produce any samples fall back to
exact per-method work as the weight, so the metric stays defined.
"""

from __future__ import annotations

from ..aos.strategy import LevelStrategy
from ..vm.config import BASELINE_LEVEL
from ..vm.profiles import RunProfile


def prediction_accuracy(
    predicted: LevelStrategy, ideal: LevelStrategy, profile: RunProfile
) -> float:
    """Fraction of execution time spent in correctly predicted methods.

    A method absent from either strategy counts as assigned the baseline
    level (no advice executes at baseline), mirroring how the evolvable VM
    treats methods its models do not cover.
    """
    weights: dict[str, float]
    if profile.total_samples > 0:
        weights = {m: float(c) for m, c in profile.samples.items()}
    else:
        weights = dict(profile.method_work)
    total = sum(weights.values())
    if total <= 0:
        # Degenerate empty run: call it fully accurate only if the
        # strategies agree on every method either mentions.
        return 1.0 if all(predicted.agreement(ideal).values()) else 0.0
    correct = 0.0
    for method, weight in weights.items():
        want = ideal.levels.get(method, BASELINE_LEVEL)
        got = predicted.levels.get(method, BASELINE_LEVEL)
        if want == got:
            correct += weight
    return correct / total


def per_method_accuracy(
    predicted: LevelStrategy, ideal: LevelStrategy, profile: RunProfile
) -> dict[str, float]:
    """Per-method prediction correctness for this run: 1.0 when the
    method's predicted optimization level matched the ideal, 0.0 when
    it did not.

    Covers exactly the methods the run profiled (the same weight set
    :func:`prediction_accuracy` aggregates over), with the same
    baseline-level defaulting for methods absent from a strategy. The
    drift monitor smooths these binary observations per method, so a
    single wrong run never looks like a regime shift.
    """
    if profile.total_samples > 0:
        methods = profile.samples.keys()
    else:
        methods = profile.method_work.keys()
    result: dict[str, float] = {}
    for method in methods:
        want = ideal.levels.get(method, BASELINE_LEVEL)
        got = predicted.levels.get(method, BASELINE_LEVEL)
        result[method] = 1.0 if want == got else 0.0
    return result
