"""The application abstraction: a program plus its input machinery.

An :class:`Application` bundles everything the evolvable VM needs to run
one program on arbitrary command lines: the compiled program, its XICL
specification, the feature-method registry, the filesystem its inputs live
on, and a *launcher* mapping a parsed invocation to the program entry's
arguments.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Callable

from ..vm.program import Program
from ..xicl.features import FeatureVector
from ..xicl.filesystem import FileSystem, OSFileSystem
from ..xicl.methods import XFMethodRegistry
from ..xicl.spec import XICLSpec
from ..xicl.translator import XICLTranslator

#: Maps (command-line tokens, extracted features, filesystem) to the tuple
#: of arguments passed to the program's entry method.
Launcher = Callable[[list[str], FeatureVector, FileSystem], tuple]


def _no_args_launcher(
    tokens: list[str], fvector: FeatureVector, fs: FileSystem
) -> tuple:
    return ()


@dataclass
class Application:
    """One runnable application under the evolvable VM."""

    name: str
    program: Program
    spec: XICLSpec | None = None
    registry: XFMethodRegistry = field(default_factory=XFMethodRegistry)
    filesystem: FileSystem = field(default_factory=OSFileSystem)
    launcher: Launcher = _no_args_launcher

    def make_translator(self) -> XICLTranslator | None:
        """A translator for this application, or None without a spec.

        Without an XICL specification the evolvable VM cannot characterize
        inputs and falls back to the default adaptive optimizer — exactly
        the paper's fallback behaviour.
        """
        if self.spec is None:
            return None
        return XICLTranslator(
            self.spec, registry=self.registry, filesystem=self.filesystem
        )

    def split_cmdline(self, cmdline: str | list[str]) -> list[str]:
        if isinstance(cmdline, str):
            return shlex.split(cmdline)
        return list(cmdline)

    def entry_args(self, tokens: list[str], fvector: FeatureVector) -> tuple:
        return self.launcher(tokens, fvector, self.filesystem)
