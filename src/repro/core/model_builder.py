"""The model builder: per-method input→level classification trees.

One application owns one :class:`ModelBuilder`, which owns one
:class:`~repro.learning.incremental.IncrementalClassifier` per Java method.
After each run the builder observes (input feature vector → the method's
posterior ideal level); before a run it assembles a
:class:`~repro.aos.strategy.LevelStrategy` by routing the new input's
features through every method's tree.

Performance shape (the paper's premise is that both sides stay cheap):

- **Offline construction** (:meth:`refit_all`, run end): every per-method
  dataset holds the *same* feature matrix — only labels differ — so one
  :class:`~repro.learning.matrix.MatrixCache` is shared across all
  classifiers and each distinct matrix is presorted once per pass, not
  once per method. Refits optionally fan out across processes through
  :func:`~repro.experiments.parallel.map_parallel` with a deterministic
  by-method merge. After fitting, the trees are compiled into a
  :class:`~repro.learning.flat.FlatForest`.
- **Prediction** (:meth:`predict` / :meth:`predict_all`, run start): one
  pass of the flattened forest — the input vector is projected onto the
  shared column universe once and walked through every tree as flat
  arrays. Prediction never trains: stale models answer from their last
  fitted tree (``refit_all`` is the explicit, end-of-run training point).
"""

from __future__ import annotations

from ..aos.strategy import LevelStrategy
from ..learning.flat import FlatForest, compile_forest
from ..learning.incremental import IncrementalClassifier
from ..learning.matrix import MatrixCache, TrainingMatrix, matrix_key
from ..learning.tree import ENGINES, ClassificationTree, TreeParams
from ..xicl.features import FeatureVector


def _refit_group(item: tuple) -> list:
    """Worker for parallel offline construction: fit one matrix cohort.

    *item* is ``(columns, kinds, rows_x, engine, entries)`` where entries
    are ``(method, labels, params)`` — every method in the group shares
    the same feature matrix, which is presorted exactly once here.
    Returns ``[(method, root_node), ...]`` in entry order.
    """
    from ..learning.fasttree import build_tree
    from ..learning.dataset import Dataset, Row

    columns, kinds, rows_x, engine, entries = item
    out = []
    if engine == "reference":
        for method, labels, params in entries:
            ds = Dataset()
            ds._columns = list(columns)
            ds._kinds = dict(zip(columns, kinds))
            ds._rows = [
                Row(values, label) for values, label in zip(rows_x, labels)
            ]
            tree = ClassificationTree(params, engine="reference").fit(ds)
            out.append((method, tree.root))
    else:
        matrix = TrainingMatrix(columns, kinds, rows_x)
        for method, labels, params in entries:
            out.append((method, build_tree(matrix, labels, params)))
    return out


class ModelBuilder:
    """Builds and queries the per-method predictive models."""

    def __init__(
        self,
        tree_params: TreeParams = TreeParams(),
        min_rows: int = 2,
        engine: str = "auto",
        prior_levels: dict[str, int] | None = None,
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be 'auto', 'fast', or 'reference', got {engine!r}"
            )
        self.tree_params = tree_params
        self.min_rows = min_rows
        self.engine = engine
        self._models: dict[str, IncrementalClassifier] = {}
        self._matrix_cache = MatrixCache()
        self._forest: FlatForest | None = None
        #: Cross-program cold-start advice (see
        #: :class:`~repro.learning.forge.prior.CrossProgramPrior`): static
        #: per-method levels consulted only for methods that have no
        #: fitted tree yet — once a method's own model fits, its in-app
        #: prediction always wins.
        self.prior_levels = dict(prior_levels) if prior_levels else {}

    # -- learning -------------------------------------------------------------
    def observe_run(self, fvector: FeatureVector, ideal: LevelStrategy) -> None:
        """Record one finished run: its input features and ideal strategy.

        O(methods) bookkeeping only — no training, and the compiled
        forest is left in place so predictions between observe and refit
        answer from the last fitted trees.
        """
        for method, level in ideal.levels.items():
            model = self._models.get(method)
            if model is None:
                model = IncrementalClassifier(
                    self.tree_params,
                    self.min_rows,
                    engine=self.engine,
                    matrix_cache=self._matrix_cache,
                )
                self._models[method] = model
            model.observe(fvector, level)

    def refit_all(self, jobs: int = 1) -> None:
        """Offline model construction: rebuild every method's tree.

        With ``jobs > 1`` the per-method fits fan out through
        :func:`~repro.experiments.parallel.map_parallel`, grouped by
        shared feature matrix so each worker presorts its cohort's matrix
        once; results merge deterministically by method (bit-identical to
        the serial path, which a test asserts). Either way the fitted
        trees are recompiled into the flattened prediction forest.
        """
        if jobs > 1 and len(self._models) > 1:
            self._refit_parallel(jobs)
        else:
            for model in self._models.values():
                model.refit()
        self._compile_forest()

    def _refit_parallel(self, jobs: int) -> None:
        from ..experiments.parallel import map_parallel

        groups: dict[tuple, list] = {}
        skipped: list[IncrementalClassifier] = []
        for method in sorted(self._models):
            model = self._models[method]
            if len(model.dataset) < model.min_rows:
                skipped.append(model)
                continue
            try:
                key = matrix_key(model.dataset)
            except TypeError:  # unhashable feature value: fit in-process
                model.refit()
                continue
            labels = model.dataset.labels()
            groups.setdefault(key, []).append((method, labels, model.params))
        items = [
            (columns, kinds, rows_x, self.engine, entries)
            for (columns, kinds, rows_x), entries in groups.items()
        ]
        results, _ = map_parallel(_refit_group, items, jobs)
        for fitted in results:
            for method, root in fitted:
                model = self._models[method]
                tree = ClassificationTree(model.params, engine=model.engine)
                tree.root = root
                tree._dataset = model.dataset
                tree._dataset_columns = model.dataset.columns
                model.adopt_tree(tree)
                model.fit_count += 1
        for model in skipped:
            # Mirror serial refit(): too little history keeps the old tree.
            model._stale = False

    def reset(self) -> None:
        """Discard all learned state — models, presort cache, compiled
        forest — **in place**, so references other components hold (the
        strategy predictor, serving tenants) stay valid. The rollback
        path wipes the builder with this and then replays the last-good
        observations into it."""
        self._models.clear()
        self._matrix_cache = MatrixCache()
        self._forest = None

    def refit_methods(self, methods: tuple[str, ...] | list[str]) -> int:
        """Targeted offline construction: rebuild only *methods*' trees.

        The drift-response path — when the changepoint detector names
        the methods whose models went stale, only their trees refit (the
        rest of the forest answered fine and keeps its fitted trees).
        The flattened forest recompiles iff anything refit. Returns the
        number of models refit.
        """
        hit = [m for m in sorted(set(methods)) if m in self._models]
        for method in hit:
            self._models[method].refit()
        if hit:
            self._compile_forest()
        return len(hit)

    def trim_method_history(self, method: str, keep_last: int) -> int:
        """Forget one method's pre-drift observations (keep the recent
        window); returns rows dropped. Unknown methods are a no-op."""
        model = self._models.get(method)
        if model is None:
            return 0
        return model.trim_history(keep_last)

    def _compile_forest(self) -> None:
        self._forest = compile_forest(
            {
                method: model.tree
                for method, model in self._models.items()
                if model.tree is not None and model.tree.root is not None
            }
        )

    # -- prediction -------------------------------------------------------------
    @property
    def forest(self) -> FlatForest:
        """The flattened prediction forest over all fitted method trees.

        Compiled eagerly by :meth:`refit_all`; compiling here (first
        query of a builder that never refitted, e.g. right after state
        restore skipped) only flattens already-fitted trees — it never
        trains.
        """
        if self._forest is None:
            self._compile_forest()
        return self._forest

    def predict_all(self, fvector: FeatureVector) -> dict[str, object]:
        """Raw per-method predicted labels, one forest pass, no training."""
        return self.forest.predict_all(fvector)

    def predict_all_batch(
        self, fvectors: list[FeatureVector]
    ) -> list[dict[str, object]]:
        """Batched :meth:`predict_all`: one level-synchronous kernel call
        (:meth:`~repro.learning.flat.FlatForest.predict_batch`) answering
        the whole query matrix, bit-identical to calling
        :meth:`predict_all` per vector. The serving layer routes drained
        predict batches through this so a queue drain costs one kernel
        pass, not one tree descent per request. Never trains."""
        return self.forest.predict_batch(fvectors)

    def predict(self, fvector: FeatureVector) -> LevelStrategy:
        """Predicted per-method levels for the input *fvector*.

        Methods whose models lack a fitted tree fall back to
        :attr:`prior_levels` when present, and are omitted otherwise (no
        advice). Runs on the startup hot path: a single flattened-forest
        pass from the last explicit :meth:`refit_all` — never a refit.
        """
        levels = {
            method: int(label)
            for method, label in self.predict_all(fvector).items()
        }
        for method, level in self.prior_levels.items():
            if method not in levels:
                levels[method] = int(level)
        return LevelStrategy(levels)

    # -- introspection ------------------------------------------------------
    @property
    def method_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    def __len__(self) -> int:
        return len(self._models)

    def model_for(self, method: str) -> IncrementalClassifier | None:
        return self._models.get(method)

    def presort_stats(self) -> dict:
        """Shared-presort cache stats (hits = per-method fits that reused
        another method's presorted matrix)."""
        return self._matrix_cache.stats()

    def used_features(self) -> tuple[str, ...]:
        """Union of features any method model actually splits on."""
        names: list[str] = []
        for method in sorted(self._models):
            for feature in self._models[method].used_features():
                if feature not in names:
                    names.append(feature)
        return tuple(names)

    def summary(self) -> dict:
        """Pickle-safe snapshot of the model state for reporting.

        Workers of the parallel experiment engine return this instead of
        the builder itself (trees hold closures over per-app state), so
        Table-I-style reports work without the live models.
        """
        return {
            "methods_modeled": len(self._models),
            "features_total": self.raw_feature_count(),
            "features_used": list(self.used_features()),
        }

    def raw_feature_count(self) -> int:
        """Width of the raw feature vectors the models were trained on."""
        widths = [
            len(model.dataset.columns)
            for model in self._models.values()
            if len(model.dataset) > 0
        ]
        return max(widths, default=0)

    def mean_cv_accuracy(self, k: int = 5, seed: int = 0) -> float:
        """Average per-method cross-validated accuracy (model diagnostic).

        The run-loop confidence (Figure 7) is the operational quality
        measure; this CV score is the offline complement used for
        model-quality reporting and ablations.
        """
        scores = [
            model.cv_accuracy(k=k, seed=seed)
            for model in self._models.values()
            if model.n_observations >= 2
        ]
        if not scores:
            return 0.0
        return sum(scores) / len(scores)
