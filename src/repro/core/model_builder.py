"""The model builder: per-method input→level classification trees.

One application owns one :class:`ModelBuilder`, which owns one
:class:`~repro.learning.incremental.IncrementalClassifier` per Java method.
After each run the builder observes (input feature vector → the method's
posterior ideal level); before a run it assembles a
:class:`~repro.aos.strategy.LevelStrategy` by querying every method model
with the new input's features.
"""

from __future__ import annotations

from ..aos.strategy import LevelStrategy
from ..learning.incremental import IncrementalClassifier
from ..learning.tree import TreeParams
from ..xicl.features import FeatureVector


class ModelBuilder:
    """Builds and queries the per-method predictive models."""

    def __init__(self, tree_params: TreeParams = TreeParams(), min_rows: int = 2):
        self.tree_params = tree_params
        self.min_rows = min_rows
        self._models: dict[str, IncrementalClassifier] = {}

    # -- learning -------------------------------------------------------------
    def observe_run(self, fvector: FeatureVector, ideal: LevelStrategy) -> None:
        """Record one finished run: its input features and ideal strategy."""
        for method, level in ideal.levels.items():
            model = self._models.get(method)
            if model is None:
                model = IncrementalClassifier(self.tree_params, self.min_rows)
                self._models[method] = model
            model.observe(fvector, level)

    def refit_all(self) -> None:
        """Offline model construction: rebuild every method's tree."""
        for model in self._models.values():
            model.refit()

    # -- prediction -------------------------------------------------------------
    def predict(self, fvector: FeatureVector) -> LevelStrategy:
        """Predicted per-method levels for the input *fvector*.

        Methods whose models lack history are omitted (no advice).
        """
        levels: dict[str, int] = {}
        for method, model in self._models.items():
            level = model.predict(fvector)
            if level is not None:
                levels[method] = int(level)
        return LevelStrategy(levels)

    # -- introspection ------------------------------------------------------
    @property
    def method_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._models))

    def __len__(self) -> int:
        return len(self._models)

    def model_for(self, method: str) -> IncrementalClassifier | None:
        return self._models.get(method)

    def used_features(self) -> tuple[str, ...]:
        """Union of features any method model actually splits on."""
        names: list[str] = []
        for method in sorted(self._models):
            for feature in self._models[method].used_features():
                if feature not in names:
                    names.append(feature)
        return tuple(names)

    def summary(self) -> dict:
        """Pickle-safe snapshot of the model state for reporting.

        Workers of the parallel experiment engine return this instead of
        the builder itself (trees hold closures over per-app state), so
        Table-I-style reports work without the live models.
        """
        return {
            "methods_modeled": len(self._models),
            "features_total": self.raw_feature_count(),
            "features_used": list(self.used_features()),
        }

    def raw_feature_count(self) -> int:
        """Width of the raw feature vectors the models were trained on."""
        widths = [
            len(model.dataset.columns)
            for model in self._models.values()
            if len(model.dataset) > 0
        ]
        return max(widths, default=0)

    def mean_cv_accuracy(self, k: int = 5, seed: int = 0) -> float:
        """Average per-method cross-validated accuracy (model diagnostic).

        The run-loop confidence (Figure 7) is the operational quality
        measure; this CV score is the offline complement used for
        model-quality reporting and ablations.
        """
        scores = [
            model.cv_accuracy(k=k, seed=seed)
            for model in self._models.values()
            if model.n_observations >= 2
        ]
        if not scores:
            return 0.0
        return sum(scores) / len(scores)
