"""Sweep-line tree builder: the learning layer's fast training engine.

The reference builder (:meth:`ClassificationTree._grow` in
:mod:`repro.learning.tree`) rescans all of a node's rows for every
candidate threshold of every feature — O(F·V·N) per node, where V is the
number of distinct values. This builder produces **bit-identical trees**
(same splits, same thresholds, same tie-breaks, same float gains) from a
single sorted sweep per feature:

- Each numeric column is walked once in the shared presorted order from
  :class:`~repro.learning.matrix.TrainingMatrix`, maintaining incremental
  left/right label counts — O(N) per column per node after the
  once-per-program presort.
- Each categorical column is aggregated in one pass into per-category
  label counts, then candidates are read off in the reference's
  repr-sorted order.
- Children inherit per-column sorted orders by stable partition, so no
  node ever sorts anything.

Bit-identity rests on two invariants, both enforced by the equivalence
suite (``tests/test_learning_equivalence.py``): :func:`~.tree.entropy`
sums label counts in a canonical order (so count *multisets* — which
both engines agree on — give identical floats), and the gain expression
here is written exactly as in the reference (same operand order, same
``total`` including missing-value rows).
"""

from __future__ import annotations

from typing import Sequence

from ..xicl.features import FeatureKind
from .matrix import TrainingMatrix


#: Memoized entropy values, keyed by the raw tuple of label counts.
#: :func:`~.tree.entropy` reads only the counts (never the dict keys),
#: skips zeros, and already sums in canonical sorted order — so its result
#: depends only on the count multiset, every cache hit returns a float
#: bitwise equal to a fresh reference computation, and the key can be the
#: cheapest possible one (no sort, no filter; permutations of one multiset
#: simply occupy a few extra slots). Candidate evaluation revisits the
#: same small count tuples constantly; this removes most log2 traffic.
_ENTROPY_CACHE: dict[tuple, float] = {}


def _entropy_of(counts, entropy) -> float:
    """Entropy of a sequence of label counts, memoized bitwise-exactly."""
    key = tuple(counts)
    value = _ENTROPY_CACHE.get(key)
    if value is None:
        value = entropy(dict(enumerate(key)))
        if len(_ENTROPY_CACHE) >= 1 << 20:
            _ENTROPY_CACHE.clear()
        _ENTROPY_CACHE[key] = value
    return value


#: Memoized children-entropy terms. A candidate's weighted child entropy
#: ``n_left/total * E(left) + n_right/total * E(right)`` is fully
#: determined by ``(total, present-counts, left-counts)``: the right
#: counts are ``present - left``, and ``n_left``/``n_right`` are their
#: sums. The outer key ``(total, present)`` is constant for one column of
#: one node, so the sweep resolves it once and each candidate costs a
#: single inner-dict probe when warm. Misses compute the expression with
#: exactly the reference's operand order, so cached floats stay bitwise
#: equal. The builder's workload (hundreds of per-method trees over one
#: shared matrix) revisits the same tables constantly.
_CHILDREN_CACHE: dict[tuple, dict] = {}


def _children_table(total: int, present_key: tuple) -> dict:
    key = (total, present_key)
    table = _CHILDREN_CACHE.get(key)
    if table is None:
        if len(_CHILDREN_CACHE) >= 1 << 16:
            _CHILDREN_CACHE.clear()
        table = _CHILDREN_CACHE[key] = {}
    return table


def build_tree(
    matrix: TrainingMatrix,
    labels: Sequence,
    params,
    indices: Sequence[int] | None = None,
):
    """Grow a tree over *matrix* rows (optionally a subset) with *labels*.

    Returns the root :class:`~repro.learning.tree.Node` — the same node
    structure the reference builder produces, so prediction, pruning,
    rendering, and introspection are engine-agnostic.
    """
    n = matrix.n_rows
    rows = list(range(n)) if indices is None else list(indices)
    if not rows:
        raise ValueError("cannot fit a tree on an empty dataset")
    if indices is None or len(rows) == n:
        orders = [
            list(order) if order is not None else None
            for order in matrix.numeric_order
        ]
    else:
        member = set(rows)
        orders = [
            [i for i in order if i in member] if order is not None else None
            for order in matrix.numeric_order
        ]
    # Dense label codes: the split search counts labels in plain lists
    # indexed by code instead of dicts keyed by arbitrary label objects.
    # Code assignment order cannot affect the trees — entropy is computed
    # from count multisets in canonical order regardless of code.
    code_of: dict = {}
    coded: list[int] = []
    for label in labels:
        code = code_of.get(label)
        if code is None:
            code = code_of[label] = len(code_of)
        coded.append(code)
    return _grow(matrix, labels, coded, len(code_of), params, rows, orders, 0)


def _grow(matrix, labels, coded, n_codes, params, rows, orders, depth):
    from .tree import Node, entropy  # deferred: tree.py imports this module

    counts: dict[object, int] = {}
    for i in rows:
        label = labels[i]
        counts[label] = counts.get(label, 0) + 1
    majority = max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
    node = Node(label=majority, counts=counts, size=len(rows))
    if (
        len(counts) <= 1
        or len(rows) < params.min_samples_split
        or depth >= params.max_depth
    ):
        return node
    split = _best_split(matrix, coded, n_codes, rows, orders, counts, entropy)
    if split is None or split.gain < params.min_gain:
        return node
    left_rows, right_rows = _partition(matrix, rows, split)
    if (
        len(left_rows) < params.min_samples_leaf
        or len(right_rows) < params.min_samples_leaf
    ):
        return node
    left_member = set(left_rows)
    left_orders = []
    right_orders = []
    for order in orders:
        if order is None:
            left_orders.append(None)
            right_orders.append(None)
        else:
            left_orders.append([i for i in order if i in left_member])
            right_orders.append([i for i in order if i not in left_member])
    node.split = split
    node.left = _grow(
        matrix, labels, coded, n_codes, params, left_rows, left_orders, depth + 1
    )
    node.right = _grow(
        matrix, labels, coded, n_codes, params, right_rows, right_orders, depth + 1
    )
    return node


def _partition(matrix, rows, split):
    """Mirror of the reference ``_partition``: missing → larger child."""
    values = matrix.values
    index = split.column_index
    numeric = split.kind is FeatureKind.NUMERIC
    threshold = split.threshold
    left: list[int] = []
    right: list[int] = []
    pending: list[int] = []
    for i in rows:
        value = values[i][index]
        if value is None:
            pending.append(i)
        elif (value <= threshold) if numeric else (value == threshold):
            left.append(i)
        else:
            right.append(i)
    (left if len(left) >= len(right) else right).extend(pending)
    return left, right


def _best_split(matrix, coded, n_codes, rows, orders, parent_counts, entropy):
    from .tree import Split  # deferred: tree.py imports this module

    parent_entropy = _entropy_of(parent_counts.values(), entropy)
    total = len(rows)
    values = matrix.values
    best = None
    best_gain = 0.0
    for index, column in enumerate(matrix.columns):
        kind = matrix.kinds[index]
        if kind is FeatureKind.NUMERIC:
            candidates = _numeric_candidates(
                values, coded, n_codes, orders[index], index, total, entropy
            )
        else:
            candidates = _categorical_candidates(
                values, coded, n_codes, rows, matrix.category_order[index],
                index, total, entropy,
            )
        for threshold, children in candidates:
            gain = parent_entropy - children
            if best is None or gain > best_gain + 1e-12:
                best = Split(
                    column=column,
                    column_index=index,
                    kind=kind,
                    threshold=threshold,
                    gain=gain,
                )
                best_gain = gain
    return best


def _numeric_candidates(values, coded, n_codes, order, index, total, entropy):
    """Sweep a presorted numeric column, yielding every reference candidate.

    Yields ``(threshold, children_entropy)`` in ascending threshold order
    — exactly the candidates (and count multisets) the reference
    evaluates, including the float edge case where a midpoint
    ``(a + b) / 2`` rounds up to ``b`` and ``b``'s rows fall left of the
    threshold.
    """
    n_present = len(order)
    if n_present < 2:
        return
    # Group the sorted order into runs of equal values with label counts.
    group_values: list = []
    group_counts: list[list[int]] = []
    for i in order:
        value = values[i][index]
        if not group_values or value != group_values[-1]:
            group_values.append(value)
            group_counts.append([0] * n_codes)
        group_counts[-1][coded[i]] += 1
    n_groups = len(group_values)
    if n_groups < 2:
        return
    present = [0] * n_codes
    for counts in group_counts:
        for code in range(n_codes):
            present[code] += counts[code]
    table = _children_table(total, tuple(present))
    left = [0] * n_codes
    n_left = 0
    consumed = 0
    for k in range(n_groups - 1):
        threshold = (group_values[k] + group_values[k + 1]) / 2.0
        while consumed < n_groups and group_values[consumed] <= threshold:
            counts = group_counts[consumed]
            for code in range(n_codes):
                left[code] += counts[code]
                n_left += counts[code]
            consumed += 1
        n_right = n_present - n_left
        if n_left == 0 or n_right == 0:
            continue
        key = tuple(left)
        children = table.get(key)
        if children is None:
            children = table[key] = (
                n_left / total * _entropy_of(key, entropy)
                + n_right / total * _entropy_of(
                    tuple(p - l for p, l in zip(present, left)), entropy
                )
            )
        yield threshold, children


def _categorical_candidates(
    values, coded, n_codes, rows, category_order, index, total, entropy
):
    """One aggregation pass, then candidates in the reference's order."""
    cat_counts: dict = {}
    present = [0] * n_codes
    n_present = 0
    for i in rows:
        value = values[i][index]
        if value is None:
            continue
        n_present += 1
        counts = cat_counts.get(value)
        if counts is None:
            counts = cat_counts[value] = [0] * n_codes
        code = coded[i]
        counts[code] += 1
        present[code] += 1
    if n_present < 2:
        return
    table = _children_table(total, tuple(present))
    for category in category_order:
        counts = cat_counts.get(category)
        if counts is None:
            continue
        n_left = sum(counts)
        n_right = n_present - n_left
        if n_left == 0 or n_right == 0:
            continue
        key = tuple(counts)
        children = table.get(key)
        if children is None:
            children = table[key] = (
                n_left / total * _entropy_of(key, entropy)
                + n_right / total * _entropy_of(
                    tuple(p - c for p, c in zip(present, counts)), entropy
                )
            )
        yield category, children
