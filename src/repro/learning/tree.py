"""Classification trees (CART-style, entropy-driven), from scratch.

The paper selects classification trees for their simplicity, mixed
categorical/numeric feature handling, interpretability, and — crucially —
*automatic feature selection*: features that never reduce impurity never
appear in the tree, which is how the raw XICL vectors (deliberately
over-complete) shrink to the "used features" column of Table I.

Splits are binary: numeric features split on ``value <= threshold``
(thresholds at midpoints of consecutive distinct values); categorical
features split on ``value == category``. Rows with a missing value for the
split feature route to the child that received more training rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..xicl.features import FeatureKind, FeatureVector
from .dataset import Dataset, Row


def entropy(counts: dict[object, int]) -> float:
    """Shannon entropy (bits) of a label distribution.

    Counts are summed in a canonical (sorted) order so two engines that
    agree on the count *multiset* — but accumulated it in different
    orders — produce bitwise-identical floats. The fast trainer's
    bit-identity guarantee rests on this.
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in sorted(counts.values()):
        if count:
            p = count / total
            result -= p * math.log2(p)
    return result


@dataclass(frozen=True)
class Split:
    """A candidate binary split of one node."""

    column: str
    column_index: int
    kind: FeatureKind
    threshold: object            # numeric bound or the matched category
    gain: float

    def goes_left(self, value: object) -> bool | None:
        """True → left child, False → right, None → missing value."""
        if value is None:
            return None
        if self.kind is FeatureKind.NUMERIC:
            return value <= self.threshold
        return value == self.threshold

    def describe(self) -> str:
        op = "<=" if self.kind is FeatureKind.NUMERIC else "=="
        return f"{self.column} {op} {self.threshold!r}"


@dataclass
class Node:
    """One tree node; leaves carry a label, inner nodes a split."""

    label: object = None
    counts: dict[object, int] = field(default_factory=dict)
    split: Split | None = None
    left: "Node | None" = None
    right: "Node | None" = None
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.split is None


@dataclass(frozen=True)
class TreeParams:
    """Learning hyper-parameters."""

    max_depth: int = 12
    min_samples_split: int = 4
    min_samples_leaf: int = 1
    min_gain: float = 1e-9


#: Valid values for the training-engine knob (mirrors the interpreter's).
ENGINES = ("auto", "fast", "reference")


class ClassificationTree:
    """A fitted classification tree.

    Two training engines produce bit-identical trees (same splits, same
    thresholds, same tie-breaks, same float gains):

    - ``"reference"`` — the original per-threshold rescan below, kept
      verbatim as the executable specification;
    - ``"fast"`` — the sweep-line builder over a shared presorted
      :class:`~repro.learning.matrix.TrainingMatrix`
      (:mod:`repro.learning.fasttree`);
    - ``"auto"`` (default) — the fast builder.

    ``tests/test_learning_equivalence.py`` holds the engines to
    bit-identity the same way the VM's engine-equivalence suite does.
    """

    def __init__(self, params: TreeParams = TreeParams(), engine: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be 'auto', 'fast', or 'reference', got {engine!r}"
            )
        self.params = params
        self.engine = engine
        self.root: Node | None = None
        self._dataset_columns: tuple[str, ...] = ()
        self._dataset: Dataset | None = None

    @property
    def fitted_columns(self) -> tuple[str, ...]:
        """The column order the tree's split indices refer to."""
        return self._dataset_columns

    # -- fitting -------------------------------------------------------------
    def fit(self, dataset: Dataset, matrix=None) -> "ClassificationTree":
        """Fit on all of *dataset*.

        *matrix* optionally supplies a presorted
        :class:`~repro.learning.matrix.TrainingMatrix` of the dataset's
        features (the shared-presort path); it is only consulted by the
        fast engine and must describe exactly *dataset*'s rows.
        """
        if len(dataset) == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        self._dataset = dataset
        self._dataset_columns = dataset.columns
        if self.engine == "reference":
            self.root = self._grow(list(dataset.rows), dataset, depth=0)
        else:
            from .fasttree import build_tree
            from .matrix import TrainingMatrix

            if matrix is None:
                matrix = TrainingMatrix.from_dataset(dataset)
            self.root = build_tree(matrix, dataset.labels(), self.params)
        return self

    def fit_indices(
        self, dataset: Dataset, indices: list[int], matrix=None
    ) -> "ClassificationTree":
        """Fit on a row subset of *dataset* (cross-validation folds).

        Equivalent to ``fit(dataset.subset(indices))`` but — on the fast
        engine — reuses one shared presorted *matrix* of the full dataset
        across every fold instead of re-sorting per fold.
        """
        if not indices:
            raise ValueError("cannot fit a tree on an empty dataset")
        self._dataset = dataset
        self._dataset_columns = dataset.columns
        if self.engine == "reference":
            rows = [dataset.rows[i] for i in indices]
            self.root = self._grow(rows, dataset, depth=0)
        else:
            from .fasttree import build_tree
            from .matrix import TrainingMatrix

            if matrix is None:
                matrix = TrainingMatrix.from_dataset(dataset)
            self.root = build_tree(
                matrix, dataset.labels(), self.params, indices=indices
            )
        return self

    def _grow(self, rows: list[Row], dataset: Dataset, depth: int) -> Node:
        counts: dict[object, int] = {}
        for row in rows:
            counts[row.label] = counts.get(row.label, 0) + 1
        label = max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
        node = Node(label=label, counts=counts, size=len(rows))
        params = self.params
        if (
            len(counts) <= 1
            or len(rows) < params.min_samples_split
            or depth >= params.max_depth
        ):
            return node
        split = self._best_split(rows, dataset)
        if split is None or split.gain < params.min_gain:
            return node
        left_rows, right_rows = self._partition(rows, split)
        if (
            len(left_rows) < params.min_samples_leaf
            or len(right_rows) < params.min_samples_leaf
        ):
            return node
        node.split = split
        node.left = self._grow(left_rows, dataset, depth + 1)
        node.right = self._grow(right_rows, dataset, depth + 1)
        return node

    @staticmethod
    def _partition(rows: list[Row], split: Split) -> tuple[list[Row], list[Row]]:
        left: list[Row] = []
        right: list[Row] = []
        pending: list[Row] = []
        for row in rows:
            side = split.goes_left(row.values[split.column_index])
            if side is None:
                pending.append(row)
            elif side:
                left.append(row)
            else:
                right.append(row)
        # Missing values follow the larger child.
        (left if len(left) >= len(right) else right).extend(pending)
        return left, right

    def _best_split(self, rows: list[Row], dataset: Dataset) -> Split | None:
        parent_counts: dict[object, int] = {}
        for row in rows:
            parent_counts[row.label] = parent_counts.get(row.label, 0) + 1
        parent_entropy = entropy(parent_counts)
        total = len(rows)
        best: Split | None = None
        for index, column in enumerate(dataset.columns):
            kind = dataset.kind_of(column)
            present = [
                (row.values[index], row.label)
                for row in rows
                if row.values[index] is not None
            ]
            if len(present) < 2:
                continue
            if kind is FeatureKind.NUMERIC:
                candidates = self._numeric_thresholds(present)
            else:
                candidates = sorted({value for value, _ in present}, key=repr)
            for threshold in candidates:
                left_counts: dict[object, int] = {}
                right_counts: dict[object, int] = {}
                for value, label in present:
                    if (
                        value <= threshold
                        if kind is FeatureKind.NUMERIC
                        else value == threshold
                    ):
                        left_counts[label] = left_counts.get(label, 0) + 1
                    else:
                        right_counts[label] = right_counts.get(label, 0) + 1
                n_left = sum(left_counts.values())
                n_right = sum(right_counts.values())
                if n_left == 0 or n_right == 0:
                    continue
                children = (
                    n_left / total * entropy(left_counts)
                    + n_right / total * entropy(right_counts)
                )
                gain = parent_entropy - children
                if best is None or gain > best.gain + 1e-12:
                    best = Split(
                        column=column,
                        column_index=index,
                        kind=kind,
                        threshold=threshold,
                        gain=gain,
                    )
        return best

    @staticmethod
    def _numeric_thresholds(present: list[tuple[object, object]]) -> list[float]:
        values = sorted({value for value, _ in present})
        return [
            (a + b) / 2.0 for a, b in zip(values, values[1:])
        ]

    # -- prediction ------------------------------------------------------------
    def predict_values(self, values: tuple) -> object:
        """Predict from values already aligned to the training columns."""
        if self.root is None:
            raise ValueError("tree is not fitted")
        node = self.root
        while not node.is_leaf:
            side = node.split.goes_left(values[node.split.column_index])
            if side is None:
                side = node.left.size >= node.right.size
            node = node.left if side else node.right
        return node.label

    def predict(self, vector: FeatureVector) -> object:
        """Predict the label for a feature vector (aligned by name)."""
        if self._dataset is None:
            raise ValueError("tree is not fitted")
        return self.predict_values(self._dataset.vector_values(vector))

    # -- pruning -------------------------------------------------------------
    def prune_with(self, rows: list[Row]) -> int:
        """Reduced-error pruning against held-out *rows*.

        Bottom-up over the tree: an inner node whose majority-label leaf
        replacement makes no more validation errors than its subtree is
        collapsed. Returns the number of nodes removed. With an empty
        validation set, every split is collapsed (no evidence retains it),
        so callers should pass a meaningful sample.
        """
        if self.root is None:
            raise ValueError("tree is not fitted")

        def leaf_errors(node: Node, reaching: list[Row]) -> int:
            return sum(1 for row in reaching if row.label != node.label)

        removed = 0

        def visit(node: Node, reaching: list[Row]) -> int:
            """Prune below *node*; return its post-pruning error count.

            Each validation row is routed once per tree level (it reaches
            every node on exactly one root-to-leaf path), so the subtree's
            errors are the sum of the children's — no re-descent from the
            subtree root per node.
            """
            nonlocal removed
            if node.is_leaf:
                return leaf_errors(node, reaching)
            left_rows: list[Row] = []
            right_rows: list[Row] = []
            for row in reaching:
                side = node.split.goes_left(row.values[node.split.column_index])
                if side is None:
                    side = node.left.size >= node.right.size
                (left_rows if side else right_rows).append(row)
            subtree = visit(node.left, left_rows) + visit(node.right, right_rows)
            as_leaf = leaf_errors(node, reaching)
            if as_leaf <= subtree:
                removed += self._count_nodes(node) - 1
                node.split = None
                node.left = None
                node.right = None
                return as_leaf
            return subtree

        visit(self.root, list(rows))
        return removed

    @staticmethod
    def _count_nodes(node: Node | None) -> int:
        if node is None:
            return 0
        return (
            1
            + ClassificationTree._count_nodes(node.left)
            + ClassificationTree._count_nodes(node.right)
        )

    # -- introspection ---------------------------------------------------------
    def used_features(self) -> tuple[str, ...]:
        """Features actually appearing in splits — the selected features."""
        found: list[str] = []

        def visit(node: Node | None) -> None:
            if node is None or node.is_leaf:
                return
            if node.split.column not in found:
                found.append(node.split.column)
            visit(node.left)
            visit(node.right)

        visit(self.root)
        return tuple(found)

    def depth(self) -> int:
        def d(node: Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))

        return d(self.root)

    def node_count(self) -> int:
        def count(node: Node | None) -> int:
            if node is None:
                return 0
            return 1 + count(node.left) + count(node.right)

        return count(self.root)

    def render(self) -> str:
        """ASCII rendering, for interpretability (a paper selling point)."""
        if self.root is None:
            return "<unfitted>"
        lines: list[str] = []

        def walk(node: Node, depth: int, branch: str) -> None:
            pad = "  " * depth
            if node.is_leaf:
                lines.append(f"{pad}{branch}-> {node.label!r} {node.counts}")
                return
            lines.append(f"{pad}{branch}[{node.split.describe()}]")
            walk(node.left, depth + 1, "y ")
            walk(node.right, depth + 1, "n ")

        walk(self.root, 0, "")
        return "\n".join(lines)
