"""Shared presorted training matrix: the fast trainer's columnar view.

Naive tree construction re-sorts every feature column at every node of
every tree. In this system the waste is compounded by the workload
shape: one :class:`~repro.core.model_builder.ModelBuilder` owns hundreds
of per-method trees whose feature matrices are *identical* (every method
observes the same run's feature vector) and differ only in labels. A
:class:`TrainingMatrix` therefore captures everything about a dataset's
features that is label-independent — per-column sorted row orders for
numeric features, repr-sorted category lists for categorical features —
so it can be computed once per program and reused across every
per-method fit, every tree node, and every cross-validation fold.

:class:`MatrixCache` keys matrices by *content* (columns, kinds, row
values), not object identity, so per-method datasets that went through
the same sequence of observations resolve to one shared presort.
"""

from __future__ import annotations

import threading

from ..xicl.features import FeatureKind
from .dataset import Dataset


class TrainingMatrix:
    """Label-independent, presorted columnar view of a feature matrix.

    - ``numeric_order[j]`` — for a numeric column *j*: row indices whose
      value is present (not ``None``), ascending by value (stable, so
      ties keep row order). ``None`` for categorical columns.
    - ``category_order[j]`` — for a categorical column *j*: the distinct
      observed categories sorted by ``repr`` (the reference trainer's
      candidate order). ``None`` for numeric columns.
    """

    __slots__ = ("columns", "kinds", "values", "numeric_order", "category_order")

    def __init__(
        self,
        columns: tuple[str, ...],
        kinds: tuple[FeatureKind, ...],
        values: tuple[tuple, ...],
    ):
        self.columns = columns
        self.kinds = kinds
        self.values = values
        numeric_order: list[tuple[int, ...] | None] = []
        category_order: list[tuple | None] = []
        for j, kind in enumerate(kinds):
            present = [i for i, row in enumerate(values) if row[j] is not None]
            if kind is FeatureKind.NUMERIC:
                present.sort(key=lambda i: values[i][j])
                numeric_order.append(tuple(present))
                category_order.append(None)
            else:
                numeric_order.append(None)
                category_order.append(
                    tuple(sorted({values[i][j] for i in present}, key=repr))
                )
        self.numeric_order = tuple(numeric_order)
        self.category_order = tuple(category_order)

    @property
    def n_rows(self) -> int:
        return len(self.values)

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "TrainingMatrix":
        columns = dataset.columns
        return cls(
            columns,
            tuple(dataset.kind_of(c) for c in columns),
            tuple(row.values for row in dataset.rows),
        )


def matrix_key(dataset: Dataset) -> tuple:
    """Content key identifying a dataset's feature matrix (labels excluded)."""
    columns = dataset.columns
    return (
        columns,
        tuple(dataset.kind_of(c) for c in columns),
        tuple(row.values for row in dataset.rows),
    )


class MatrixCache:
    """Content-keyed LRU cache of :class:`TrainingMatrix` instances.

    Sized for the per-program workload: within one ``refit_all`` pass the
    per-method datasets collapse to a handful of distinct matrices (one
    per method cohort — methods that joined the history at the same run),
    so a small capacity captures all the sharing.
    """

    def __init__(self, capacity: int = 16):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: dict[tuple, TrainingMatrix] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Serving-layer tenants swap models from worker threads while
        # predictions read through the same builder; the lock keeps the
        # LRU reorder + eviction sequence atomic under that contention.
        self._lock = threading.Lock()

    def get(self, dataset: Dataset) -> TrainingMatrix:
        """The (possibly shared) presorted matrix for *dataset*'s features."""
        try:
            key = matrix_key(dataset)
        except TypeError:  # unhashable feature value: presort without caching
            return TrainingMatrix.from_dataset(dataset)
        with self._lock:
            cached = self._entries.pop(key, None)
            if cached is not None:
                self.hits += 1
                self._entries[key] = cached  # re-insert: most recently used
                return cached
            self.misses += 1
        # Presort outside the lock — it is the expensive part, and a
        # concurrent miss on the same key just builds an equal matrix.
        matrix = TrainingMatrix.from_dataset(dataset)
        with self._lock:
            self._entries[key] = matrix
            while len(self._entries) > self.capacity:
                self._entries.pop(next(iter(self._entries)))
                self.evictions += 1
        return matrix

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    # The forge prior pickles its ModelBuilder (shared cache included);
    # locks don't pickle, so drop it and recreate on load.
    def __getstate__(self) -> dict:
        state = {
            "capacity": self.capacity,
            "_entries": self._entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
