"""Learning substrate: classification trees, cross-validation, incremental
model maintenance. All implemented from scratch (no sklearn)."""

from .crossval import cross_validated_accuracy, kfold_indices
from .dataset import Dataset, Row
from .incremental import IncrementalClassifier
from .tree import ClassificationTree, Node, Split, TreeParams, entropy

__all__ = [
    "ClassificationTree",
    "Dataset",
    "IncrementalClassifier",
    "Node",
    "Row",
    "Split",
    "TreeParams",
    "cross_validated_accuracy",
    "entropy",
    "kfold_indices",
]
