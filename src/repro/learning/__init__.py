"""Learning substrate: classification trees, cross-validation, incremental
model maintenance. All implemented from scratch (no sklearn).

Two training engines live here, mirroring the VM's interpreter pair:
``tree.py`` keeps the executable reference builder; ``matrix.py`` +
``fasttree.py`` implement the shared-presort sweep-line trainer that is
bit-identical to it; ``flat.py`` compiles fitted trees into flat arrays
for the run-start prediction hot path.
"""

from .crossval import cross_validated_accuracy, kfold_indices
from .dataset import Dataset, Row
from .flat import FlatForest, FlatTree, compile_forest
from .incremental import IncrementalClassifier
from .matrix import MatrixCache, TrainingMatrix
from .tree import ENGINES, ClassificationTree, Node, Split, TreeParams, entropy

__all__ = [
    "ClassificationTree",
    "Dataset",
    "ENGINES",
    "FlatForest",
    "FlatTree",
    "IncrementalClassifier",
    "MatrixCache",
    "Node",
    "Row",
    "Split",
    "TrainingMatrix",
    "TreeParams",
    "compile_forest",
    "cross_validated_accuracy",
    "entropy",
    "kfold_indices",
]
