"""Cross-program prior: cold-start level prediction for unseen programs.

Within one application the paper's :class:`ModelBuilder` learns per
method from that application's own run history — a brand-new program
starts cold (no advice until enough runs accumulate). The forge trains
a *prior* over thousands of generated programs: rows are keyed by
method-name cluster (generated programs share a tiny method namespace —
``main``, helper, recursive — so name is a meaningful cohort) plus a
global ``"*"`` cluster that absorbs everything. Prediction for an
unseen program's method resolves the most specific fitted cluster.

The prior *is* a :class:`ModelBuilder` whose "methods" are clusters:
training reuses ``refit_all(jobs=N)`` — shared presort cache, parallel
offline construction, flattened forest — unchanged. Rows are appended
directly to the per-cluster datasets (the schema is fixed by
:func:`~.features.forge_columns`, so no per-row column alignment is
needed at dataset scale).

Persisted with the resilience envelope (kind ``forge-prior``) so a
serving fleet can load it at tenant admission for prior-backed cold
start.
"""

from __future__ import annotations

from pathlib import Path

from ...resilience.envelope import (
    FileSystem,
    REAL_FS,
    read_pickle_envelope,
    write_pickle_envelope,
)
from ...xicl.features import FeatureVector
from ..dataset import Row
from ..incremental import IncrementalClassifier
from ..matrix import matrix_key
from ..tree import TreeParams
from .features import forge_columns, forge_kinds, method_feature_vector
from .shards import ShardStore, merge_matrices

#: Envelope kind tag for persisted priors.
PRIOR_KIND = "forge-prior"

#: The catch-all cluster every row also joins.
GLOBAL_CLUSTER = "*"


class CrossProgramPrior:
    """Per-cluster level models fitted on forge-labeled corpora."""

    def __init__(
        self,
        tree_params: TreeParams = TreeParams(),
        min_rows: int = 8,
        engine: str = "auto",
    ):
        # Imported here to avoid a package cycle (core imports learning).
        from ...core.model_builder import ModelBuilder

        self._builder = ModelBuilder(
            tree_params, min_rows=min_rows, engine=engine
        )
        self.rows_trained = 0

    # -- training -----------------------------------------------------------
    def _model(self, cluster: str) -> IncrementalClassifier:
        builder = self._builder
        model = builder.model_for(cluster)
        if model is None:
            model = IncrementalClassifier(
                builder.tree_params,
                builder.min_rows,
                engine=builder.engine,
                matrix_cache=builder._matrix_cache,
            )
            columns = forge_columns()
            model.dataset._columns = list(columns)
            model.dataset._kinds = dict(zip(columns, forge_kinds()))
            builder._models[cluster] = model
        return model

    def observe_row(self, cluster: str, values: tuple, label: int) -> None:
        """Append one labeled row to *cluster* and the global cluster."""
        row = Row(tuple(values), int(label))
        for name in (cluster, GLOBAL_CLUSTER):
            model = self._model(name)
            model.dataset._rows.append(row)
            model._stale = True
        self.rows_trained += 1

    def fit_from_store(self, store: ShardStore, jobs: int = 1) -> None:
        """Load every shard, fan rows into clusters, refit all models.

        The global cluster's rows are exactly the shard concatenation,
        so its presorted matrix is obtained by *merging* the per-shard
        presorts (:func:`~.shards.merge_matrices`) and primed into the
        builder's shared matrix cache rather than re-sorted from
        scratch. ``refit_all(jobs)`` then trains every cluster through
        the standard offline-construction path.
        """
        columns = forge_columns()
        shard_matrices = []
        for shard in store.iter_shards():
            if shard.columns != columns:
                raise ValueError(
                    f"shard schema {shard.columns[:3]}… does not match "
                    "forge_columns()"
                )
            shard_matrices.append(shard.matrix())
            for values, label, group in zip(
                shard.values, shard.labels, shard.groups
            ):
                self.observe_row(group, values, label)
        if shard_matrices:
            merged = merge_matrices(shard_matrices)
            cache = self._builder._matrix_cache
            global_ds = self._model(GLOBAL_CLUSTER).dataset
            try:
                cache._entries[matrix_key(global_ds)] = merged
            except TypeError:  # unhashable value: skip priming
                pass
        self.refit(jobs=jobs)

    def refit(self, jobs: int = 1) -> None:
        self._builder.refit_all(jobs=jobs)

    # -- prediction ---------------------------------------------------------
    def predict_level(
        self, method_name: str, fvector: FeatureVector
    ) -> int | None:
        """Predicted level for one method, most specific cluster first."""
        for cluster in (method_name, GLOBAL_CLUSTER):
            model = self._builder.model_for(cluster)
            if model is not None and model.is_fitted:
                label = model.predict(fvector)
                if label is not None:
                    return int(label)
        return None

    def predict_program(self, program, args: tuple = ()) -> dict[str, int]:
        """Per-method predicted levels for a whole (unseen) program."""
        out: dict[str, int] = {}
        for name in program.method_names:
            level = self.predict_level(
                name, method_feature_vector(program, name, args)
            )
            if level is not None:
                out[name] = level
        return out

    # -- introspection ------------------------------------------------------
    @property
    def clusters(self) -> tuple[str, ...]:
        return self._builder.method_names

    def summary(self) -> dict:
        return {
            "clusters": list(self.clusters),
            "rows_trained": self.rows_trained,
            "presort": self._builder.presort_stats(),
        }

    # -- persistence --------------------------------------------------------
    def save(self, path: str | Path, fs: FileSystem = REAL_FS) -> None:
        """Persist through the crash-safe envelope (kind ``forge-prior``)."""
        builder = self._builder
        forest = builder._forest
        cache = builder._matrix_cache
        entries = cache._entries
        # Both are derived state: the flat forest rebuilds lazily on the
        # first query and presorted matrices rebuild on the next refit.
        # At dataset scale the cached matrices would double the file.
        builder._forest = None
        cache._entries = {}
        try:
            write_pickle_envelope(path, self, kind=PRIOR_KIND, fs=fs)
        finally:
            builder._forest = forest
            cache._entries = entries

    @classmethod
    def load(cls, path: str | Path, fs: FileSystem = REAL_FS):
        prior = read_pickle_envelope(path, kind=PRIOR_KIND, fs=fs)
        if not isinstance(prior, cls):
            raise ValueError(f"envelope at {path} does not hold a {cls.__name__}")
        return prior
