"""The data forge: mass-production of labeled cross-program training data.

The paper's learner trains per method on O(10²) runs inside a single
program. The forge promotes that to *cross-program* learning at dataset
scale: a forked-run labeler extracts every method's ideal optimization
level from (nearly) one execution per program×input, sharded columnar
matrices stream the rows to disk with bounded memory, and a parallel
pipeline feeds thousands of generated programs through labeling into a
cross-program prior for cold-start prediction. See ``docs/datasets.md``.
"""

from .features import forge_columns, method_feature_vector, program_features
from .labeler import (
    FORGE_CONFIG,
    LevelOutcome,
    MethodLabel,
    RunLabels,
    label_forked,
    label_naive,
    labels_equal,
)
from .pipeline import ForgeStats, run_forge
from .prior import CrossProgramPrior
from .shards import ShardStore, ShardWriter, merge_matrices

__all__ = [
    "FORGE_CONFIG",
    "CrossProgramPrior",
    "ForgeStats",
    "LevelOutcome",
    "MethodLabel",
    "RunLabels",
    "ShardStore",
    "ShardWriter",
    "forge_columns",
    "label_forked",
    "label_naive",
    "labels_equal",
    "merge_matrices",
    "method_feature_vector",
    "program_features",
    "run_forge",
]
