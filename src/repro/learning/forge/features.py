"""Program-level feature vectors: instruction mix, loop shape, input args.

The paper's learner conditions on *input* features within one program;
cross-program learning additionally needs features that describe the
*code* so a prior fitted on thousands of generated programs transfers to
an unseen one ("Behavioral Embeddings of Programs" motivates exactly
this). The forge's feature schema therefore has three blocks, all
numeric, all computable without running the program:

- ``m_*`` — per-method statics: size, locals, the instruction-mix
  fraction per opcode group, and loop shape (backward-jump count and
  spans — the static proxies the JIT's own optimizability model uses).
- ``p_*`` — the same statics aggregated over the whole program, so a
  method's row also sees the code it lives inside.
- ``i_*`` — the entry-point input arguments (known at run start, so
  they are legitimately available for cold-start prediction).

:func:`forge_columns` fixes the column universe once; every training
row is a plain value tuple in that order, which is what lets shards
share one schema and merge without realignment.
"""

from __future__ import annotations

from ...vm.instructions import JUMP_OPS, Op
from ...vm.program import Method, Program
from ...xicl.features import FeatureKind, FeatureVector

#: Opcode groups whose code fraction becomes one mix feature each.
_MIX_GROUPS: tuple[tuple[str, frozenset], ...] = (
    ("arith", frozenset({Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.NEG})),
    ("cmp", frozenset({Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE, Op.NOT})),
    ("local", frozenset({Op.LOAD, Op.STORE})),
    ("const", frozenset({Op.CONST})),
    ("stack", frozenset({Op.POP, Op.DUP, Op.SWAP})),
    ("branch", frozenset(JUMP_OPS)),
    ("call", frozenset({Op.CALL})),
    ("array", frozenset({Op.NEWARR, Op.ALOAD, Op.ASTORE, Op.ALEN})),
    ("intrin", frozenset({Op.INTRIN})),
)

#: Entry arguments beyond this many are dropped from the feature row
#: (the generator's programs take at most two).
MAX_INPUT_ARGS = 3


def _mix_and_shape(code) -> tuple[dict[str, float], int, int, float]:
    """(mix fractions, loop count, max back-jump span, mean span)."""
    counts = {name: 0 for name, _ in _MIX_GROUPS}
    spans: list[int] = []
    for pc, ins in enumerate(code):
        op = ins.op
        for name, group in _MIX_GROUPS:
            if op in group:
                counts[name] += 1
                break
        if op in JUMP_OPS and ins.arg <= pc:
            spans.append(pc - ins.arg)
    n = len(code) or 1
    mix = {name: counts[name] / n for name, _ in _MIX_GROUPS}
    max_span = max(spans) if spans else 0
    mean_span = sum(spans) / len(spans) if spans else 0.0
    return mix, len(spans), max_span, mean_span


def _method_features(method: Method) -> dict[str, float]:
    mix, loops, max_span, mean_span = _mix_and_shape(method.code)
    feats: dict[str, float] = {
        "m_size": method.size,
        "m_params": method.num_params,
        "m_locals": method.num_locals,
        "m_loops": loops,
        "m_loop_max_span": max_span,
        "m_loop_mean_span": mean_span,
        "m_arith_density": method.arithmetic_density(),
        "m_callees": len(
            {ins.arg[0] for ins in method.code if ins.op == Op.CALL}
        ),
    }
    for name, _ in _MIX_GROUPS:
        feats[f"m_mix_{name}"] = mix[name]
    return feats


def program_features(program: Program) -> dict[str, float]:
    """Whole-program statics (shared by every method row of the program)."""
    all_code = tuple(ins for m in program for ins in m.code)
    mix, loops, max_span, _mean = _mix_and_shape(all_code)
    sizes = [m.size for m in program]
    feats: dict[str, float] = {
        "p_methods": len(program),
        "p_total_size": program.total_size(),
        "p_mean_size": sum(sizes) / len(sizes) if sizes else 0.0,
        "p_max_size": max(sizes, default=0),
        "p_loops": loops,
        "p_loop_max_span": max_span,
    }
    for name, _ in _MIX_GROUPS:
        feats[f"p_mix_{name}"] = mix[name]
    return feats


def _input_features(args: tuple) -> dict[str, float]:
    feats: dict[str, float] = {"i_argc": len(args)}
    for k in range(MAX_INPUT_ARGS):
        if k < len(args) and isinstance(args[k], (int, float)):
            feats[f"i_arg{k}"] = args[k]
    return feats


_COLUMNS: tuple[str, ...] | None = None


def forge_columns() -> tuple[str, ...]:
    """The fixed column universe of every forge training row."""
    global _COLUMNS
    if _COLUMNS is None:
        sample = dict(_method_features(_PROBE.method("main")))
        sample.update(program_features(_PROBE))
        sample.update({f"i_arg{k}": 0.0 for k in range(MAX_INPUT_ARGS)})
        sample["i_argc"] = 0.0
        _COLUMNS = tuple(sorted(sample))
    return _COLUMNS


def forge_kinds() -> tuple[FeatureKind, ...]:
    """Column kinds: the whole forge schema is numeric."""
    return tuple(FeatureKind.NUMERIC for _ in forge_columns())


def row_values(
    program_feats: dict[str, float], method: Method, args: tuple
) -> tuple:
    """One training row's values, aligned to :func:`forge_columns`.

    Absent features (e.g. ``i_arg2`` of a one-argument input) are
    ``None`` — the trees route missing values like any other dataset.
    """
    feats = _method_features(method)
    feats.update(program_feats)
    feats.update(_input_features(args))
    return tuple(feats.get(name) for name in forge_columns())


def method_feature_vector(
    program: Program, method_name: str, args: tuple = ()
) -> FeatureVector:
    """Predict-time vector for one method of a (possibly unseen) program."""
    feats = _method_features(program.method(method_name))
    feats.update(program_features(program))
    feats.update(_input_features(args))
    vector = FeatureVector()
    for name in forge_columns():
        value = feats.get(name)
        if value is not None:
            vector.append_value(name, value, FeatureKind.NUMERIC)
    return vector


def _make_probe() -> Program:
    """A tiny constant program used only to enumerate feature names."""
    from ...vm.program import MethodBuilder

    b = MethodBuilder("main")
    b.const(0).ret()
    return Program([b.build()])


_PROBE = _make_probe()
