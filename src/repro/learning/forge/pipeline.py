"""The forge pipeline: generate → fork-label → shard → train, in parallel.

End-to-end dataset factory. Programs come from the differential-fuzzing
generator (pure function of ``(seed, index)``), each is labeled for
several inputs by the forked-run labeler (one shared
:class:`~repro.vm.opt.jit.JITCompiler` and plan cache per program, so
host codegen amortizes across inputs), rows stream through a
:class:`~.shards.ShardWriter`, and a :class:`~.prior.CrossProgramPrior`
trains on the result via ``refit_all(jobs=N)``.

Determinism: the work list is chunked by a *fixed* chunk size (not by
``jobs``), chunks are generated independently (pure ``(seed, index)``
streams), and :func:`~repro.experiments.parallel.map_parallel` returns
results in item order — so the shard stream, and therefore the trained
prior, is bit-identical across ``jobs`` settings and across the
inline-fallback path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from ...experiments.parallel import map_parallel
from ...testing.differential import compile_module
from ...testing.generator import generate
from ...vm.config import VMConfig
from ...vm.opt.jit import JITCompiler
from .features import forge_columns, forge_kinds, program_features, row_values
from .labeler import FORGE_CONFIG, label_forked
from .prior import CrossProgramPrior
from .shards import ShardStore, ShardWriter

#: Programs per parallel work item. Fixed (never derived from ``jobs``)
#: so the row stream is identical at any parallelism.
CHUNK_PROGRAMS = 20


@dataclass
class ForgeStats:
    """Throughput accounting for one forge run."""

    programs: int = 0
    inputs_per_program: int = 0
    pairs_labeled: int = 0
    pairs_faulted: int = 0
    rows: int = 0
    shards: int = 0
    max_resident_rows: int = 0
    label_s: float = 0.0
    train_s: float = 0.0
    rows_per_s_generated: float = 0.0
    rows_per_s_trained: float = 0.0
    parallel: bool = False
    trained: bool = False
    clusters: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "programs": self.programs,
            "inputs_per_program": self.inputs_per_program,
            "pairs_labeled": self.pairs_labeled,
            "pairs_faulted": self.pairs_faulted,
            "rows": self.rows,
            "shards": self.shards,
            "max_resident_rows": self.max_resident_rows,
            "label_s": round(self.label_s, 3),
            "train_s": round(self.train_s, 3),
            "rows_per_s_generated": round(self.rows_per_s_generated, 1),
            "rows_per_s_trained": round(self.rows_per_s_trained, 1),
            "parallel": self.parallel,
            "trained": self.trained,
            "clusters": list(self.clusters),
        }


#: Repetition-count ladder of the ``"workload"`` input profile. The
#: generator's programs are deliberately tiny (all loops iterate ≤ 6
#: constant times), so per-method work never crosses the cost model's
#: compile-or-not threshold and every ideal label is baseline. Driving
#: the same program ``reps`` times from a wrapper ``main`` scales work
#: linearly; this ladder straddles the crossover — small reps keep the
#: ideal at −1, large reps promote the hot methods — which is what
#: makes the labels *input-dependent* and the prior discriminative.
WORKLOAD_REPS = (1, 8, 40, 200, 1000)


def wrap_workload(module):
    """Wrap a generated module in a repetition driver.

    The original ``main`` is renamed ``app`` and a new ``main(reps,
    …)`` calls it in a counted loop. The generator never emits calls to
    ``main`` (recursion goes through dedicated ``r*`` functions) and
    never uses the name ``app``, so the rename is safe.
    """
    from ...lang import ast

    inner = module.function("main")  # KeyError if absent
    params = ("reps",) + tuple(f"w{k}" for k in range(len(inner.params)))
    body = ast.Block(
        statements=(
            ast.VarDecl(name="i", init=ast.IntLit(value=0)),
            ast.While(
                cond=ast.Binary(
                    op="<",
                    left=ast.Name(ident="i"),
                    right=ast.Name(ident="reps"),
                ),
                body=ast.Block(
                    statements=(
                        ast.ExprStmt(
                            expr=ast.Call(
                                callee="app",
                                args=tuple(
                                    ast.Name(ident=p) for p in params[1:]
                                ),
                            )
                        ),
                        ast.Assign(
                            name="i",
                            value=ast.Binary(
                                op="+",
                                left=ast.Name(ident="i"),
                                right=ast.IntLit(value=1),
                            ),
                        ),
                    )
                ),
            ),
            ast.Return(value=ast.Name(ident="i")),
        )
    )
    functions = tuple(
        ast.Function(name="app", params=fn.params, body=fn.body)
        if fn.name == "main"
        else fn
        for fn in module.functions
    )
    driver = ast.Function(name="main", params=params, body=body)
    return ast.Module(functions=functions + (driver,))


def input_args(
    seed: int, index: int, k: int, base_args: tuple, profile: str = "fuzz"
) -> tuple:
    """Deterministic input *k* for program ``(seed, index)``.

    Profile ``"fuzz"`` (the default): input 0 is the generator's own
    argument tuple (fuzz-corpus parity); further inputs redraw each
    argument from the same 0..9 domain the generator uses, under an
    independent seeded stream. At that domain generated programs are
    tiny, so the ideal level is almost always baseline — the right
    corpus for labeler/equivalence checks and throughput benchmarks.

    Profile ``"workload"`` targets programs wrapped by
    :func:`wrap_workload`: it prepends a repetition count drawn from
    :data:`WORKLOAD_REPS` to the 0..9 redraw, so run lengths straddle
    the compile-or-not crossover and ideal labels become
    input-dependent — the corpus the cross-program prior needs to
    learn *discriminative* cold-start advice
    (see ``experiments/coldstart.py``).
    """
    if profile == "fuzz":
        if k == 0 or not base_args:
            return base_args
        rng = Random(seed * 1_000_003 + index * 7919 + k * 65_537 + 2)
        return tuple(rng.randint(0, 9) for _ in base_args)
    if profile != "workload":
        raise ValueError(f"unknown input profile: {profile!r}")
    rng = Random(seed * 1_000_003 + index * 7919 + k * 65_537 + 3)
    return (rng.choice(WORKLOAD_REPS),) + tuple(
        rng.randint(0, 9) for _ in base_args
    )


def _forge_worker(item: tuple) -> tuple[list, int]:
    """Label one chunk of programs; returns (rows, faulted-pair count).

    Each row is ``(values, label, method)`` with values aligned to
    :func:`~.features.forge_columns`. Rows are emitted in
    (program index, input index, method name) order — fully
    deterministic, so the caller can stream them straight into shards.
    """
    seed, start, count, inputs_per_program, max_instructions, profile = item
    config = (
        FORGE_CONFIG
        if max_instructions is None
        else VMConfig(max_instructions=max_instructions)
    )
    rows: list = []
    faulted = 0
    for index in range(start, start + count):
        gp = generate(seed, index)
        module = (
            wrap_workload(gp.module) if profile == "workload" else gp.module
        )
        program = compile_module(module)
        jit = JITCompiler(program, config)
        plan_cache: dict = {}
        pfeats = program_features(program)
        for k in range(inputs_per_program):
            args = input_args(seed, index, k, gp.args, profile=profile)
            labels = label_forked(
                program, args, config=config, jit=jit, plan_cache=plan_cache
            )
            if labels.fault is not None:
                faulted += 1
                continue
            for method in sorted(labels.labels):
                ideal = labels.labels[method].ideal
                if ideal is None:
                    continue
                rows.append(
                    (
                        row_values(pfeats, program.method(method), args),
                        ideal,
                        method,
                    )
                )
    return rows, faulted


def run_forge(
    out_dir: str | Path,
    programs: int,
    inputs_per_program: int = 8,
    *,
    seed: int = 0,
    jobs: int = 1,
    shard_rows: int = 50_000,
    max_instructions: int | None = None,
    train: bool = True,
    train_jobs: int | None = None,
    prior_min_rows: int = 8,
    prior_tree_params=None,
    engine: str = "auto",
    input_profile: str = "fuzz",
) -> tuple[ForgeStats, CrossProgramPrior | None]:
    """Run the full pipeline; returns (stats, trained prior or ``None``).

    Shards land under *out_dir*; with *train* the fitted prior is
    persisted there too (``prior.bin``). Output is bit-identical for
    any ``jobs`` (see module docstring). *input_profile* selects the
    input population (see :func:`input_args`): ``"fuzz"`` for the
    generator-parity 0..9 domain, ``"wide"`` for magnitude-scaled
    inputs whose ideal labels span the optimization levels.
    """
    out_dir = Path(out_dir)
    stats = ForgeStats(
        programs=programs, inputs_per_program=inputs_per_program
    )
    items = [
        (
            seed,
            start,
            min(CHUNK_PROGRAMS, programs - start),
            inputs_per_program,
            max_instructions,
            input_profile,
        )
        for start in range(0, programs, CHUNK_PROGRAMS)
    ]
    t0 = time.perf_counter()
    results, parallel = map_parallel(_forge_worker, items, jobs)
    writer = ShardWriter(
        out_dir, forge_columns(), forge_kinds(), shard_rows=shard_rows
    )
    for rows, faulted in results:
        stats.pairs_faulted += faulted
        for values, label, method in rows:
            writer.add(values, label, method)
    writer.close()
    stats.label_s = time.perf_counter() - t0
    stats.parallel = parallel
    stats.pairs_labeled = programs * inputs_per_program - stats.pairs_faulted
    stats.rows = writer.rows_written
    stats.shards = writer.shards_written
    stats.max_resident_rows = writer.max_resident_rows
    if stats.label_s > 0:
        stats.rows_per_s_generated = stats.rows / stats.label_s
    prior: CrossProgramPrior | None = None
    if train and stats.rows:
        if prior_tree_params is not None:
            prior = CrossProgramPrior(
                tree_params=prior_tree_params,
                min_rows=prior_min_rows,
                engine=engine,
            )
        else:
            prior = CrossProgramPrior(min_rows=prior_min_rows, engine=engine)
        t0 = time.perf_counter()
        prior.fit_from_store(
            ShardStore(out_dir), jobs=train_jobs if train_jobs else jobs
        )
        stats.train_s = time.perf_counter() - t0
        if stats.train_s > 0:
            stats.rows_per_s_trained = stats.rows / stats.train_s
        stats.trained = True
        stats.clusters = list(prior.clusters)
        prior.save(out_dir / "prior.bin")
    return stats, prior
