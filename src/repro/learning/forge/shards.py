"""Sharded streaming training matrices with bounded memory.

A forge run produces far more rows than one in-memory ``Dataset``
should hold, so rows stream through a :class:`ShardWriter` that spills
fixed-size columnar shards to disk through the resilience envelope
(kind ``forge-shard`` — torn writes and bit rot surface as the usual
:class:`~repro.resilience.envelope.EnvelopeError` reasons instead of
silently corrupting training data). Resident memory is bounded by one
shard regardless of run size.

Reading back, each shard presorts its own :class:`TrainingMatrix`
exactly once; :func:`merge_matrices` then builds the full-corpus matrix
by *merging the per-shard presorted orders* (a k-way merge keyed on
``(value, global row index)``) instead of re-sorting the concatenation
— bit-identical to a from-scratch presort, which the shard tests
assert, because the reference presort is a stable ascending sort and
global row index ties reproduce exactly that stability.
"""

from __future__ import annotations

import heapq
from pathlib import Path

from ...resilience.envelope import (
    FileSystem,
    REAL_FS,
    read_json_envelope,
    write_json_envelope,
)
from ...xicl.features import FeatureKind
from ..matrix import TrainingMatrix

#: Envelope kind tag for forge shards.
SHARD_KIND = "forge-shard"

#: On-disk payload format version (inside the envelope).
SHARD_FORMAT = 1


class Shard:
    """One decoded shard: a columnar block of (values, label, group) rows.

    ``groups`` carries each row's cluster key (the method name) so the
    cross-program prior can fan rows into per-cluster datasets without
    widening the feature schema.
    """

    __slots__ = ("index", "columns", "kinds", "values", "labels", "groups")

    def __init__(self, index, columns, kinds, values, labels, groups):
        self.index = index
        self.columns = columns
        self.kinds = kinds
        self.values = values
        self.labels = labels
        self.groups = groups

    @property
    def n_rows(self) -> int:
        return len(self.values)

    def matrix(self) -> TrainingMatrix:
        """This shard's presorted matrix (computed once per shard)."""
        return TrainingMatrix(self.columns, self.kinds, self.values)


class ShardWriter:
    """Streams rows into fixed-size shards under ``out_dir``.

    Rows are buffered up to *shard_rows* then spilled atomically;
    ``max_resident_rows`` records the high-water mark as evidence the
    memory bound held. Call :meth:`close` to flush the remainder.
    """

    def __init__(
        self,
        out_dir: str | Path,
        columns: tuple[str, ...],
        kinds: tuple[FeatureKind, ...],
        shard_rows: int = 50_000,
        fs: FileSystem = REAL_FS,
    ):
        if shard_rows < 1:
            raise ValueError("shard_rows must be >= 1")
        self.out_dir = Path(out_dir)
        self.columns = tuple(columns)
        self.kinds = tuple(kinds)
        self.shard_rows = shard_rows
        self.fs = fs
        self.rows_written = 0
        self.shards_written = 0
        self.max_resident_rows = 0
        self._values: list[tuple] = []
        self._labels: list = []
        self._groups: list[str] = []
        self._closed = False

    def add(self, values: tuple, label, group: str) -> None:
        if self._closed:
            raise RuntimeError("ShardWriter is closed")
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, schema has {len(self.columns)}"
            )
        self._values.append(tuple(values))
        self._labels.append(label)
        self._groups.append(group)
        self.rows_written += 1
        if len(self._values) > self.max_resident_rows:
            self.max_resident_rows = len(self._values)
        if len(self._values) >= self.shard_rows:
            self._spill()

    def _spill(self) -> None:
        if not self._values:
            return
        # JSON payload (canonical: sorted keys, shortest-repr floats) so
        # equal row streams produce byte-identical shard files — the
        # jobs-invariance test compares digests, not just decoded rows.
        payload = {
            "format": SHARD_FORMAT,
            "index": self.shards_written,
            "columns": list(self.columns),
            "kinds": [kind.value for kind in self.kinds],
            "values": [list(row) for row in self._values],
            "labels": list(self._labels),
            "groups": list(self._groups),
        }
        path = self.out_dir / f"shard-{self.shards_written:05d}.bin"
        write_json_envelope(path, payload, kind=SHARD_KIND, fs=self.fs)
        self.shards_written += 1
        self._values = []
        self._labels = []
        self._groups = []

    def close(self) -> None:
        """Flush any buffered rows; further :meth:`add` calls error."""
        if not self._closed:
            self._spill()
            self._closed = True


class ShardStore:
    """Read-side view of a shard directory."""

    def __init__(self, directory: str | Path, fs: FileSystem = REAL_FS):
        self.directory = Path(directory)
        self.fs = fs

    def paths(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("shard-*.bin"))

    def load(self, path: str | Path) -> Shard:
        payload = read_json_envelope(path, kind=SHARD_KIND, fs=self.fs)
        if payload.get("format") != SHARD_FORMAT:
            raise ValueError(
                f"unsupported shard format {payload.get('format')!r}"
            )
        return Shard(
            index=payload["index"],
            columns=tuple(payload["columns"]),
            kinds=tuple(FeatureKind(v) for v in payload["kinds"]),
            values=tuple(tuple(row) for row in payload["values"]),
            labels=tuple(payload["labels"]),
            groups=tuple(payload["groups"]),
        )

    def iter_shards(self):
        for path in self.paths():
            yield self.load(path)

    def total_rows(self) -> int:
        return sum(shard.n_rows for shard in self.iter_shards())


def merge_matrices(matrices: list[TrainingMatrix]) -> TrainingMatrix:
    """Merge presorted shard matrices into one full-corpus matrix.

    Reuses each shard's presorted per-column orders: numeric columns are
    k-way merged on ``(value, global row index)``, categorical columns
    union their repr-sorted category lists. Bit-identical to presorting
    the concatenated rows from scratch (stable ascending sort ≡ merge
    with global-index tie-break), without the O(N log N) re-sort.
    """
    if not matrices:
        raise ValueError("merge_matrices needs at least one matrix")
    first = matrices[0]
    for other in matrices[1:]:
        if other.columns != first.columns or other.kinds != first.kinds:
            raise ValueError("shard matrices disagree on schema")
    offsets = []
    total = 0
    for m in matrices:
        offsets.append(total)
        total += m.n_rows
    values = tuple(row for m in matrices for row in m.values)
    numeric_order: list[tuple[int, ...] | None] = []
    category_order: list[tuple | None] = []
    for j, kind in enumerate(first.kinds):
        if kind is FeatureKind.NUMERIC:

            def stream(m, off, j=j):
                for i in m.numeric_order[j]:
                    idx = i + off
                    yield values[idx][j], idx

            streams = [
                stream(m, off) for m, off in zip(matrices, offsets)
            ]
            numeric_order.append(
                tuple(i for _v, i in heapq.merge(*streams))
            )
            category_order.append(None)
        else:
            cats = set()
            for m in matrices:
                cats.update(m.category_order[j])
            numeric_order.append(None)
            category_order.append(tuple(sorted(cats, key=repr)))
    merged = object.__new__(TrainingMatrix)
    merged.columns = first.columns
    merged.kinds = first.kinds
    merged.values = values
    merged.numeric_order = tuple(numeric_order)
    merged.category_order = tuple(category_order)
    return merged
